//! A NUMAchine-flavoured case study: a 64-processor, 3-level
//! hierarchical ring machine (the architecture whose parameters — a
//! 128-bit ring data path, single-cycle NIC/IRI routing — anchor the
//! paper's ring model), swept over the outstanding-transaction limit
//! `T` to show how latency tolerance interacts with ring saturation.
//!
//! ```text
//! cargo run --release --example numachine
//! ```

use ringmesh::{run_config, NetworkSpec, RunError, SimParams, SystemConfig};
use ringmesh_net::CacheLineSize;
use ringmesh_workload::WorkloadParams;

fn main() -> Result<(), RunError> {
    // 64 PMs as 4 stations x 4 rings x 4 processors, like NUMAchine's
    // planned 64-processor configuration.
    let spec = "4:4:4".parse().map_err(RunError::InvalidConfig)?;
    println!("NUMAchine-like hierarchical ring: 4:4:4 (64 processors), 64B lines\n");
    println!(
        "{:>3}  {:>6}  {:>9}  {:>11}  {:>11}  {:>11}",
        "T", "R", "latency", "throughput", "local util", "global util"
    );
    for r in [1.0, 0.2] {
        for t in [1, 2, 4, 8] {
            let cfg = SystemConfig::new(
                NetworkSpec::Ring {
                    spec: std::clone::Clone::clone(&spec),
                    speedup: 1,
                },
                CacheLineSize::B64,
            )
            .with_workload(
                WorkloadParams::paper_baseline()
                    .with_region(r)
                    .with_outstanding(t),
            )
            .with_sim(SimParams::full());
            let out = run_config(cfg)?;
            println!(
                "{t:>3}  {r:>6.1}  {:>9.1}  {:>11.4}  {:>10.1}%  {:>10.1}%",
                out.latency.mean,
                out.throughput,
                100.0 * out.utilization.level("local rings").unwrap_or(0.0),
                100.0 * out.utilization.level("global ring").unwrap_or(0.0),
            );
        }
        println!();
    }
    println!(
        "With no locality (R=1.0) the global ring saturates and extra\n\
         outstanding transactions only queue; with locality (R=0.2) most\n\
         traffic stays on local rings and higher T hides latency."
    );
    Ok(())
}
