//! Degradation curve: delivered throughput and effective latency as a
//! function of fault intensity, for a hierarchical ring and a mesh of
//! comparable size.
//!
//! The paper's comparison assumes a fault-free interconnect. This
//! example relaxes that assumption with the deterministic fault
//! subsystem: per-packet corruption probability is swept while the
//! end-to-end retry layer at the processors recovers what it can.
//! Delivered throughput should fall monotonically (to seed noise) as
//! the corruption rate rises, and the packet-conservation audit must
//! stay clean at every point — faults degrade service, they never
//! lose packets unaccountably.
//!
//! ```text
//! cargo run --release --example degradation_curve
//! ```

use ringmesh::{FaultConfig, FaultPlan, NetworkSpec, RunError, SimParams, System, SystemConfig};
use ringmesh_net::CacheLineSize;

fn plan(corrupt: f64, horizon: u64) -> FaultPlan {
    FaultPlan::new(FaultConfig {
        seed: 7,
        corrupt_prob: corrupt,
        link_down_events: 0,
        link_down_cycles: 0,
        dead_nodes: 0,
        horizon,
    })
    .with_check()
}

fn main() -> Result<(), RunError> {
    let sim = SimParams::quick();
    let networks = [NetworkSpec::ring("2:2:4".parse()?), NetworkSpec::mesh(4)];
    println!(
        "corruption sweep, retry enabled (timeout 1000, 4 attempts), {} PMs each\n",
        16
    );
    for network in networks {
        println!("{}:", network.label());
        println!(
            "  {:>9}  {:>12}  {:>12}  {:>7}  {:>8}",
            "corrupt", "thru (t/cyc)", "latency", "drops", "retries"
        );
        for corrupt in [0.0, 0.005, 0.01, 0.02, 0.05, 0.1] {
            let cfg = SystemConfig::new(network.clone(), CacheLineSize::B64).with_sim(sim);
            let report = System::new(cfg)?.run_faulty(&plan(corrupt, sim.horizon()))?;
            assert!(
                report.violation.is_none(),
                "conservation violated at corrupt={corrupt}: {:?}",
                report.violation
            );
            println!(
                "  {corrupt:>9.3}  {:>12.4}  {:>10.1}cy  {:>7}  {:>8}",
                report.result.throughput,
                report.result.mean_latency(),
                report.faults.drops.total(),
                report.retry.retries
            );
        }
        println!();
    }
    println!("Conservation audit clean at every point: no packet lost or duplicated");
    println!("except through an accounted drop.");
    Ok(())
}
