//! Quickstart: simulate the same 36-processor workload on a
//! hierarchical ring and on a mesh, and compare round-trip latency.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ringmesh::{run_config, NetworkSpec, RunError, SimParams, SystemConfig};
use ringmesh_net::CacheLineSize;
use ringmesh_workload::WorkloadParams;

fn main() -> Result<(), RunError> {
    let cache_line = CacheLineSize::B64;
    let workload = WorkloadParams::paper_baseline(); // R=1.0, C=0.04, T=4

    // 36 processors: the paper's optimal ring topology is 2:3:6
    // (Table 2); the equivalent mesh is 6x6 with 4-flit buffers.
    let ring = SystemConfig::new(
        NetworkSpec::ring("2:3:6".parse().map_err(RunError::InvalidConfig)?),
        cache_line,
    )
    .with_workload(workload)
    .with_sim(SimParams::full());
    let mesh = SystemConfig::new(NetworkSpec::mesh(6), cache_line)
        .with_workload(workload)
        .with_sim(SimParams::full());

    println!("simulating 36 PMs, 64B lines, R=1.0, C=0.04, T=4 ...\n");
    for cfg in [ring, mesh] {
        let label = cfg.network.label();
        let r = run_config(cfg)?;
        println!(
            "{label:28} latency {:6.1} ± {:4.1} cycles   throughput {:.3} txn/cycle   util {:4.1}%",
            r.latency.mean,
            r.latency.ci95,
            r.throughput,
            100.0 * r.utilization.overall
        );
    }
    println!(
        "\nAt this size and cache line the paper finds rings and meshes \
         near their cross-over point (Fig. 14: ~27 nodes for 64B lines)."
    );
    Ok(())
}
