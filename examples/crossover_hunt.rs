//! Cross-over hunt: locate the system size at which meshes overtake
//! hierarchical rings for each cache line size (the paper's Fig. 14
//! reports 16/25/27/36 nodes for 16/32/64/128-byte lines with 4-flit
//! mesh buffers).
//!
//! ```text
//! cargo run --release --example crossover_hunt
//! ```

use ringmesh::topologies::{mesh_size_ladder, ring_size_ladder};
use ringmesh::{run_series, NetworkSpec, SimParams, SystemConfig};
use ringmesh_net::{BufferRegime, CacheLineSize};
use ringmesh_workload::WorkloadParams;

fn main() {
    let sim = SimParams::full();
    let workload = WorkloadParams::paper_baseline(); // R=1.0, T=4
    println!("hunting ring/mesh cross-overs (R=1.0, C=0.04, T=4, 4-flit mesh buffers)\n");
    for cl in CacheLineSize::ALL {
        let ring_points = ring_size_ladder(cl, 121)
            .into_iter()
            .map(|(p, spec)| {
                (
                    f64::from(p),
                    SystemConfig::new(NetworkSpec::ring(spec), cl)
                        .with_workload(workload)
                        .with_sim(sim),
                )
            })
            .collect();
        let mesh_points = mesh_size_ladder(121)
            .into_iter()
            .map(|p| {
                let side = (p as f64).sqrt() as u32;
                (
                    f64::from(p),
                    SystemConfig::new(
                        NetworkSpec::Mesh {
                            side,
                            buffers: BufferRegime::FourFlit,
                        },
                        cl,
                    )
                    .with_workload(workload)
                    .with_sim(sim),
                )
            })
            .collect();
        let ring = run_series("ring", ring_points, |r| r.mean_latency());
        let mesh = run_series("mesh", mesh_points, |r| r.mean_latency());
        match ring.crossover_with(&mesh) {
            Some(x) => println!("{cl:>4} lines: mesh overtakes the ring at ~{x:.0} nodes"),
            None => println!(
                "{cl:>4} lines: no cross-over up to 121 nodes (ring wins throughout or never)"
            ),
        }
    }
    println!("\npaper (Fig. 14): 16, 25, 27 and 36 nodes respectively");
}
