//! Locality sweep: how the M-MRP region parameter `R` moves the
//! ring/mesh balance at a fixed system size.
//!
//! The paper's headline result (Fig. 17) is that with even moderate
//! locality (R ≤ 0.3) hierarchical rings beat meshes up to ~121
//! processors. This example sweeps R continuously on 54-processor
//! systems and prints the ring:mesh latency ratio.
//!
//! ```text
//! cargo run --release --example locality_sweep
//! ```

use ringmesh::{run_config, NetworkSpec, RunError, SimParams, SystemConfig};
use ringmesh_net::CacheLineSize;
use ringmesh_workload::WorkloadParams;

fn main() -> Result<(), RunError> {
    let cl = CacheLineSize::B64;
    // 54 processors: ring 3:3:6 (Table 2); nearest square mesh: 7x7=49.
    let ring_spec = "3:3:6".parse().map_err(RunError::InvalidConfig)?;
    println!("54-PM ring (3:3:6) vs 49-PM mesh (7x7), 64B lines, C=0.04, T=4\n");
    println!(
        "{:>5}  {:>10}  {:>10}  {:>12}",
        "R", "ring (cyc)", "mesh (cyc)", "ring:mesh"
    );
    for r in [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0] {
        let workload = WorkloadParams::paper_baseline().with_region(r);
        let ring = run_config(
            SystemConfig::new(NetworkSpec::ring(std::clone::Clone::clone(&ring_spec)), cl)
                .with_workload(workload)
                .with_sim(SimParams::full()),
        )?;
        let mesh = run_config(
            SystemConfig::new(NetworkSpec::mesh(7), cl)
                .with_workload(workload)
                .with_sim(SimParams::full()),
        )?;
        println!(
            "{r:>5.2}  {:>10.1}  {:>10.1}  {:>11.2}x",
            ring.latency.mean,
            mesh.latency.mean,
            ring.latency.mean / mesh.latency.mean
        );
    }
    println!("\nRatios below 1.0 mean the hierarchical ring is faster.");
    Ok(())
}
