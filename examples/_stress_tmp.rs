use ringmesh_net::{CacheLineSize, Interconnect, NodeId, Packet, PacketKind, QueueClass, TxnId};
use ringmesh_ring::{RingConfig, RingNetwork, RingSpec, SlottedRingNetwork};

fn lcg(s: &mut u64) -> u64 { *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); *s >> 33 }

fn main() {
    // 1. convoy knob at light load (10% injection probability per PM per cycle)
    let cfg = { let mut c = RingConfig::new(CacheLineSize::B64); c.convoy_threshold_packets = 1; c };
    let spec: RingSpec = "2:3:4".parse().unwrap();
    let p = spec.num_pms();
    let mut net = RingNetwork::new(&spec, cfg.clone());
    let mut seed = 999u64; let mut txn = 0u64; let mut out = Vec::new();
    let mut stalled = false;
    for cycle in 0..50_000u64 {
        for s in 0..p {
            if lcg(&mut seed) % 10 != 0 { continue; }
            let kinds = [PacketKind::ReadReq, PacketKind::ReadResp, PacketKind::WriteReq, PacketKind::WriteResp];
            let kind = kinds[(lcg(&mut seed) % 4) as usize];
            let d = (lcg(&mut seed) % p as u64) as u32;
            if d != s && net.can_inject(NodeId::new(s), QueueClass::of(kind)) {
                txn += 1;
                net.inject(NodeId::new(s), Packet{ txn: TxnId::new(txn), kind,
                    src: NodeId::new(s), dst: NodeId::new(d),
                    flits: cfg.format.flits(kind, cfg.cache_line), injected_at: 0});
            }
        }
        if let Err(e) = net.step(&mut out) { println!("convoy-light: STALL at cycle {cycle}: {e}"); stalled = true; break; }
    }
    if !stalled { println!("convoy-light: ok, delivered {}", out.len()); }

    // 2. slotted network with out-of-range destination
    let cfg = RingConfig::new(CacheLineSize::B32);
    let mut net = SlottedRingNetwork::new(&RingSpec::single(4), cfg.clone());
    net.inject(NodeId::new(0), Packet{ txn: TxnId::new(1), kind: PacketKind::ReadReq,
        src: NodeId::new(0), dst: NodeId::new(99), flits: 1, injected_at: 0});
    let mut out = Vec::new();
    for _ in 0..100_000 { if net.step(&mut out).is_err() { println!("slotted: watchdog tripped"); break; } }
    println!("slotted oob dst: in_flight={} after 100k cycles (watchdog never trips: flit circulates)", net.in_flight());
}
