//! Integration tests for the fault-injection subsystem: randomized
//! topology × fault-schedule sweeps with the conservation audit on,
//! bit-exact replay of faulty runs, and the graceful-failure path when
//! the retry layer is disabled.
//!
//! Like `proptests.rs`, the randomized cases are driven by the
//! simulator's own [`SimRng`] (no external property-testing crate in
//! the offline build environment), so every failure replays
//! bit-for-bit from the fixed seed.

use ringmesh::{
    FaultConfig, FaultPlan, FaultRunReport, NetworkSpec, RetryPolicy, RunError, SimParams, System,
    SystemConfig,
};
use ringmesh_engine::SimRng;
use ringmesh_net::CacheLineSize;
use ringmesh_workload::WorkloadParams;

fn short_sim() -> SimParams {
    SimParams {
        warmup: 800,
        batch_cycles: 800,
        batches: 3,
    }
}

/// A retry policy short enough that even a fully-blackholed slot cycles
/// through all attempts well inside the stall-watchdog horizon.
fn short_retry() -> RetryPolicy {
    RetryPolicy {
        timeout: 200,
        max_attempts: 3,
        backoff: 32,
    }
}

fn random_faults(rng: &mut SimRng, horizon: u64) -> FaultConfig {
    FaultConfig {
        seed: rng.uniform_usize(1 << 20) as u64,
        corrupt_prob: [0.0, 0.01, 0.05][rng.uniform_usize(3)],
        link_down_events: rng.uniform_usize(5) as u32,
        link_down_cycles: 50 + rng.uniform_usize(400) as u64,
        dead_nodes: rng.uniform_usize(3) as u32,
        horizon,
    }
}

/// Runs one faulty case; stalls are legitimate outcomes under heavy
/// faults, everything else must succeed with a clean conservation
/// audit.
fn check_case(network: NetworkSpec, faults: FaultConfig, seed: u64) {
    let label = network.label();
    let cfg = SystemConfig::new(network, CacheLineSize::B32)
        .with_sim(short_sim())
        .with_seed(seed);
    let plan = FaultPlan::new(faults)
        .with_retry(short_retry())
        .with_check();
    match System::new(cfg).unwrap().run_faulty(&plan) {
        Ok(report) => {
            assert!(
                report.violation.is_none(),
                "{label} faults={faults:?}: {:?}",
                report.violation
            );
            let (injected, delivered, dropped) = report
                .conservation
                .unwrap_or_else(|| panic!("{label}: --check must force a ledger"));
            assert!(
                injected >= delivered + dropped,
                "{label}: {injected} < {delivered} + {dropped}"
            );
            assert_eq!(report.faults.drops.total(), dropped, "{label}");
        }
        Err(RunError::Stall(e)) => {
            eprintln!("accepted stall under faults: {label} faults={faults:?}: {e}");
        }
        Err(e) => panic!("{label} faults={faults:?}: {e}"),
    }
}

#[test]
fn random_ring_fault_schedules_conserve_packets() {
    let mut rng = SimRng::from_seed(0xFA01_0001);
    let specs = ["4", "2:3", "2:4", "2:2:3", "3:4"];
    for case in 0..20 {
        let spec = specs[rng.uniform_usize(specs.len())];
        let faults = random_faults(&mut rng, short_sim().horizon());
        check_case(
            NetworkSpec::ring(spec.parse().unwrap()),
            faults,
            0x5EED + case,
        );
    }
}

#[test]
fn random_mesh_fault_schedules_conserve_packets() {
    let mut rng = SimRng::from_seed(0xFA01_0002);
    for case in 0..20 {
        let side = 2 + rng.uniform_usize(3) as u32;
        let faults = random_faults(&mut rng, short_sim().horizon());
        check_case(NetworkSpec::mesh(side), faults, 0x5EED + case);
    }
}

/// Formats the replay-relevant surface of a report; two runs with the
/// same seeds must produce byte-identical summaries.
fn summary(r: &FaultRunReport) -> String {
    format!(
        "lat={:?} thru={} wl={:?} faults={:?} retry={:?} cons={:?}",
        r.result.latency, r.result.throughput, r.result.workload, r.faults, r.retry, r.conservation
    )
}

#[test]
fn faulty_runs_replay_byte_identically() {
    let mk = || {
        let cfg = SystemConfig::new(
            NetworkSpec::ring("2:4".parse().unwrap()),
            CacheLineSize::B64,
        )
        .with_sim(short_sim())
        .with_seed(99);
        let plan = FaultPlan::new(FaultConfig {
            seed: 21,
            corrupt_prob: 0.02,
            link_down_events: 3,
            link_down_cycles: 200,
            dead_nodes: 1,
            horizon: short_sim().horizon(),
        })
        .with_retry(short_retry())
        .with_check();
        summary(&System::new(cfg).unwrap().run_faulty(&plan).unwrap())
    };
    assert_eq!(mk(), mk());
}

/// Without the retry layer, dropped transactions leak their outstanding
/// slots until the system-level watchdog reports the run as stalled —
/// the graceful-failure path scripts detect via the exit status.
#[test]
fn unprotected_fault_run_stalls_instead_of_hanging() {
    let cfg = SystemConfig::new(
        NetworkSpec::ring("2:4".parse().unwrap()),
        CacheLineSize::B32,
    )
    .with_workload(WorkloadParams::paper_baseline().with_region(1.0))
    .with_sim(short_sim())
    .with_seed(3);
    // Kill every IRI at cycle ~0: all cross-ring traffic is refused and,
    // with no retry layer, every refused transaction wedges a slot.
    let plan = FaultPlan::new(FaultConfig {
        seed: 5,
        corrupt_prob: 0.0,
        link_down_events: 0,
        link_down_cycles: 0,
        dead_nodes: u32::MAX,
        horizon: 1,
    })
    .without_retry();
    let r = System::new(cfg).unwrap().run_faulty(&plan);
    assert!(matches!(r, Err(RunError::Stall(_))), "got {r:?}");
}

/// The same schedule under the retry layer keeps the run alive: local
/// traffic completes, unreachable transactions are given up cleanly.
#[test]
fn retry_layer_keeps_faulty_run_alive() {
    let cfg = SystemConfig::new(
        NetworkSpec::ring("2:4".parse().unwrap()),
        CacheLineSize::B32,
    )
    .with_workload(WorkloadParams::paper_baseline().with_region(1.0))
    .with_sim(short_sim())
    .with_seed(3);
    let plan = FaultPlan::new(FaultConfig {
        seed: 5,
        corrupt_prob: 0.0,
        link_down_events: 0,
        link_down_cycles: 0,
        dead_nodes: u32::MAX,
        horizon: 1,
    })
    .with_retry(short_retry())
    .with_check();
    let report = System::new(cfg).unwrap().run_faulty(&plan).unwrap();
    assert!(report.violation.is_none());
    assert!(report.retry.gave_up > 0, "cross-ring traffic must give up");
    assert!(
        report.result.workload.retired > 0,
        "local traffic must still complete"
    );
}
