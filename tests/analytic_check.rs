//! Cross-validation of the simulators against the closed-form models:
//! at very light load, simulated round-trip latency must match the
//! zero-load model closely; saturated throughput must stay below the
//! bisection bound.

use ringmesh::analytic::{
    mesh_bisection_bound, mesh_zero_load_latency, ring_bisection_bound, ring_zero_load_latency,
};
use ringmesh::{run_config, NetworkSpec, SimParams, SystemConfig};
use ringmesh_net::CacheLineSize;
use ringmesh_workload::WorkloadParams;

/// Light load: one outstanding transaction and a 0.2% miss rate keep
/// the network effectively empty (even 128-byte worms on a two-station
/// global ring stay under ~15% utilization).
fn light() -> WorkloadParams {
    let mut w = WorkloadParams::paper_baseline().with_outstanding(1);
    w.miss_rate = 0.002;
    w
}

fn sim() -> SimParams {
    SimParams {
        warmup: 5_000,
        batch_cycles: 20_000,
        batches: 4,
    }
}

#[test]
fn ring_simulator_matches_zero_load_model() {
    for (spec, cl) in [
        ("6", CacheLineSize::B32),
        ("2:4", CacheLineSize::B64),
        ("2:3:4", CacheLineSize::B128),
    ] {
        let spec: ringmesh_ring::RingSpec = spec.parse().unwrap();
        let predicted = ring_zero_load_latency(&spec, cl, &light(), 10);
        let cfg = SystemConfig::new(NetworkSpec::ring(spec.clone()), cl)
            .with_workload(light())
            .with_sim(sim());
        let measured = run_config(cfg).unwrap().mean_latency();
        // The model is the exact no-contention pipeline (verified
        // per-transaction by unit tests); even at 0.2% miss rate long
        // worms self-contend a little, so measured sits slightly above.
        assert!(
            measured >= 0.98 * predicted && measured <= 1.25 * predicted,
            "{spec} {cl}: predicted {predicted:.1}, measured {measured:.1}"
        );
    }
}

#[test]
fn mesh_simulator_matches_zero_load_model() {
    for (side, cl) in [
        (2u32, CacheLineSize::B32),
        (3, CacheLineSize::B64),
        (4, CacheLineSize::B128),
    ] {
        let predicted = mesh_zero_load_latency(side, cl, &light(), 10);
        let cfg = SystemConfig::new(NetworkSpec::mesh(side), cl)
            .with_workload(light())
            .with_sim(sim());
        let measured = run_config(cfg).unwrap().mean_latency();
        assert!(
            measured >= 0.98 * predicted && measured <= 1.25 * predicted,
            "{side}x{side} {cl}: predicted {predicted:.1}, measured {measured:.1}"
        );
    }
}

#[test]
fn saturated_ring_throughput_below_bisection_bound() {
    let spec: ringmesh_ring::RingSpec = "3:3:6".parse().unwrap();
    let cl = CacheLineSize::B64;
    let bound = ring_bisection_bound(&spec, cl, &WorkloadParams::paper_baseline(), 1);
    let cfg = SystemConfig::new(NetworkSpec::ring(spec), cl).with_sim(SimParams::quick());
    let r = run_config(cfg).unwrap();
    assert!(
        r.throughput <= bound * 1.02,
        "throughput {:.3} exceeds bisection bound {bound:.3}",
        r.throughput
    );
    // …and the simulator should realise a meaningful share of it.
    assert!(
        r.throughput > 0.4 * bound,
        "throughput {:.3} ≪ bound {bound:.3}: simulator leaving bandwidth unused",
        r.throughput
    );
}

#[test]
fn saturated_mesh_throughput_below_bisection_bound() {
    let cl = CacheLineSize::B64;
    let bound = mesh_bisection_bound(8, cl, &WorkloadParams::paper_baseline());
    let cfg = SystemConfig::new(NetworkSpec::mesh(8), cl).with_sim(SimParams::quick());
    let r = run_config(cfg).unwrap();
    assert!(
        r.throughput <= bound * 1.02,
        "throughput {:.3} exceeds bisection bound {bound:.3}",
        r.throughput
    );
}

#[test]
fn double_speed_bound_doubles_and_simulator_follows() {
    let spec: ringmesh_ring::RingSpec = "4:3:8".parse().unwrap(); // 96 PMs, saturated
    let cl = CacheLineSize::B32;
    let wl = WorkloadParams::paper_baseline();
    let b1 = ring_bisection_bound(&spec, cl, &wl, 1);
    let b2 = ring_bisection_bound(&spec, cl, &wl, 2);
    assert!((b2 / b1 - 2.0).abs() < 1e-9);
    let thr = |speedup| {
        let cfg = SystemConfig::new(
            NetworkSpec::Ring {
                spec: spec.clone(),
                speedup,
            },
            cl,
        )
        .with_sim(SimParams::quick());
        run_config(cfg).unwrap().throughput
    };
    let (t1, t2) = (thr(1), thr(2));
    assert!(
        t2 > 1.2 * t1,
        "double speed throughput {t2:.3} !> 1.2x {t1:.3}"
    );
}
