//! Cross-crate property-based tests: routing correctness, delivery and
//! conservation on randomized topologies, workloads and traffic.

use proptest::prelude::*;

use ringmesh_mesh::{MeshConfig, MeshNetwork, MeshTopology};
use ringmesh_net::{
    CacheLineSize, Interconnect, NodeId, Packet, PacketKind, QueueClass, TxnId,
};
use ringmesh_ring::{RingConfig, RingNetwork, RingSpec, RingTopology};
use ringmesh_workload::{access_region, Placement};

fn arb_spec() -> impl Strategy<Value = RingSpec> {
    // 1–3 levels, arities 2..=6: up to 216 PMs.
    prop::collection::vec(2u32..=6, 1..=3).prop_map(|a| RingSpec::new(a).unwrap())
}

fn arb_cl() -> impl Strategy<Value = CacheLineSize> {
    prop::sample::select(CacheLineSize::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ring routing walks terminate and respect the uni-directional
    /// round-trip identity on the same ring.
    #[test]
    fn ring_hops_terminate_and_bound(spec in arb_spec(), a in 0u32..216, b in 0u32..216) {
        let topo = RingTopology::new(&spec);
        let p = topo.num_pms();
        let (a, b) = (a % p, b % p);
        prop_assume!(a != b);
        let h = topo.hops(NodeId::new(a), NodeId::new(b));
        // A route never visits a station side twice (no livelock).
        prop_assert!(h <= 2 * topo.num_stations() as u32);
        prop_assert!(h >= 1);
    }

    /// Every packet injected into a ring network is delivered exactly
    /// once, to the right PM.
    #[test]
    fn ring_delivers_random_traffic(
        spec in arb_spec(),
        cl in arb_cl(),
        pairs in prop::collection::vec((0u32..216, 0u32..216, prop::bool::ANY), 1..12),
    ) {
        let cfg = RingConfig::new(cl);
        let mut net = RingNetwork::new(&spec, cfg.clone());
        let p = spec.num_pms();
        let mut expected = Vec::new();
        for (i, (src, dst, write)) in pairs.into_iter().enumerate() {
            let (src, dst) = (src % p, dst % p);
            if src == dst {
                continue;
            }
            let kind = if write { PacketKind::WriteReq } else { PacketKind::ReadReq };
            if net.can_inject(NodeId::new(src), QueueClass::of(kind)) {
                net.inject(NodeId::new(src), Packet {
                    txn: TxnId::new(i as u64),
                    kind,
                    src: NodeId::new(src),
                    dst: NodeId::new(dst),
                    flits: cfg.format.flits(kind, cl),
                    injected_at: 0,
                });
                expected.push((i as u64, dst));
            }
        }
        let mut out = Vec::new();
        for _ in 0..20_000 {
            net.step(&mut out).unwrap();
            if out.len() == expected.len() {
                break;
            }
        }
        let mut got: Vec<(u64, u32)> = out.iter().map(|(n, p)| (p.txn.raw(), n.raw())).collect();
        got.sort_unstable();
        let mut expected_sorted = expected;
        expected_sorted.sort_unstable();
        prop_assert_eq!(got, expected_sorted);
        prop_assert_eq!(net.in_flight(), 0);
    }

    /// Same for meshes, across buffer regimes.
    #[test]
    fn mesh_delivers_random_traffic(
        side in 2u32..=5,
        cl in arb_cl(),
        buffers in prop::sample::select(ringmesh_net::BufferRegime::ALL.to_vec()),
        pairs in prop::collection::vec((0u32..25, 0u32..25, prop::bool::ANY), 1..12),
    ) {
        let cfg = MeshConfig::new(cl).with_buffers(buffers);
        let mut net = MeshNetwork::new(MeshTopology::new(side), cfg.clone());
        let p = side * side;
        let mut expected = Vec::new();
        for (i, (src, dst, write)) in pairs.into_iter().enumerate() {
            let (src, dst) = (src % p, dst % p);
            if src == dst {
                continue;
            }
            let kind = if write { PacketKind::WriteReq } else { PacketKind::ReadReq };
            if net.can_inject(NodeId::new(src), QueueClass::of(kind)) {
                net.inject(NodeId::new(src), Packet {
                    txn: TxnId::new(i as u64),
                    kind,
                    src: NodeId::new(src),
                    dst: NodeId::new(dst),
                    flits: cfg.format.flits(kind, cl),
                    injected_at: 0,
                });
                expected.push((i as u64, dst));
            }
        }
        let mut out = Vec::new();
        for _ in 0..20_000 {
            net.step(&mut out).unwrap();
            if out.len() == expected.len() {
                break;
            }
        }
        let mut got: Vec<(u64, u32)> = out.iter().map(|(n, p)| (p.txn.raw(), n.raw())).collect();
        got.sort_unstable();
        let mut expected_sorted = expected;
        expected_sorted.sort_unstable();
        prop_assert_eq!(got, expected_sorted);
        prop_assert_eq!(net.in_flight(), 0);
    }

    /// Access regions are consistent across placements: they contain
    /// the local PM first, have no duplicates, stay in range, and their
    /// cardinality never exceeds the machine.
    #[test]
    fn regions_well_formed(
        linear in prop::bool::ANY,
        size in 2u32..=12,
        pm in 0u32..144,
        r in 0.01f64..=1.0,
    ) {
        let placement = if linear {
            Placement::Linear { pms: size * size }
        } else {
            Placement::Grid { side: size }
        };
        let p = placement.num_pms();
        let pm = NodeId::new(pm % p);
        let region = access_region(placement, pm, r);
        prop_assert_eq!(region[0], pm);
        prop_assert!(region.len() as u32 <= p);
        let mut ids: Vec<u32> = region.iter().map(|n| n.raw()).collect();
        prop_assert!(ids.iter().all(|&i| i < p));
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "duplicates in region");
        // Monotonicity: growing R never shrinks the region.
        if r < 0.9 {
            let bigger = access_region(placement, pm, (r + 0.1).min(1.0));
            prop_assert!(bigger.len() >= region.len());
        }
    }

    /// Round-trip identity on single rings: forward + reverse distance
    /// equals the ring size.
    #[test]
    fn single_ring_round_trip_identity(n in 2u32..=32, a in 0u32..32, b in 0u32..32) {
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let topo = RingTopology::new(&RingSpec::single(n));
        let fwd = topo.hops(NodeId::new(a), NodeId::new(b));
        let back = topo.hops(NodeId::new(b), NodeId::new(a));
        prop_assert_eq!(fwd + back, n);
    }

    /// e-cube path length equals Manhattan distance for all pairs.
    #[test]
    fn ecube_is_minimal(side in 2u32..=8, a in 0u32..64, b in 0u32..64) {
        let m = MeshTopology::new(side);
        let p = side * side;
        let (a, b) = (NodeId::new(a % p), NodeId::new(b % p));
        prop_assert_eq!(m.path(a, b).len() as u32 - 1, m.manhattan(a, b));
    }
}
