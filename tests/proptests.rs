//! Cross-crate randomized property tests: routing correctness, delivery
//! and conservation on randomized topologies, workloads and traffic.
//!
//! The cases are driven by the simulator's own deterministic [`SimRng`]
//! (the build environment is offline, so the `proptest` crate is not
//! available); each test fixes a seed and sweeps a few dozen randomized
//! scenarios, so failures replay bit-for-bit.

use ringmesh_engine::SimRng;
use ringmesh_mesh::{MeshConfig, MeshNetwork, MeshTopology};
use ringmesh_net::{
    BufferRegime, CacheLineSize, Interconnect, NodeId, Packet, PacketKind, QueueClass, TxnId,
};
use ringmesh_ring::{RingConfig, RingNetwork, RingSpec, RingTopology};
use ringmesh_workload::{access_region, Placement};

const CASES: usize = 64;

/// 1–3 levels, arities 2..=6: up to 216 PMs.
fn random_spec(rng: &mut SimRng) -> RingSpec {
    let levels = 1 + rng.uniform_usize(3);
    let arities: Vec<u32> = (0..levels)
        .map(|_| 2 + rng.uniform_usize(5) as u32)
        .collect();
    RingSpec::new(arities).expect("arities >= 2 are always valid")
}

fn random_cl(rng: &mut SimRng) -> CacheLineSize {
    CacheLineSize::ALL[rng.uniform_usize(CacheLineSize::ALL.len())]
}

/// Distinct (src, dst) pair below `p`, or None for a degenerate draw.
fn random_pair(rng: &mut SimRng, p: u32) -> Option<(u32, u32)> {
    let a = rng.uniform_usize(p as usize) as u32;
    let b = rng.uniform_usize(p as usize) as u32;
    (a != b).then_some((a, b))
}

/// Ring routing walks terminate and respect the uni-directional
/// round-trip identity on the same ring.
#[test]
fn ring_hops_terminate_and_bound() {
    let mut rng = SimRng::from_seed(0xBEEF_0001);
    for _ in 0..CASES {
        let spec = random_spec(&mut rng);
        let topo = RingTopology::new(&spec);
        let Some((a, b)) = random_pair(&mut rng, topo.num_pms()) else {
            continue;
        };
        let h = topo.hops(NodeId::new(a), NodeId::new(b));
        // A route never visits a station side twice (no livelock).
        assert!(
            h <= 2 * topo.num_stations() as u32,
            "{spec:?}: {a}->{b} took {h} hops"
        );
        assert!(h >= 1);
    }
}

/// Drives `net` until every expected `(txn, dst)` delivery arrives,
/// then checks exact-once delivery and conservation.
fn drain_and_check(net: &mut dyn Interconnect, expected: &mut Vec<(u64, u32)>, ctx: &str) {
    let mut out = Vec::new();
    for _ in 0..20_000 {
        net.step(&mut out).unwrap();
        if out.len() == expected.len() {
            break;
        }
    }
    let mut got: Vec<(u64, u32)> = out.iter().map(|(n, p)| (p.txn.raw(), n.raw())).collect();
    got.sort_unstable();
    expected.sort_unstable();
    assert_eq!(&got, expected, "{ctx}: wrong deliveries");
    assert_eq!(net.in_flight(), 0, "{ctx}: flits left in network");
}

/// Every packet injected into a ring network is delivered exactly once,
/// to the right PM.
#[test]
fn ring_delivers_random_traffic() {
    let mut rng = SimRng::from_seed(0xBEEF_0002);
    for case in 0..CASES {
        let spec = random_spec(&mut rng);
        let cl = random_cl(&mut rng);
        let cfg = RingConfig::new(cl);
        let mut net = RingNetwork::new(&spec, cfg.clone());
        let p = spec.num_pms();
        let mut expected = Vec::new();
        let n_pairs = 1 + rng.uniform_usize(11);
        for i in 0..n_pairs {
            let Some((src, dst)) = random_pair(&mut rng, p) else {
                continue;
            };
            let kind = if rng.bernoulli(0.5) {
                PacketKind::WriteReq
            } else {
                PacketKind::ReadReq
            };
            if net.can_inject(NodeId::new(src), QueueClass::of(kind)) {
                net.inject(
                    NodeId::new(src),
                    Packet {
                        txn: TxnId::new(i as u64),
                        kind,
                        src: NodeId::new(src),
                        dst: NodeId::new(dst),
                        flits: cfg.format.flits(kind, cl),
                        injected_at: 0,
                    },
                );
                expected.push((i as u64, dst));
            }
        }
        drain_and_check(
            &mut net,
            &mut expected,
            &format!("case {case} ring {spec:?}"),
        );
    }
}

/// Same for meshes, across buffer regimes.
#[test]
fn mesh_delivers_random_traffic() {
    let mut rng = SimRng::from_seed(0xBEEF_0003);
    for case in 0..CASES {
        let side = 2 + rng.uniform_usize(4) as u32;
        let cl = random_cl(&mut rng);
        let buffers = BufferRegime::ALL[rng.uniform_usize(BufferRegime::ALL.len())];
        let cfg = MeshConfig::new(cl).with_buffers(buffers);
        let mut net = MeshNetwork::new(MeshTopology::new(side), cfg.clone());
        let p = side * side;
        let mut expected = Vec::new();
        let n_pairs = 1 + rng.uniform_usize(11);
        for i in 0..n_pairs {
            let Some((src, dst)) = random_pair(&mut rng, p) else {
                continue;
            };
            let kind = if rng.bernoulli(0.5) {
                PacketKind::WriteReq
            } else {
                PacketKind::ReadReq
            };
            if net.can_inject(NodeId::new(src), QueueClass::of(kind)) {
                net.inject(
                    NodeId::new(src),
                    Packet {
                        txn: TxnId::new(i as u64),
                        kind,
                        src: NodeId::new(src),
                        dst: NodeId::new(dst),
                        flits: cfg.format.flits(kind, cl),
                        injected_at: 0,
                    },
                );
                expected.push((i as u64, dst));
            }
        }
        drain_and_check(
            &mut net,
            &mut expected,
            &format!("case {case} mesh {side}x{side}"),
        );
    }
}

/// Access regions are consistent across placements: they contain the
/// local PM first, have no duplicates, stay in range, and their
/// cardinality never exceeds the machine.
#[test]
fn regions_well_formed() {
    let mut rng = SimRng::from_seed(0xBEEF_0004);
    for _ in 0..CASES {
        let size = 2 + rng.uniform_usize(11) as u32;
        let placement = if rng.bernoulli(0.5) {
            Placement::Linear { pms: size * size }
        } else {
            Placement::Grid { side: size }
        };
        let p = placement.num_pms();
        let pm = NodeId::new(rng.uniform_usize(p as usize) as u32);
        let r = 0.01 + 0.99 * rng.uniform_f64();
        let region = access_region(placement, pm, r);
        assert_eq!(region[0], pm);
        assert!(region.len() as u32 <= p);
        let mut ids: Vec<u32> = region.iter().map(|n| n.raw()).collect();
        assert!(ids.iter().all(|&i| i < p));
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicates in region");
        // Monotonicity: growing R never shrinks the region.
        if r < 0.9 {
            let bigger = access_region(placement, pm, (r + 0.1).min(1.0));
            assert!(bigger.len() >= region.len());
        }
    }
}

/// Round-trip identity on single rings: forward + reverse distance
/// equals the ring size.
#[test]
fn single_ring_round_trip_identity() {
    let mut rng = SimRng::from_seed(0xBEEF_0005);
    for _ in 0..CASES {
        let n = 2 + rng.uniform_usize(31) as u32;
        let Some((a, b)) = random_pair(&mut rng, n) else {
            continue;
        };
        let topo = RingTopology::new(&RingSpec::single(n));
        let fwd = topo.hops(NodeId::new(a), NodeId::new(b));
        let back = topo.hops(NodeId::new(b), NodeId::new(a));
        assert_eq!(fwd + back, n);
    }
}

/// e-cube path length equals Manhattan distance for all pairs.
#[test]
fn ecube_is_minimal() {
    let mut rng = SimRng::from_seed(0xBEEF_0006);
    for _ in 0..CASES {
        let side = 2 + rng.uniform_usize(7) as u32;
        let m = MeshTopology::new(side);
        let p = side * side;
        let a = NodeId::new(rng.uniform_usize(p as usize) as u32);
        let b = NodeId::new(rng.uniform_usize(p as usize) as u32);
        assert_eq!(m.path(a, b).len() as u32 - 1, m.manhattan(a, b));
    }
}
