//! Chaos harness: the serve layer versus unclean process death and
//! concurrent clients, exercised end-to-end through the real binary.
//!
//! The crash-safety invariant under test: SIGKILL a server mid-batch,
//! restart it over the same cache directory, and the batch's results
//! are byte-identical to a never-interrupted run — the journal replays
//! the accepted work, the checkpoint resumes the simulation, and the
//! integrity-footed cache serves the healed result.
//!
//! These tests spawn the actual `ringmesh` binary (via
//! `CARGO_BIN_EXE_ringmesh`), so they cover the CLI wiring — signal
//! handling, exit codes, TCP accept loop — not just the library.

#![cfg(unix)]

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStderr, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn tempdir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ringmesh-chaos-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A job big enough (~360k cycles ≈ seconds of wall clock) that killing
/// the server a few progress windows in is reliably mid-run.
const BIG_JOB: &str = r#"{"op":"job","id":"big","network":"mesh","side":5,"warmup":40000,"batch_cycles":40000,"batches":8,"cache_line":32,"seed":3}"#;

/// A small job for the multi-client smoke (~2.4k cycles).
const SMALL_JOB: &str = r#"{"op":"job","id":"small","network":"mesh","side":3,"warmup":600,"batch_cycles":600,"batches":2,"cache_line":32}"#;

struct Serve {
    child: Child,
    addr: String,
    stderr: Option<ChildStderr>,
}

/// Spawns `ringmesh serve --listen 127.0.0.1:0` over `cache` and waits
/// for the bound address on stderr.
fn spawn_serve(cache: &Path, extra: &[&str]) -> Serve {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ringmesh"))
        .arg("serve")
        .args(["--listen", "127.0.0.1:0"])
        .args(["--cache", cache.to_str().unwrap()])
        .args(["--checkpoint-every", "2000"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ringmesh serve");
    let mut stderr = child.stderr.take().expect("piped stderr");
    // Read stderr byte-by-byte until the listening line: recovery runs
    // before the bind, so this also waits out journal replay.
    let mut seen = String::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        assert!(
            Instant::now() < deadline,
            "no listening line; stderr: {seen}"
        );
        let mut byte = [0u8; 1];
        match stderr.read(&mut byte) {
            Ok(1) => seen.push(byte[0] as char),
            _ => panic!("serve exited early; stderr: {seen}"),
        }
        if let Some(rest) = seen
            .lines()
            .last()
            .and_then(|l| l.strip_prefix("ringmesh serve: listening on "))
        {
            if seen.ends_with('\n') {
                break rest.trim().to_string();
            }
        }
    };
    Serve {
        child,
        addr,
        stderr: Some(stderr),
    }
}

impl Serve {
    fn connect(&self) -> TcpStream {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match TcpStream::connect(&self.addr) {
                Ok(s) => return s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("connect {}: {e}", self.addr),
            }
        }
    }

    /// Drains remaining stderr on a thread so the child never blocks on
    /// a full pipe while we wait for it.
    fn drain_stderr(&mut self) {
        if let Some(mut err) = self.stderr.take() {
            std::thread::spawn(move || {
                let mut sink = String::new();
                let _ = err.read_to_string(&mut sink);
            });
        }
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn send_line(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
}

fn event_kind(line: &str) -> &str {
    // Events are flat objects with "event" first — cheap field grab
    // without a JSON dependency in this crate's test profile.
    line.split("\"event\":\"")
        .nth(1)
        .and_then(|r| r.split('"').next())
        .unwrap_or("")
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let rest = line.split(&pat).nth(1)?;
    let rest = rest.trim_start();
    let end = rest
        .char_indices()
        .find(|&(i, c)| {
            if rest.starts_with('"') {
                i > 0 && c == '"'
            } else {
                c == ',' || c == '}'
            }
        })
        .map(|(i, _)| i)?;
    Some(rest[..end].trim_matches('"'))
}

/// Runs one scripted session over a fresh connection, returning every
/// event line received until the terminal event (or EOF).
fn run_session(serve: &Serve, requests: &[&str], until: &str) -> Vec<String> {
    let mut stream = serve.connect();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for r in requests {
        send_line(&mut stream, r);
    }
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let done = event_kind(&line) == until;
        lines.push(line.trim_end().to_string());
        if done {
            break;
        }
    }
    lines
}

/// The headline invariant: SIGKILL mid-batch, restart, byte-identical
/// results against a never-interrupted control run.
#[test]
fn sigkill_mid_batch_recovers_to_identical_results() {
    let cache = tempdir("sigkill");
    let control_cache = tempdir("sigkill-control");

    // Control: the same job on an untouched server.
    let control = {
        let serve = spawn_serve(&control_cache, &[]);
        let lines = run_session(
            &serve,
            &[BIG_JOB, r#"{"op":"run"}"#, r#"{"op":"quit"}"#],
            "bye",
        );
        lines
            .iter()
            .find(|l| event_kind(l) == "result")
            .expect("control result")
            .clone()
    };

    // Chaos: kill the server after a few progress windows stream back.
    {
        let mut serve = spawn_serve(&cache, &[]);
        let mut stream = serve.connect();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        send_line(&mut stream, BIG_JOB);
        send_line(&mut stream, r#"{"op":"run"}"#);
        let mut windows = 0;
        loop {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).unwrap() > 0,
                "server closed before any windows"
            );
            match event_kind(&line) {
                "window" => windows += 1,
                "result" | "batch" => panic!("job finished before the kill; enlarge BIG_JOB"),
                _ => {}
            }
            if windows >= 3 {
                break;
            }
        }
        serve.drain_stderr();
        serve.child.kill().unwrap(); // SIGKILL: no atexit, no flushing
        serve.child.wait().unwrap();
    }

    // Restart over the same cache: the journal replays the accepted job
    // (resuming from its checkpoint) before the server accepts clients,
    // so the resubmission is answered from the healed cache.
    let serve = spawn_serve(&cache, &[]);
    let lines = run_session(
        &serve,
        &[BIG_JOB, r#"{"op":"run"}"#, r#"{"op":"quit"}"#],
        "bye",
    );
    let accepted = lines
        .iter()
        .find(|l| event_kind(l) == "accepted")
        .expect("accepted event");
    assert_eq!(
        field(accepted, "cached"),
        Some("true"),
        "recovery must have completed the journaled job: {accepted}"
    );
    let result = lines
        .iter()
        .find(|l| event_kind(l) == "result")
        .expect("recovered result");

    // Byte-identical payloads: compare the embedded result data (the
    // cached/resumed flags legitimately differ between the sessions).
    let data = |line: &str| {
        line.split("\"data\":")
            .nth(1)
            .expect("data field")
            .trim_end_matches('}')
            .to_string()
    };
    assert_eq!(
        data(result),
        data(&control),
        "recovered result must be byte-identical to the control run"
    );
    let _ = fs::remove_dir_all(&cache);
    let _ = fs::remove_dir_all(&control_cache);
}

/// Four concurrent clients over one server: every session completes,
/// identical jobs answer byte-identically, and admission never wedges.
#[test]
fn four_concurrent_clients_get_consistent_answers() {
    let cache = tempdir("clients");
    let serve = spawn_serve(&cache, &["--max-batches", "4"]);

    let results: Vec<(usize, String)> = std::thread::scope(|s| {
        let serve = &serve;
        let handles: Vec<_> = (0..4)
            .map(|i| {
                s.spawn(move || {
                    // Two jobs per client: one shared across all
                    // clients, one distinct per client (distinct seed).
                    let own = format!(
                        r#"{{"op":"job","id":"own","network":"ring","spec":"2:4","warmup":600,"batch_cycles":600,"batches":2,"cache_line":32,"seed":{}}}"#,
                        100 + i
                    );
                    let lines = run_session(
                        serve,
                        &[SMALL_JOB, &own, r#"{"op":"run"}"#, r#"{"op":"quit"}"#],
                        "bye",
                    );
                    let batch = lines
                        .iter()
                        .find(|l| event_kind(l) == "batch")
                        .unwrap_or_else(|| panic!("client {i}: no batch event in {lines:?}"))
                        .clone();
                    assert_eq!(field(&batch, "jobs"), Some("2"), "client {i}: {batch}");
                    assert_eq!(field(&batch, "errors"), Some("0"), "client {i}: {batch}");
                    let shared = lines
                        .iter()
                        .find(|l| {
                            event_kind(l) == "result" && field(l, "id") == Some("small")
                        })
                        .unwrap_or_else(|| panic!("client {i}: no shared result"))
                        .split("\"data\":")
                        .nth(1)
                        .unwrap()
                        .to_string();
                    (i, shared)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(results.len(), 4);
    for (i, data) in &results {
        assert_eq!(
            data, &results[0].1,
            "client {i}: shared job must answer byte-identically"
        );
    }
    let _ = fs::remove_dir_all(&cache);
}

/// SIGTERM winds the server down gracefully with the documented
/// interrupted exit code (6), not a killed status.
#[test]
fn sigterm_exits_gracefully_with_the_interrupted_code() {
    let cache = tempdir("sigterm");
    let mut serve = spawn_serve(&cache, &[]);
    serve.drain_stderr();

    let ok = Command::new("kill")
        .args(["-TERM", &serve.child.id().to_string()])
        .status()
        .unwrap();
    assert!(ok.success());

    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = serve.child.try_wait().unwrap() {
            break status;
        }
        assert!(Instant::now() < deadline, "server ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(
        status.code(),
        Some(6),
        "graceful shutdown must exit with ExitStatus::Interrupted"
    );
    let _ = fs::remove_dir_all(&cache);
}
