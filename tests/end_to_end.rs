//! End-to-end integration tests across all crates: the public API,
//! conservation, determinism, and the watchdog.

use ringmesh::{run_config, NetworkSpec, RunError, SimParams, System, SystemConfig};
use ringmesh_net::{BufferRegime, CacheLineSize};
use ringmesh_workload::WorkloadParams;

fn quick_sim() -> SimParams {
    SimParams {
        warmup: 1_000,
        batch_cycles: 1_000,
        batches: 4,
    }
}

fn all_networks() -> Vec<NetworkSpec> {
    vec![
        NetworkSpec::ring("6".parse().unwrap()),
        NetworkSpec::ring("2:4".parse().unwrap()),
        NetworkSpec::ring("2:2:3".parse().unwrap()),
        NetworkSpec::Ring {
            spec: "2:2:3".parse().unwrap(),
            speedup: 2,
        },
        NetworkSpec::mesh(3),
        NetworkSpec::Mesh {
            side: 4,
            buffers: BufferRegime::OneFlit,
        },
        NetworkSpec::Mesh {
            side: 4,
            buffers: BufferRegime::CacheLine,
        },
    ]
}

#[test]
fn every_network_kind_runs_and_measures() {
    for network in all_networks() {
        let label = network.label();
        for cl in [CacheLineSize::B16, CacheLineSize::B128] {
            let cfg = SystemConfig::new(network.clone(), cl).with_sim(quick_sim());
            let r = run_config(cfg).unwrap_or_else(|e| panic!("{label} {cl}: {e}"));
            assert!(
                r.latency.n >= 3,
                "{label} {cl}: too few batches {:?}",
                r.latency
            );
            assert!(
                r.mean_latency() > 5.0,
                "{label} {cl}: implausibly low latency"
            );
            assert!(r.throughput > 0.0, "{label} {cl}: no throughput");
            assert!(
                r.workload.retired > 100,
                "{label} {cl}: {} retired",
                r.workload.retired
            );
        }
    }
}

#[test]
fn conservation_issued_minus_retired_bounded_by_t() {
    for network in all_networks() {
        let pms = network.num_pms() as u64;
        let cfg = SystemConfig::new(network.clone(), CacheLineSize::B64)
            .with_workload(WorkloadParams::paper_baseline().with_outstanding(4))
            .with_sim(quick_sim());
        let r = run_config(cfg).unwrap();
        let in_flight = r.workload.issued - r.workload.retired;
        assert!(
            in_flight <= 4 * pms,
            "{}: {in_flight} in flight > T*P",
            network.label()
        );
    }
}

#[test]
fn determinism_across_reruns() {
    for network in [
        NetworkSpec::ring("2:3".parse().unwrap()),
        NetworkSpec::mesh(3),
    ] {
        let cfg = SystemConfig::new(network, CacheLineSize::B32).with_sim(quick_sim());
        let a = run_config(cfg.clone()).unwrap();
        let b = run_config(cfg).unwrap();
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.throughput, b.throughput);
    }
}

#[test]
fn saturation_does_not_deadlock() {
    // Heavy load on bisection-limited rings and a packed mesh: the
    // watchdog must stay quiet and work must keep retiring.
    let heavy = WorkloadParams::paper_baseline().with_outstanding(8);
    for network in [
        NetworkSpec::ring("3:3:6".parse().unwrap()),
        NetworkSpec::Ring {
            spec: "4:3:6".parse().unwrap(),
            speedup: 2,
        },
        NetworkSpec::Mesh {
            side: 6,
            buffers: BufferRegime::OneFlit,
        },
    ] {
        let cfg = SystemConfig::new(network.clone(), CacheLineSize::B64)
            .with_workload(heavy)
            .with_sim(quick_sim());
        let r = run_config(cfg).unwrap_or_else(|e| panic!("{}: {e}", network.label()));
        assert!(
            r.workload.retired > 500,
            "{}: only {} retired under load",
            network.label(),
            r.workload.retired
        );
    }
}

#[test]
fn local_accesses_bypass_network() {
    // A single-PM "system": every access is local; the network moves
    // nothing but transactions still complete with pure memory latency.
    let cfg = SystemConfig::new(NetworkSpec::ring("1".parse().unwrap()), CacheLineSize::B32)
        .with_sim(quick_sim());
    let r = run_config(cfg).unwrap();
    assert_eq!(r.workload.retired, r.workload.local_retired);
    assert!(r.utilization.overall == 0.0);
    // Latency = memory latency exactly (default 10 cycles).
    assert!(
        (r.mean_latency() - 10.0).abs() < 1e-9,
        "{}",
        r.mean_latency()
    );
}

#[test]
fn system_debug_is_informative() {
    let cfg = SystemConfig::new(NetworkSpec::mesh(2), CacheLineSize::B16);
    let system = System::new(cfg).unwrap();
    let dbg = format!("{system:?}");
    assert!(dbg.contains("mesh 2x2"));
}

#[test]
fn invalid_configs_are_rejected_not_panicking() {
    let cfg = SystemConfig::new(
        NetworkSpec::Mesh {
            side: 0,
            buffers: BufferRegime::FourFlit,
        },
        CacheLineSize::B32,
    );
    assert!(matches!(System::new(cfg), Err(RunError::InvalidConfig(_))));
}

#[test]
fn slotted_ring_outperforms_wormhole_under_saturation() {
    // Extension check: the Hector/NUMAchine slotted discipline uses the
    // ring links more efficiently than blocking wormhole (the authors'
    // companion study, reference [21], reports the same direction).
    let spec: ringmesh_ring::RingSpec = "3:3:6".parse().unwrap();
    let worm = run_config(
        SystemConfig::new(NetworkSpec::ring(spec.clone()), CacheLineSize::B64)
            .with_sim(quick_sim()),
    )
    .unwrap();
    let slotted = run_config(
        SystemConfig::new(NetworkSpec::SlottedRing { spec }, CacheLineSize::B64)
            .with_sim(quick_sim()),
    )
    .unwrap();
    assert!(
        slotted.throughput > worm.throughput,
        "slotted {:.3} !> wormhole {:.3} txn/cycle",
        slotted.throughput,
        worm.throughput
    );
}

#[test]
fn percentiles_are_ordered_and_bracket_the_mean() {
    let cfg = SystemConfig::new(NetworkSpec::mesh(4), CacheLineSize::B32).with_sim(quick_sim());
    let r = run_config(cfg).unwrap();
    let (p50, p95, p99) = r.percentiles.expect("transactions completed");
    assert!(p50 <= p95 && p95 <= p99);
    assert!(p50 <= r.latency.mean * 1.5);
    assert!(p99 >= r.latency.mean * 0.5);
}
