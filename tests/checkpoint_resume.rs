//! Deterministic checkpoint/resume: an interrupted-and-resumed run must
//! fingerprint-match an uninterrupted one, bit for bit, on every
//! network model that supports snapshots (hierarchical ring, slotted
//! ring, mesh, hybrid mesh-of-rings — plain and hierarchical variants
//! of each family).

use ringmesh::{NetworkSpec, SimParams, SnapError, System, SystemConfig};
use ringmesh_net::CacheLineSize;

fn quick(network: NetworkSpec) -> SystemConfig {
    SystemConfig::new(network, CacheLineSize::B32)
        .with_sim(SimParams {
            warmup: 800,
            batch_cycles: 800,
            batches: 4,
        })
        .with_seed(41)
}

fn snapshot_networks() -> Vec<NetworkSpec> {
    vec![
        NetworkSpec::ring("6".parse().unwrap()),
        NetworkSpec::ring("2:2:3".parse().unwrap()),
        NetworkSpec::Ring {
            spec: "2:4".parse().unwrap(),
            speedup: 2,
        },
        NetworkSpec::SlottedRing {
            spec: "2:2:3".parse().unwrap(),
        },
        NetworkSpec::mesh(3),
        "hybrid:2x2:2".parse().expect("registry spec"),
    ]
}

fn uninterrupted(cfg: &SystemConfig) -> u64 {
    let mut sys = System::new(cfg.clone()).unwrap();
    let mut state = sys.begin();
    assert!(sys.run_to(&mut state, u64::MAX).unwrap());
    sys.finish(&state).fingerprint()
}

/// Runs to `stop`, checkpoints, restores into a *fresh* system, and
/// finishes there.
fn interrupted(cfg: &SystemConfig, stop: u64) -> u64 {
    let mut sys = System::new(cfg.clone()).unwrap();
    let mut state = sys.begin();
    assert!(
        !sys.run_to(&mut state, stop).unwrap(),
        "measurement must not complete before the checkpoint"
    );
    assert_eq!(sys.cycle(), stop);
    let bytes = sys.checkpoint(&state).unwrap();
    drop(sys);

    let mut resumed = System::new(cfg.clone()).unwrap();
    let mut rstate = resumed.begin();
    resumed.restore(&mut rstate, &bytes).unwrap();
    assert_eq!(resumed.cycle(), stop);
    assert!(resumed.run_to(&mut rstate, u64::MAX).unwrap());
    resumed.finish(&rstate).fingerprint()
}

#[test]
fn resumed_runs_match_uninterrupted_on_every_network() {
    for network in snapshot_networks() {
        let cfg = quick(network);
        let label = cfg.network.label();
        let clean = uninterrupted(&cfg);
        // Mid-warm-up, at the measurement boundary, and mid-measurement.
        for stop in [500, 800, 2_300] {
            let resumed = interrupted(&cfg, stop);
            assert_eq!(
                clean, resumed,
                "{label}: resume at cycle {stop} diverged from the uninterrupted run"
            );
        }
    }
}

#[test]
fn double_interruption_still_matches() {
    let cfg = quick(NetworkSpec::ring("2:2:3".parse().unwrap()));
    let clean = uninterrupted(&cfg);

    let mut sys = System::new(cfg.clone()).unwrap();
    let mut state = sys.begin();
    assert!(!sys.run_to(&mut state, 700).unwrap());
    let first = sys.checkpoint(&state).unwrap();

    let mut sys = System::new(cfg.clone()).unwrap();
    let mut state = sys.begin();
    sys.restore(&mut state, &first).unwrap();
    assert!(!sys.run_to(&mut state, 1_900).unwrap());
    let second = sys.checkpoint(&state).unwrap();

    let mut sys = System::new(cfg.clone()).unwrap();
    let mut state = sys.begin();
    sys.restore(&mut state, &second).unwrap();
    assert!(sys.run_to(&mut state, u64::MAX).unwrap());
    assert_eq!(clean, sys.finish(&state).fingerprint());
}

#[test]
fn checkpoint_rejects_wrong_config() {
    let cfg = quick(NetworkSpec::mesh(3));
    let mut sys = System::new(cfg.clone()).unwrap();
    let mut state = sys.begin();
    assert!(!sys.run_to(&mut state, 400).unwrap());
    let bytes = sys.checkpoint(&state).unwrap();

    // Same shape, different seed: the config fingerprint must not match.
    let other = cfg.with_seed(999);
    let mut wrong = System::new(other).unwrap();
    let mut wstate = wrong.begin();
    assert!(matches!(
        wrong.restore(&mut wstate, &bytes),
        Err(SnapError::Mismatch(_))
    ));
}

#[test]
fn truncated_checkpoint_is_an_error_not_a_panic() {
    let cfg = quick(NetworkSpec::ring("6".parse().unwrap()));
    let mut sys = System::new(cfg.clone()).unwrap();
    let mut state = sys.begin();
    assert!(!sys.run_to(&mut state, 600).unwrap());
    let bytes = sys.checkpoint(&state).unwrap();
    for cut in [0, 10, bytes.len() / 2, bytes.len() - 1] {
        let mut fresh = System::new(cfg.clone()).unwrap();
        let mut fstate = fresh.begin();
        assert!(
            fresh.restore(&mut fstate, &bytes[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
}
