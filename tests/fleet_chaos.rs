//! Fleet chaos: kill -9 a remote worker mid-batch and prove the merged
//! results are byte-identical to a single-process control run.
//!
//! This is the acceptance test for the distributed sweep fleet: a
//! coordinator (`ringmesh serve --fleet`) plus three `ringmesh worker`
//! processes run a four-job batch; one worker is SIGKILLed while its
//! lease is live. The coordinator must detect the death, re-dispatch
//! the orphaned job, and emit results (and the batch fingerprint) in
//! job-submission order — so the client-visible stream matches the
//! control run byte for byte, and everything exits with the documented
//! codes.

#![cfg(unix)]

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStderr, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn tempdir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ringmesh-fleet-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Four distinct jobs (seeds differ, so the keys differ), each long
/// enough (~50k cycles) that a worker killed a few progress windows in
/// is reliably mid-lease.
fn jobs() -> Vec<String> {
    (0..4)
        .map(|i| {
            format!(
                r#"{{"op":"job","id":"j{i}","network":"mesh","side":4,"warmup":10000,"batch_cycles":10000,"batches":4,"cache_line":32,"seed":{}}}"#,
                40 + i
            )
        })
        .collect()
}

struct Proc {
    child: Child,
    stderr: Option<ChildStderr>,
    /// Everything read from stderr while waiting for startup lines.
    seen: String,
}

impl Proc {
    /// Reads stderr byte-by-byte until `prefix` starts a complete line,
    /// returning the rest of that line.
    fn await_line(&mut self, prefix: &str) -> String {
        let stderr = self.stderr.as_mut().expect("stderr already drained");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            assert!(
                Instant::now() < deadline,
                "no {prefix:?} line; stderr so far: {}",
                self.seen
            );
            let mut byte = [0u8; 1];
            match stderr.read(&mut byte) {
                Ok(1) => self.seen.push(byte[0] as char),
                _ => panic!("process exited early; stderr: {}", self.seen),
            }
            if !self.seen.ends_with('\n') {
                continue;
            }
            if let Some(rest) = self
                .seen
                .lines()
                .last()
                .and_then(|l| l.strip_prefix(prefix))
            {
                return rest.trim().to_string();
            }
        }
    }

    /// Discards the rest of stderr on a thread so the child never
    /// blocks on a full pipe.
    fn drain_stderr(&mut self) {
        if let Some(mut err) = self.stderr.take() {
            std::thread::spawn(move || {
                let mut sink = String::new();
                let _ = err.read_to_string(&mut sink);
            });
        }
    }

    /// Waits for exit with a deadline, returning the status code.
    fn wait_code(&mut self, what: &str) -> i32 {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Some(status) = self.child.try_wait().unwrap() {
                return status
                    .code()
                    .unwrap_or_else(|| panic!("{what}: killed by signal"));
            }
            assert!(Instant::now() < deadline, "{what} did not exit");
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn(args: &[&str]) -> Proc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ringmesh"))
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ringmesh");
    let stderr = child.stderr.take().expect("piped stderr");
    Proc {
        child,
        stderr: Some(stderr),
        seen: String::new(),
    }
}

/// Spawns `ringmesh serve`, optionally with a fleet listener, and
/// returns the process plus (client_addr, fleet_addr).
fn spawn_serve(cache: &Path, fleet: bool) -> (Proc, String, Option<String>) {
    let cache = cache.to_str().unwrap().to_string();
    let mut args = vec!["serve", "--listen", "127.0.0.1:0", "--cache", &cache];
    if fleet {
        args.extend_from_slice(&["--fleet", "127.0.0.1:0"]);
    }
    let mut proc = spawn(&args);
    // The fleet listener binds before the client listener, so both
    // addresses are on stderr by the time the serve line appears.
    let fleet_addr = fleet.then(|| proc.await_line("ringmesh fleet: listening on "));
    let addr = proc.await_line("ringmesh serve: listening on ");
    proc.drain_stderr();
    (proc, addr, fleet_addr)
}

/// Spawns `ringmesh worker` and waits until the coordinator has
/// welcomed it (so dispatch can reach it).
fn spawn_worker(fleet_addr: &str) -> Proc {
    let mut proc = spawn(&["worker", "--connect", fleet_addr]);
    let line = proc.await_line("ringmesh worker: registered as worker ");
    assert!(!line.is_empty(), "registration line should name an id");
    proc.drain_stderr();
    proc
}

fn connect(addr: &str) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) if Instant::now() >= deadline => panic!("connect {addr}: {e}"),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn send_line(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
}

fn event_kind(line: &str) -> &str {
    line.split("\"event\":\"")
        .nth(1)
        .and_then(|r| r.split('"').next())
        .unwrap_or("")
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let rest = line.split(&pat).nth(1)?;
    let end = rest
        .char_indices()
        .find(|&(i, c)| {
            if rest.starts_with('"') {
                i > 0 && c == '"'
            } else {
                c == ',' || c == '}'
            }
        })
        .map(|(i, _)| i)?;
    Some(rest[..end].trim_matches('"'))
}

/// The embedded result payload of a `result` event — the part that must
/// be byte-identical between runs.
fn result_data(line: &str) -> String {
    line.split("\"data\":")
        .nth(1)
        .expect("data field")
        .to_string()
}

/// Submits the four-job batch and returns every event line through the
/// `batch` summary. `mid_batch` runs once after a few progress windows
/// have streamed (i.e. reliably mid-simulation).
fn run_batch(addr: &str, mut mid_batch: impl FnMut()) -> Vec<String> {
    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for job in jobs() {
        send_line(&mut stream, &job);
    }
    send_line(&mut stream, r#"{"op":"run"}"#);
    let mut lines = Vec::new();
    let mut windows = 0;
    let mut fired = false;
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap_or(0) > 0,
            "server closed mid-batch; events so far: {lines:#?}"
        );
        let kind = event_kind(&line).to_string();
        lines.push(line.trim_end().to_string());
        if kind == "window" {
            windows += 1;
            if windows >= 2 && !fired {
                fired = true;
                mid_batch();
            }
        }
        if kind == "batch" {
            break;
        }
    }
    assert!(fired, "batch finished before any progress streamed");
    send_line(&mut stream, r#"{"op":"quit"}"#);
    lines
}

/// The headline invariant: three workers, one SIGKILLed mid-lease, and
/// the merged batch is byte-identical to a single-process control run.
#[test]
fn worker_killed_mid_batch_yields_byte_identical_results() {
    let control_cache = tempdir("control");
    let fleet_cache = tempdir("fleet");

    // Control: the same batch with no fleet attached.
    let control_lines = {
        let (mut serve, addr, _) = spawn_serve(&control_cache, false);
        let lines = run_batch(&addr, || {});
        let ok = Command::new("kill")
            .args(["-TERM", &serve.child.id().to_string()])
            .status()
            .unwrap();
        assert!(ok.success());
        assert_eq!(serve.wait_code("control serve"), 6);
        lines
    };

    // Chaos: three workers; the first (lowest id, so it certainly holds
    // a lease for this 4-job batch) is killed once progress streams.
    let (mut serve, addr, fleet_addr) = spawn_serve(&fleet_cache, true);
    let fleet_addr = fleet_addr.expect("fleet listener address");
    let mut victim = spawn_worker(&fleet_addr);
    let survivors = [spawn_worker(&fleet_addr), spawn_worker(&fleet_addr)];
    let victim_pid = victim.child.id().to_string();
    let fleet_lines = run_batch(&addr, || {
        let ok = Command::new("kill")
            .args(["-KILL", &victim_pid])
            .status()
            .unwrap();
        assert!(ok.success());
    });
    let _ = victim.child.wait(); // reap; SIGKILL leaves no exit code

    // The batch really ran on the fleet, and the kill really cost a
    // lease: a typed worker-death retry must be in the client stream.
    assert!(
        fleet_lines.iter().any(|l| event_kind(l) == "lease"),
        "no lease events — the fleet never dispatched: {fleet_lines:#?}"
    );
    assert!(
        fleet_lines
            .iter()
            .any(|l| event_kind(l) == "retry" && field(l, "reason") == Some("worker-death")),
        "the SIGKILL must surface as a worker-death retry: {}",
        fleet_lines
            .iter()
            .filter(|l| event_kind(l) != "window")
            .cloned()
            .collect::<Vec<_>>()
            .join("\n")
    );

    // Byte-identical merge: every result payload and the batch
    // fingerprint match the single-process control run exactly.
    let results = |lines: &[String]| -> Vec<(String, String)> {
        lines
            .iter()
            .filter(|l| event_kind(l) == "result")
            .map(|l| {
                (
                    field(l, "id").expect("result id").to_string(),
                    result_data(l),
                )
            })
            .collect()
    };
    let control_results = results(&control_lines);
    let fleet_results = results(&fleet_lines);
    assert_eq!(control_results.len(), 4, "control: {control_lines:#?}");
    assert_eq!(
        fleet_results, control_results,
        "fleet results must be byte-identical to the control run, in submission order"
    );
    let batch_field = |lines: &[String], key: &str| -> String {
        let batch = lines
            .iter()
            .find(|l| event_kind(l) == "batch")
            .expect("batch event");
        field(batch, key).unwrap_or_default().to_string()
    };
    assert_eq!(batch_field(&fleet_lines, "errors"), "0");
    assert_eq!(
        batch_field(&fleet_lines, "fingerprint"),
        batch_field(&control_lines, "fingerprint"),
        "batch fingerprints must match across lanes"
    );

    // Clean exits: SIGTERM winds the coordinator down (code 6), which
    // says bye to the surviving workers (code 0).
    let ok = Command::new("kill")
        .args(["-TERM", &serve.child.id().to_string()])
        .status()
        .unwrap();
    assert!(ok.success());
    assert_eq!(serve.wait_code("fleet serve"), 6);
    for (i, mut w) in survivors.into_iter().enumerate() {
        assert_eq!(w.wait_code(&format!("survivor {i}")), 0);
    }
    let _ = fs::remove_dir_all(&control_cache);
    let _ = fs::remove_dir_all(&fleet_cache);
}
