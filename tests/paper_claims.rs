//! Fast sanity checks of the paper's qualitative claims. These use
//! reduced run lengths; the full quantitative reproduction lives in the
//! bench harness (`cargo bench`) and EXPERIMENTS.md.

use ringmesh::{run_config, NetworkSpec, SimParams, SystemConfig};
use ringmesh_net::{BufferRegime, CacheLineSize};
use ringmesh_workload::WorkloadParams;

fn sim() -> SimParams {
    SimParams {
        warmup: 2_000,
        batch_cycles: 2_000,
        batches: 4,
    }
}

fn ring_latency(spec: &str, speedup: u32, cl: CacheLineSize, r: f64, t: u32) -> f64 {
    let cfg = SystemConfig::new(
        NetworkSpec::Ring {
            spec: spec.parse().unwrap(),
            speedup,
        },
        cl,
    )
    .with_workload(
        WorkloadParams::paper_baseline()
            .with_region(r)
            .with_outstanding(t),
    )
    .with_sim(sim());
    run_config(cfg).unwrap().mean_latency()
}

fn mesh_latency(side: u32, buffers: BufferRegime, cl: CacheLineSize, r: f64, t: u32) -> f64 {
    let cfg = SystemConfig::new(NetworkSpec::Mesh { side, buffers }, cl)
        .with_workload(
            WorkloadParams::paper_baseline()
                .with_region(r)
                .with_outstanding(t),
        )
        .with_sim(sim());
    run_config(cfg).unwrap().mean_latency()
}

/// §3 / Fig. 6: single rings saturate hard past their sustainable size.
#[test]
fn single_ring_saturation_knee() {
    for (cl, max) in [
        (CacheLineSize::B16, 12u32),
        (CacheLineSize::B32, 8),
        (CacheLineSize::B64, 6),
        (CacheLineSize::B128, 4),
    ] {
        let at_max = ring_latency(&max.to_string(), 1, cl, 1.0, 4);
        let beyond = ring_latency(&(max * 2).to_string(), 1, cl, 1.0, 4);
        assert!(
            beyond > 1.8 * at_max,
            "{cl}: no saturation knee (at {max}: {at_max:.0}, at {}: {beyond:.0})",
            max * 2
        );
    }
}

/// §4 / Fig. 12: mesh latency orders by buffer size: 1-flit worst,
/// cl-sized best.
#[test]
fn mesh_buffer_regime_ordering() {
    let cl = CacheLineSize::B128;
    let one = mesh_latency(8, BufferRegime::OneFlit, cl, 1.0, 4);
    let four = mesh_latency(8, BufferRegime::FourFlit, cl, 1.0, 4);
    let full = mesh_latency(8, BufferRegime::CacheLine, cl, 1.0, 4);
    assert!(
        one > four && four > full,
        "1-flit {one:.0} / 4-flit {four:.0} / cl {full:.0}"
    );
}

/// §5.1 / Fig. 14: small systems favour rings; large 16B-line systems
/// favour meshes (bisection limit).
#[test]
fn crossover_direction() {
    let cl = CacheLineSize::B64;
    // Well below the cross-over (paper: ~27 nodes for 64B): ring wins.
    let small_ring = ring_latency("2:6", 1, cl, 1.0, 4); // 12 PMs
    let small_mesh = mesh_latency(3, BufferRegime::FourFlit, cl, 1.0, 4); // 9 PMs (fewer!)
    assert!(
        small_ring < small_mesh,
        "small: ring {small_ring:.0} !< mesh {small_mesh:.0}"
    );
    // Well above it with small lines: mesh wins.
    let big_ring = ring_latency("3:3:12", 1, CacheLineSize::B16, 1.0, 4); // 108 PMs
    let big_mesh = mesh_latency(10, BufferRegime::FourFlit, CacheLineSize::B16, 1.0, 4); // 100 PMs
    assert!(
        big_mesh < big_ring,
        "large: mesh {big_mesh:.0} !< ring {big_ring:.0}"
    );
}

/// §5.1 / Fig. 16: with 1-flit mesh buffers, rings win even at the
/// largest sizes studied.
#[test]
fn one_flit_meshes_lose_to_rings() {
    let cl = CacheLineSize::B128;
    let ring = ring_latency("3:3:4", 1, cl, 1.0, 4); // 36 PMs
    let mesh = mesh_latency(6, BufferRegime::OneFlit, cl, 1.0, 4); // 36 PMs
    assert!(ring < mesh, "ring {ring:.0} !< 1-flit mesh {mesh:.0}");
}

/// §5.2 / Fig. 17: with locality, rings beat meshes at sizes where
/// they lose without it. (Our reproduction recovers the paper's 20-40%
/// ring advantage robustly at R = 0.1; at R = 0.2-0.3 the advantage
/// holds at small/medium sizes — see EXPERIMENTS.md for where our
/// intermediate rings saturate earlier than the paper's.)
#[test]
fn locality_flips_the_comparison() {
    let cl = CacheLineSize::B64;
    let ring = ring_latency("3:3:6", 1, cl, 0.1, 4); // 54 PMs
    let mesh = mesh_latency(7, BufferRegime::FourFlit, cl, 0.1, 4); // 49 PMs
    assert!(ring < mesh, "R=0.1: ring {ring:.0} !< mesh {mesh:.0}");
    // Control: locality must help the ring *relative to* the mesh —
    // the ring:mesh latency ratio at R=0.1 is clearly below the ratio
    // without locality.
    let ring_nl = ring_latency("3:3:6", 1, cl, 1.0, 4);
    let mesh_nl = mesh_latency(7, BufferRegime::FourFlit, cl, 1.0, 4);
    assert!(
        ring / mesh < 0.9 * (ring_nl / mesh_nl),
        "locality gain: {:.2} !< 0.9 * {:.2}",
        ring / mesh,
        ring_nl / mesh_nl
    );
    // And at R=0.2 the ring advantage persists at 18 processors.
    let small_ring = ring_latency("3:6", 1, cl, 0.2, 4);
    let small_mesh = mesh_latency(4, BufferRegime::FourFlit, cl, 0.2, 4);
    assert!(
        small_ring < small_mesh,
        "R=0.2 small: ring {small_ring:.0} !< mesh {small_mesh:.0}"
    );
}

/// §6 / Fig. 19: doubling the global ring clock cuts latency on
/// bisection-limited hierarchies. (Longer batches than the other
/// claims: a 96-PM system at deep saturation needs them.)
#[test]
fn double_speed_global_ring_helps() {
    let cl = CacheLineSize::B32;
    let run = |speedup| {
        let cfg = SystemConfig::new(
            NetworkSpec::Ring {
                spec: "4:3:8".parse().unwrap(),
                speedup,
            },
            cl,
        )
        .with_sim(SimParams {
            warmup: 4_000,
            batch_cycles: 4_000,
            batches: 6,
        });
        run_config(cfg).unwrap().mean_latency()
    };
    let (normal, fast) = (run(1), run(2));
    assert!(
        fast < 0.8 * normal,
        "double speed {fast:.0} not clearly better than {normal:.0}"
    );
}

/// §3 / Fig. 11: with locality, adding hierarchy levels lets far more
/// processors run at low latency.
#[test]
fn hierarchy_helps_with_locality() {
    let cl = CacheLineSize::B32;
    // 48 PMs on one flat ring vs a 3-level hierarchy, R = 0.2.
    let flat = ring_latency("48", 1, cl, 0.2, 2);
    let hier = ring_latency("2:3:8", 1, cl, 0.2, 2);
    assert!(
        hier < 0.5 * flat,
        "hierarchy {hier:.0} should be far below flat ring {flat:.0}"
    );
}
