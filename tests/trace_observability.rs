//! Integration tests for the `ringmesh-trace` observability subsystem:
//! a traced run must produce per-counter batch summaries, populated
//! link heatmaps, a valid Chrome-trace export — and must not perturb
//! the simulation it observes.

use ringmesh::{NetworkSpec, SimParams, System, SystemConfig, TraceConfig, TraceReport};
use ringmesh_net::CacheLineSize;

fn quick_sim() -> SimParams {
    SimParams {
        warmup: 500,
        batch_cycles: 500,
        batches: 4,
    }
}

fn traced_run(network: NetworkSpec, tcfg: TraceConfig) -> (ringmesh::RunResult, TraceReport) {
    let cfg = SystemConfig::new(network, CacheLineSize::B32).with_sim(quick_sim());
    System::new(cfg).unwrap().run_traced(tcfg).unwrap()
}

fn counter_total(report: &TraceReport, name: &str) -> u64 {
    report
        .counters
        .iter()
        .find(|c| c.counter.name() == name)
        .map(|c| c.total)
        .unwrap_or_else(|| panic!("counter {name} missing from report"))
}

#[test]
fn two_level_ring_trace_reports_counters_heatmap_and_events() {
    let tcfg = TraceConfig {
        window_cycles: 500,
        sample_every: 4,
        ..TraceConfig::default()
    };
    let (r, report) = traced_run(NetworkSpec::ring("2:3".parse().unwrap()), tcfg);

    // The run itself measured something.
    assert!(r.workload.retired > 0);
    assert_eq!(report.cycles, quick_sim().warmup + 4 * 500);

    // Counters: flits moved, packets entered and left, txns tracked.
    assert!(counter_total(&report, "flits_forwarded") > 0);
    let injected = counter_total(&report, "packets_injected");
    let delivered_pkts = counter_total(&report, "packets_delivered");
    assert!(injected > 0);
    assert!(delivered_pkts > 0 && delivered_pkts <= injected);
    assert!(
        counter_total(&report, "iri_crossings") > 0,
        "2:3 crosses rings"
    );
    assert_eq!(counter_total(&report, "txns_issued"), r.workload.issued);
    assert_eq!(counter_total(&report, "txns_retired"), r.workload.retired);

    // Per-counter batch (window) summaries: multiple windows observed.
    let flits = report
        .counters
        .iter()
        .find(|c| c.counter.name() == "flits_forwarded")
        .unwrap();
    assert!(flits.per_window.n >= 4, "windows: {}", flits.per_window.n);
    assert!(flits.per_window.mean > 0.0);

    // Heatmap: 3 rings ("2:3" = 1 global + 2 locals), every ring busy.
    assert_eq!(report.heatmaps.len(), 1);
    let map = report.heatmaps[0].clone();
    let (rows, _cols) = map.dims();
    assert_eq!(rows, 3);
    assert!(map.total() > 0);
    let ascii = map.to_ascii();
    assert!(ascii.contains("flits forwarded per ring link"), "{ascii}");
    let csv = map.to_csv();
    assert!(csv.lines().count() >= 4, "header + 3 ring rows: {csv}");

    // Gauges sampled across windows.
    let occ = report
        .gauges
        .iter()
        .find(|g| g.gauge.name() == "ring_buffer_occupancy")
        .unwrap();
    assert!(occ.per_window.n >= 4);
    assert!(occ.mean > 0.0, "a loaded ring holds flits");

    // Event stream: inject/hop/eject present for sampled transactions,
    // in non-decreasing cycle order.
    assert!(!report.events.is_empty());
    assert!(report.events.windows(2).all(|w| w[0].cycle <= w[1].cycle));

    // Chrome-trace export: structurally a JSON object with paired
    // async begin/end spans and named location tracks.
    let json = report.chrome_trace_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains(r#""traceEvents""#));
    assert!(json.contains(r#""ph":"b""#), "async span begins");
    assert!(json.contains(r#""ph":"e""#), "async span ends");
    assert!(json.contains(r#""ph":"X""#), "location slices");
    assert!(json.contains("ring"), "ring station tracks named");
    let begins = json.matches(r#""ph":"b""#).count();
    let ends = json.matches(r#""ph":"e""#).count();
    assert!(
        ends <= begins,
        "an eject without an inject: {ends} > {begins}"
    );
}

#[test]
fn mesh_trace_reports_grid_heatmap_and_input_occupancy() {
    let (_, report) = traced_run(NetworkSpec::mesh(3), TraceConfig::default());
    assert_eq!(report.heatmaps.len(), 1);
    assert_eq!(report.heatmaps[0].dims(), (3, 3));
    assert!(report.heatmaps[0].total() > 0);
    let occ = report
        .gauges
        .iter()
        .find(|g| g.gauge.name() == "mesh_input_occupancy")
        .unwrap();
    assert!(occ.mean > 0.0);
    assert!(counter_total(&report, "flits_forwarded") > 0);
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // Same config, same seed: the traced run must reproduce the
    // untraced run's measurements exactly — observation only.
    let mk = || {
        SystemConfig::new(
            NetworkSpec::ring("2:3".parse().unwrap()),
            CacheLineSize::B32,
        )
        .with_sim(quick_sim())
    };
    let plain = System::new(mk()).unwrap().run().unwrap();
    let (traced, _) = System::new(mk())
        .unwrap()
        .run_traced(TraceConfig::default())
        .unwrap();
    assert_eq!(plain.latency, traced.latency);
    assert_eq!(plain.workload, traced.workload);
    assert_eq!(plain.percentiles, traced.percentiles);
}

#[test]
fn event_sampling_interval_filters_transactions() {
    let tcfg = TraceConfig {
        sample_every: 8,
        ..TraceConfig::default()
    };
    let (_, report) = traced_run(NetworkSpec::ring("6".parse().unwrap()), tcfg);
    assert!(!report.events.is_empty());
    assert!(
        report.events.iter().all(|e| e.txn % 8 == 0),
        "unsampled txn leaked into the event stream"
    );
}
