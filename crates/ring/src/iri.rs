//! The Inter-Ring Interface (Figure 4 of the paper).
//!
//! An IRI joins a child ("lower") ring to its parent ("upper") ring and
//! is modelled as a 2×2 crossbar: each side has a cache-line-sized
//! transit buffer and an output link; packets changing rings pass
//! through class-split *up* (lower→upper) and *down* (upper→lower)
//! queues. Switching on the two sides is independent, and continuing
//! ring traffic has priority over ring-changing traffic.

use ringmesh_net::{FlitFifo, PacketRef, PacketStore, QueueClass};
use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotState};

use crate::station::{ClassQueues, Disposition, LinkOwner, Send, SideRef, StepPulse, TransitRoute};

/// Side index of the child (lower) ring.
pub const LOWER: usize = 0;
/// Side index of the parent (upper) ring.
pub const UPPER: usize = 1;

/// Per-IRI simulation state.
#[derive(Debug)]
pub struct Iri {
    subtree: (u32, u32),
    convoy_threshold: usize,
    rings: [u32; 2],
    downstream: [SideRef; 2],
    bufs: [FlitFifo; 2],
    /// Lower→upper crossing queues (request/response).
    up: ClassQueues<FlitFifo>,
    /// Upper→lower crossing queues (request/response).
    down: ClassQueues<FlitFifo>,
    owner: [LinkOwner; 2],
    transit: [TransitRoute; 2],
}

impl Iri {
    /// Builds an IRI joining the child ring covering PM interval
    /// `subtree` (half-open) to its parent ring. `rings` and
    /// `downstream` name the `[LOWER, UPPER]` ring ids and downstream
    /// station sides; the remaining arguments size the transit buffers
    /// and crossing queues.
    pub fn new(
        subtree: (u32, u32),
        rings: [u32; 2],
        downstream: [SideRef; 2],
        ring_buf_flits: usize,
        up_queue_flits: usize,
        down_queue_flits: usize,
        convoy_threshold: usize,
    ) -> Self {
        Iri {
            subtree,
            convoy_threshold,
            rings,
            downstream,
            bufs: [FlitFifo::new(ring_buf_flits), FlitFifo::new(ring_buf_flits)],
            up: ClassQueues::new(FlitFifo::new(up_queue_flits), FlitFifo::new(up_queue_flits)),
            down: ClassQueues::new(
                FlitFifo::new(down_queue_flits),
                FlitFifo::new(down_queue_flits),
            ),
            owner: [LinkOwner::Idle, LinkOwner::Idle],
            transit: [TransitRoute::default(), TransitRoute::default()],
        }
    }

    /// The transit buffer of `side`, for the network's send-commit
    /// loop (flits arriving on the input link are pushed here).
    pub fn buf_mut(&mut self, side: usize) -> &mut FlitFifo {
        &mut self.bufs[side]
    }

    #[cfg(debug_assertions)]
    pub(crate) fn buf(&self, side: usize) -> &FlitFifo {
        &self.bufs[side]
    }

    /// The lower→upper crossing queue of `class`. The hybrid network's
    /// bridge pump drains these into the global mesh.
    pub fn up_queue(&self, class: QueueClass) -> &FlitFifo {
        self.up.get(class)
    }

    /// Mutable form of [`up_queue`](Self::up_queue).
    pub fn up_queue_mut(&mut self, class: QueueClass) -> &mut FlitFifo {
        self.up.get_mut(class)
    }

    /// The upper→lower crossing queue of `class`. The hybrid network
    /// commits mesh arrivals here; [`step_side`](Self::step_side) on
    /// the `LOWER` side drains them onto the local ring under the
    /// credit rule.
    pub fn down_queue_mut(&mut self, class: QueueClass) -> &mut FlitFifo {
        self.down.get_mut(class)
    }

    /// Total flits in the two transit buffers (occupancy gauge probe).
    pub fn occupancy(&self) -> usize {
        self.bufs[LOWER].len() + self.bufs[UPPER].len()
    }

    /// Total flits in the four crossing queues (occupancy gauge probe).
    pub fn queue_flits(&self) -> usize {
        self.up.get(QueueClass::Request).len()
            + self.up.get(QueueClass::Response).len()
            + self.down.get(QueueClass::Request).len()
            + self.down.get(QueueClass::Response).len()
    }

    /// True when a step of either crossbar side is provably a no-op:
    /// both transit buffers and all four crossing queues are empty, no
    /// worm holds an output link, and no route decision is latched.
    /// Such an IRI can be skipped until a flit arrives on a buffer or
    /// queue (which always goes through the network's send commit).
    pub fn quiescent(&self) -> bool {
        self.occupancy() == 0
            && self.queue_flits() == 0
            && self.owner.iter().all(|o| matches!(o, LinkOwner::Idle))
            && self.transit.iter().all(|t| t.packet().is_none())
    }

    fn inside(&self, dst: u32) -> bool {
        (self.subtree.0..self.subtree.1).contains(&dst)
    }

    /// One clock of one crossbar side. On the lower side the crossing
    /// target is the up queue and the crossing source the down queue;
    /// on the upper side the reverse.
    ///
    /// `free_out` is the downstream station's registered free-slot
    /// count; every link transfer needs one free slot per flit.
    /// `credits` tracks each ring's total free transit slots: a flit
    /// may *enter* this side's ring from a crossing queue only while at
    /// least two such slots remain (the credit rule, as at the NICs).
    /// Down (parent→child) queues are elastic, so a descending worm
    /// never stalls in its parent ring's transit buffer waiting on a
    /// full queue; together with the credit rule this keeps the
    /// hierarchy deadlock-free by induction from the root ring
    /// (DESIGN.md, "Model fidelity notes"). Up queues are finite and
    /// back-pressure ascending traffic without risking a cycle.
    ///
    /// `link_up` gates this side's output link only. `dead` marks a
    /// fail-stop IRI: packets already forwarding, queued or draining
    /// keep moving (lazy fail-stop), but a packet newly classified as
    /// *crossing* here has nowhere to go — its flits are sunk in place
    /// and its [`PacketRef`] reported through `sunk` for the network to
    /// retire as an explicit drop.
    #[allow(clippy::too_many_arguments)]
    pub fn step_side(
        &mut self,
        side: usize,
        now: u64,
        link_up: bool,
        dead: bool,
        free_out: usize,
        credits: &mut [i64],
        store: &PacketStore,
        sends: &mut Vec<Send>,
        sunk: &mut Vec<PacketRef>,
        pulse: &mut StepPulse,
    ) {
        let this_ring = self.rings[side] as usize;
        // A downed output link advertises no room: forwarding and cross
        // injection onto the ring stall in place, losing nothing.
        let free_out = if link_up { free_out } else { 0 };
        let go_transit = free_out >= 1;
        // Classify the packet at the front of this side's transit buffer.
        if let Some(flit) = self.bufs[side].front_ready(now) {
            if self.transit[side].packet() != Some(flit.packet) {
                debug_assert!(flit.is_head(), "mid-packet flit without a route");
                let dst = store.get(flit.packet).dst.raw();
                let crossing = if side == LOWER {
                    !self.inside(dst) // leave the subtree upward
                } else {
                    self.inside(dst) // descend into the subtree
                };
                let disposition = if !crossing {
                    Disposition::Forward
                } else if dead {
                    Disposition::Sink
                } else {
                    Disposition::Cross
                };
                self.transit[side].set(flit.packet, disposition);
            }
        }

        // Sink path: a crossing-bound worm met a dead IRI. Its flits
        // are consumed in place (restoring ring credits so the loss
        // does not leak capacity) and the packet is reported at its
        // tail for the network to drop-account.
        if self.transit[side].sinking() {
            if let Some(flit) = self.bufs[side].pop_ready(now) {
                credits[this_ring] += 1; // the flit left this ring
                pulse.moved += 1;
                if flit.is_tail {
                    self.transit[side].clear();
                    sunk.push(flit.packet);
                }
            }
        }

        // Crossing path: one flit per cycle from this side's transit
        // buffer into the up (lower side) or down (upper side) queue,
        // gated by the queue's registered occupancy.
        if self.transit[side].crossing() {
            if let Some(flit) = self.bufs[side].front_ready(now) {
                let class = QueueClass::of(store.get(flit.packet).kind);
                let q = if side == LOWER {
                    self.up.get_mut(class)
                } else {
                    self.down.get_mut(class)
                };
                if q.space_latched() {
                    let flit = self.bufs[side].pop_ready(now).expect("front was ready");
                    credits[this_ring] += 1; // the flit left this ring
                    if flit.is_head() {
                        pulse.crossed += 1;
                    }
                    if flit.is_tail {
                        self.transit[side].clear();
                    }
                    q.push(flit, now);
                    pulse.moved += 1;
                } else {
                    pulse.blocked += 1;
                }
            }
        }

        // Output link of this side: transit has priority; then packets
        // entering this ring from the other ring (responses first).
        let ring = self.rings[side];
        let to = self.downstream[side];
        match self.owner[side] {
            LinkOwner::Transit => {
                if go_transit {
                    if let Some(flit) = self.bufs[side].pop_ready(now) {
                        debug_assert_eq!(Some(flit.packet), self.transit[side].packet());
                        if flit.is_tail {
                            self.owner[side] = LinkOwner::Idle;
                            self.transit[side].clear();
                        }
                        sends.push(Send { to, flit, ring });
                    }
                } else if self.bufs[side].front_ready(now).is_some() {
                    pulse.blocked += 1;
                }
            }
            LinkOwner::Cross(class) => {
                // Buffer space and credits for the whole worm were
                // reserved at start and the worm is entirely in the
                // queue, so continuation is unconditional while the
                // link is up. A downed link pauses the worm mid-entry;
                // the reserved downstream space keeps the pause
                // loss-free.
                if link_up {
                    let q = if side == LOWER {
                        self.down.get_mut(class)
                    } else {
                        self.up.get_mut(class)
                    };
                    if let Some(flit) = q.pop_ready(now) {
                        if flit.is_tail {
                            self.owner[side] = LinkOwner::Idle;
                        }
                        sends.push(Send { to, flit, ring });
                    }
                } else {
                    pulse.blocked += 1;
                }
            }
            LinkOwner::Idle => {
                // Continuing ring traffic normally has priority over
                // ring-changing traffic (§2.1). When a crossing queue
                // backs up beyond what the paper's one-packet buffers
                // could ever hold, its drain takes priority instead:
                // this recreates the backpressure a finite buffer would
                // exert (upstream transit stalls), pacing the sources
                // and preventing unbounded convoys.
                let backlogged = self.cross_backlogged(side);
                let transit_ready =
                    self.transit[side].forwarding() && self.bufs[side].front_ready(now).is_some();
                if transit_ready && !backlogged {
                    if go_transit {
                        let flit = self.bufs[side].pop_ready(now).expect("front was ready");
                        if flit.is_tail {
                            self.transit[side].clear();
                        } else {
                            self.owner[side] = LinkOwner::Transit;
                        }
                        sends.push(Send { to, flit, ring });
                    }
                } else if let Some(class) =
                    self.next_cross_injection(side, now, free_out, credits[this_ring], store)
                {
                    let q = if side == LOWER {
                        self.down.get_mut(class)
                    } else {
                        self.up.get_mut(class)
                    };
                    let flit = q.pop_ready(now).expect("front checked");
                    debug_assert!(flit.is_head(), "cross queue must start at a head flit");
                    credits[this_ring] -= i64::from(store.get(flit.packet).flits);
                    if !flit.is_tail {
                        self.owner[side] = LinkOwner::Cross(class);
                    }
                    sends.push(Send { to, flit, ring });
                } else if transit_ready && go_transit {
                    // Backlogged but nothing can cross yet: let transit
                    // continue rather than idle the link.
                    let flit = self.bufs[side].pop_ready(now).expect("front was ready");
                    if flit.is_tail {
                        self.transit[side].clear();
                    } else {
                        self.owner[side] = LinkOwner::Transit;
                    }
                    sends.push(Send { to, flit, ring });
                } else if transit_ready {
                    pulse.blocked += 1;
                }
            }
        }
    }

    /// Whether the queues feeding `side`'s output link hold more than
    /// `convoy_threshold` flits — beyond anything the paper's
    /// one-packet IRI buffers could absorb, i.e. a forming convoy.
    fn cross_backlogged(&self, side: usize) -> bool {
        let qs = if side == LOWER { &self.down } else { &self.up };
        qs.get(QueueClass::Response).len() + qs.get(QueueClass::Request).len()
            > self.convoy_threshold
    }

    /// Which crossing class can start on `side`'s output link: responses
    /// beat requests. A class is ready when (a) its queue's front flit
    /// has satisfied the one-cycle switch delay, (b) the *whole* front
    /// worm is already in the queue — so the entry never waits on flits
    /// still crossing the other ring, (c) the downstream transit buffer
    /// has latched room for all of it, and (d) the ring's credits cover
    /// it with one to spare. A started entry therefore completes
    /// unconditionally, which is what makes the hierarchy live.
    fn next_cross_injection(
        &self,
        side: usize,
        now: u64,
        free_out: usize,
        credits: i64,
        store: &PacketStore,
    ) -> Option<QueueClass> {
        let qs = if side == LOWER { &self.down } else { &self.up };
        for class in [QueueClass::Response, QueueClass::Request] {
            let q = qs.get(class);
            if let Some(flit) = q.front_ready(now) {
                if !q.has_complete_packet() {
                    continue;
                }
                let flits = store.get(flit.packet).flits;
                if free_out >= flits as usize && credits > i64::from(flits) {
                    return Some(class);
                }
            }
        }
        None
    }

    pub(crate) fn debug_state(&self) -> String {
        format!(
            "bufs=({},{}) up=(r{} s{}) down=(r{} s{}) owner={:?} transit=({:?},{:?})",
            self.bufs[0].len(),
            self.bufs[1].len(),
            self.up.get(QueueClass::Request).len(),
            self.up.get(QueueClass::Response).len(),
            self.down.get(QueueClass::Request).len(),
            self.down.get(QueueClass::Response).len(),
            self.owner,
            self.transit[0].packet().map(|p| p.slot()),
            self.transit[1].packet().map(|p| p.slot()),
        )
    }

    /// Latches all buffers; returns the free-slot counts for (lower,
    /// upper) transit buffers advertised to the upstream neighbours.
    pub fn latch(&mut self) -> (usize, usize) {
        self.bufs[LOWER].latch();
        self.bufs[UPPER].latch();
        self.up.each_mut(FlitFifo::latch);
        self.down.each_mut(FlitFifo::latch);
        (
            self.bufs[LOWER].free_latched(),
            self.bufs[UPPER].free_latched(),
        )
    }
}

impl SnapshotState for Iri {
    fn save_state(&self, w: &mut SnapWriter) {
        self.bufs[LOWER].save_state(w);
        self.bufs[UPPER].save_state(w);
        self.up.save_state(w);
        self.down.save_state(w);
        self.owner.save(w);
        self.transit.save(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.bufs[LOWER].restore_state(r)?;
        self.bufs[UPPER].restore_state(r)?;
        self.up.restore_state(r)?;
        self.down.restore_state(r)?;
        self.owner = Snapshot::load(r)?;
        self.transit = Snapshot::load(r)?;
        Ok(())
    }
}
