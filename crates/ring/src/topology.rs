//! Hierarchical ring topology: specification, construction and routing.
//!
//! A hierarchy is described by a [`RingSpec`] such as `2:3:4` — one
//! global ring connecting 2 intermediate rings, each connecting 3 local
//! rings of 4 PMs (the paper's Table 2 notation). [`RingTopology`]
//! expands the spec into a flat station graph: one NIC station per PM on
//! its local ring, and one inter-ring interface (IRI) station joining
//! each child ring to its parent. Every station has one output link per
//! ring it sits on; packets travel uni-directionally.

use std::fmt;
use std::str::FromStr;

use ringmesh_net::{ConfigError, NodeId};

/// Which way a packet leaves a station on a given ring side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RingAction {
    /// The packet has reached its destination NIC: deliver to the PM.
    Eject,
    /// Continue around the current ring.
    Forward,
    /// Cross from a child ring up to its parent ring (IRI only).
    Up,
    /// Descend from a parent ring into the child ring (IRI only).
    Down,
}

/// A hierarchical ring specification: `arities[0]` children of the
/// global ring, …, `arities.last()` PMs per local ring.
///
/// The paper's `2:3:4` reads root-first, exactly as stored here. A
/// one-element spec `[n]` is a single ring of `n` PMs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RingSpec {
    arities: Vec<u32>,
}

impl RingSpec {
    /// Creates a spec from root-first arities.
    ///
    /// # Errors
    ///
    /// Returns an error if `arities` is empty, has more than 8 levels,
    /// or contains an arity < 1 (or < 2 for non-leaf levels, which would
    /// be a degenerate ring of one station plus the parent IRI — allowed
    /// in the paper's tables only at the leaf level... in fact `2:9`
    /// style specs need non-leaf arity >= 2; we also accept 1 to permit
    /// degenerate test topologies).
    pub fn new(arities: Vec<u32>) -> Result<Self, ConfigError> {
        if arities.is_empty() {
            return Err(ConfigError::EmptyRingSpec);
        }
        if arities.len() > 8 {
            return Err(ConfigError::TooManyRingLevels {
                levels: arities.len(),
                max: 8,
            });
        }
        if let Some(level) = arities.iter().position(|&a| a == 0) {
            return Err(ConfigError::ZeroRingArity { level });
        }
        Ok(RingSpec { arities })
    }

    /// Convenience constructor for a single ring of `n` PMs.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn single(n: u32) -> Self {
        RingSpec::new(vec![n]).expect("positive ring size")
    }

    /// Number of hierarchy levels (1 = a single ring).
    pub fn levels(&self) -> usize {
        self.arities.len()
    }

    /// Root-first arities.
    pub fn arities(&self) -> &[u32] {
        &self.arities
    }

    /// Total number of processing modules: the product of all arities.
    pub fn num_pms(&self) -> u32 {
        self.arities.iter().product()
    }
}

impl fmt::Display for RingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.arities.iter().map(|a| a.to_string()).collect();
        f.write_str(&parts.join(":"))
    }
}

impl FromStr for RingSpec {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let arities: Result<Vec<u32>, _> = s
            .trim()
            .split(':')
            .map(|p| p.trim().parse::<u32>())
            .collect();
        RingSpec::new(arities.map_err(|e| ConfigError::BadRingSpec {
            spec: s.to_string(),
            reason: e.to_string(),
        })?)
    }
}

/// What a station is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StationKind {
    /// Network interface controller attaching one PM to its local ring.
    Nic {
        /// The attached processing module.
        pm: NodeId,
    },
    /// Inter-ring interface joining a child ring (side 0) to its parent
    /// ring (side 1).
    Iri {
        /// Half-open PM interval `[lo, hi)` of the child subtree.
        subtree: (u32, u32),
    },
}

/// Identifier of a station side: `(station index, side)`. NICs use side
/// 0 only; for IRIs side 0 faces the child (lower) ring and side 1 the
/// parent (upper) ring.
pub type SideRef = (u32, u8);

/// One ring in the hierarchy.
#[derive(Debug, Clone)]
pub struct RingInfo {
    /// Depth in the hierarchy: 0 = global/root ring.
    pub depth: u32,
    /// Member station sides in ring order.
    pub members: Vec<SideRef>,
}

/// A fully-elaborated hierarchical ring topology.
#[derive(Debug, Clone)]
pub struct RingTopology {
    spec: RingSpec,
    stations: Vec<StationKind>,
    rings: Vec<RingInfo>,
    /// Downstream neighbour per station side: `next[station][side]`.
    next: Vec<[Option<SideRef>; 2]>,
    /// Ring id per station side.
    ring_of: Vec<[Option<u32>; 2]>,
    /// NIC station of each PM.
    nic_of: Vec<u32>,
}

impl RingTopology {
    /// Expands a spec into a station graph.
    pub fn new(spec: &RingSpec) -> Self {
        let mut topo = RingTopology {
            spec: spec.clone(),
            stations: Vec::new(),
            rings: Vec::new(),
            next: Vec::new(),
            ring_of: Vec::new(),
            nic_of: vec![0; spec.num_pms() as usize],
        };
        let mut next_pm = 0u32;
        topo.build_ring(spec, 0, &mut next_pm);
        debug_assert_eq!(next_pm, spec.num_pms());
        topo.link_rings();
        topo
    }

    fn new_station(&mut self, kind: StationKind) -> u32 {
        self.stations.push(kind);
        self.next.push([None, None]);
        self.ring_of.push([None, None]);
        (self.stations.len() - 1) as u32
    }

    /// Recursively builds the ring at `depth`, returning `(ring id,
    /// subtree PM interval)`.
    fn build_ring(
        &mut self,
        spec: &RingSpec,
        depth: usize,
        next_pm: &mut u32,
    ) -> (u32, (u32, u32)) {
        let ring_id = self.rings.len() as u32;
        self.rings.push(RingInfo {
            depth: depth as u32,
            members: Vec::new(),
        });
        let lo = *next_pm;
        let leaf = depth + 1 == spec.levels();
        for _ in 0..spec.arities()[depth] {
            if leaf {
                let pm = NodeId::new(*next_pm);
                *next_pm += 1;
                let st = self.new_station(StationKind::Nic { pm });
                self.nic_of[pm.index()] = st;
                self.ring_of[st as usize][0] = Some(ring_id);
                self.rings[ring_id as usize].members.push((st, 0));
            } else {
                let (child_ring, child_iv) = self.build_ring(spec, depth + 1, next_pm);
                let st = self.new_station(StationKind::Iri { subtree: child_iv });
                self.ring_of[st as usize][0] = Some(child_ring);
                self.ring_of[st as usize][1] = Some(ring_id);
                // The IRI closes the child ring (placed after the
                // child's own members) and joins the parent ring.
                self.rings[child_ring as usize].members.push((st, 0));
                self.rings[ring_id as usize].members.push((st, 1));
            }
        }
        (ring_id, (lo, *next_pm))
    }

    /// Computes downstream neighbours around every ring.
    fn link_rings(&mut self) {
        for ring in &self.rings {
            let n = ring.members.len();
            for (i, &(st, side)) in ring.members.iter().enumerate() {
                let next = ring.members[(i + 1) % n];
                self.next[st as usize][side as usize] = Some(next);
            }
        }
    }

    /// The spec this topology was built from.
    pub fn spec(&self) -> &RingSpec {
        &self.spec
    }

    /// Number of processing modules.
    pub fn num_pms(&self) -> u32 {
        self.spec.num_pms()
    }

    /// Number of stations (NICs + IRIs).
    pub fn num_stations(&self) -> usize {
        self.stations.len()
    }

    /// Number of rings in the hierarchy.
    pub fn num_rings(&self) -> usize {
        self.rings.len()
    }

    /// Hierarchy depth (1 = single ring).
    pub fn levels(&self) -> usize {
        self.spec.levels()
    }

    /// The station attached to PM `pm`.
    ///
    /// # Panics
    ///
    /// Panics if `pm` is out of range.
    pub fn nic_of(&self, pm: NodeId) -> u32 {
        self.nic_of[pm.index()]
    }

    /// What station `st` is.
    pub fn station(&self, st: u32) -> StationKind {
        self.stations[st as usize]
    }

    /// Ring info by id; ring 0 is the global/root ring.
    pub fn ring(&self, ring: u32) -> &RingInfo {
        &self.rings[ring as usize]
    }

    /// Iterates over rings with their ids.
    pub fn rings(&self) -> impl Iterator<Item = (u32, &RingInfo)> {
        self.rings.iter().enumerate().map(|(i, r)| (i as u32, r))
    }

    /// The downstream neighbour of station `st`'s `side` output link.
    ///
    /// # Panics
    ///
    /// Panics if the station has no such side.
    pub fn next_of(&self, st: u32, side: u8) -> SideRef {
        self.next[st as usize][side as usize].expect("station has no such ring side")
    }

    /// The ring a station side sits on.
    ///
    /// # Panics
    ///
    /// Panics if the station has no such side.
    pub fn ring_of(&self, st: u32, side: u8) -> u32 {
        self.ring_of[st as usize][side as usize].expect("station has no such ring side")
    }

    /// The routing decision for a packet destined to `dst` observed at
    /// station `st` on ring side `side`.
    pub fn action(&self, st: u32, side: u8, dst: NodeId) -> RingAction {
        match self.stations[st as usize] {
            StationKind::Nic { pm } => {
                debug_assert_eq!(side, 0);
                if pm == dst {
                    RingAction::Eject
                } else {
                    RingAction::Forward
                }
            }
            StationKind::Iri { subtree: (lo, hi) } => {
                let inside = (lo..hi).contains(&dst.raw());
                match side {
                    0 => {
                        // On the child ring: leave the subtree upward,
                        // or keep circulating toward the local NIC / a
                        // deeper IRI.
                        if inside {
                            RingAction::Forward
                        } else {
                            RingAction::Up
                        }
                    }
                    _ => {
                        // On the parent ring: descend into the subtree
                        // or keep going around the parent ring.
                        if inside {
                            RingAction::Down
                        } else {
                            RingAction::Forward
                        }
                    }
                }
            }
        }
    }

    /// Precomputes [`action`](Self::action) for every `(station, side,
    /// destination)` triple as a flat indexed table. The per-flit
    /// routing decision in the simulation hot loop becomes a single
    /// array load instead of a station-kind match plus interval test.
    pub fn route_table(&self) -> RouteTable {
        let pms = self.num_pms() as usize;
        let stations = self.num_stations();
        let mut actions = vec![RingAction::Forward; stations * 2 * pms];
        for st in 0..stations as u32 {
            let sides: &[u8] = match self.station(st) {
                StationKind::Nic { .. } => &[0],
                StationKind::Iri { .. } => &[0, 1],
            };
            for &side in sides {
                for dst in 0..pms as u32 {
                    actions[(st as usize * 2 + side as usize) * pms + dst as usize] =
                        self.action(st, side, NodeId::new(dst));
                }
            }
        }
        RouteTable { actions, pms }
    }

    /// Number of link traversals a packet makes from `src`'s NIC output
    /// to ejection at `dst` (each traversal costs one cycle at normal
    /// ring speed). Zero-load one-way latency is `hops` plus queueing.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (local accesses do not enter the network)
    /// or if routing fails to terminate (a topology bug).
    pub fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        assert_ne!(src, dst, "local access does not use the network");
        let mut pos = self.next_of(self.nic_of(src), 0);
        let mut hops = 1u32;
        let bound = (self.num_stations() * 2 + 4) as u32;
        loop {
            let (st, side) = pos;
            match self.action(st, side, dst) {
                RingAction::Eject => return hops,
                RingAction::Forward => pos = self.next_of(st, side),
                RingAction::Up => pos = self.next_of(st, 1),
                RingAction::Down => pos = self.next_of(st, 0),
            }
            hops += 1;
            assert!(hops <= bound, "routing walk did not terminate");
        }
    }

    /// Number of ring changes (IRI up/down crossings) on the path from
    /// `src` to `dst`. Each crossing passes through two store-and-forward
    /// stages in the IRI (transit buffer, then up/down queue), so the
    /// zero-load one-way delivery latency of an `f`-flit packet is
    /// `hops + iri_crossings + f` cycles (the final `+1` of `f` being
    /// ejection at the destination NIC).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    pub fn iri_crossings(&self, src: NodeId, dst: NodeId) -> u32 {
        assert_ne!(src, dst, "local access does not use the network");
        let mut pos = self.next_of(self.nic_of(src), 0);
        let mut crossings = 0u32;
        let bound = (self.num_stations() * 2 + 4) as u32;
        let mut steps = 0u32;
        loop {
            let (st, side) = pos;
            match self.action(st, side, dst) {
                RingAction::Eject => return crossings,
                RingAction::Forward => pos = self.next_of(st, side),
                RingAction::Up => {
                    crossings += 1;
                    pos = self.next_of(st, 1);
                }
                RingAction::Down => {
                    crossings += 1;
                    pos = self.next_of(st, 0);
                }
            }
            steps += 1;
            assert!(steps <= bound, "routing walk did not terminate");
        }
    }

    /// Human-readable label for rings at `depth`, e.g. "global ring",
    /// "local rings".
    pub fn depth_label(&self, depth: u32) -> String {
        let levels = self.levels() as u32;
        if levels == 1 {
            return "ring".to_string();
        }
        if depth == 0 {
            "global ring".to_string()
        } else if depth + 1 == levels {
            "local rings".to_string()
        } else if levels == 3 {
            "intermediate rings".to_string()
        } else {
            format!("level-{depth} rings")
        }
    }
}

/// Precomputed routing actions for every `(station, side, destination)`
/// triple of a [`RingTopology`], built once with
/// [`RingTopology::route_table`] and consulted with a single indexed
/// load per flit.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// `actions[(st * 2 + side) * pms + dst]`; sides a station does not
    /// have are filled with `Forward` and never queried.
    actions: Vec<RingAction>,
    pms: usize,
}

impl RouteTable {
    /// The routing decision for a packet destined to `dst` observed at
    /// station `st` on ring side `side`. Equivalent to
    /// [`RingTopology::action`] on the topology this table was built
    /// from.
    #[inline]
    pub fn action(&self, st: u32, side: u8, dst: NodeId) -> RingAction {
        self.actions[(st as usize * 2 + side as usize) * self.pms + dst.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(spec: &str) -> RingTopology {
        RingTopology::new(&spec.parse::<RingSpec>().unwrap())
    }

    #[test]
    fn spec_parse_and_display_round_trip() {
        for s in ["4", "3:6", "2:3:4", "2:3:3:6"] {
            let spec: RingSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
        }
        assert!("".parse::<RingSpec>().is_err());
        assert!("2:0:4".parse::<RingSpec>().is_err());
        assert!("a:b".parse::<RingSpec>().is_err());
    }

    #[test]
    fn spec_pm_counts_match_table2() {
        // Table 2 row checks: 2:3:4 = 24, 3:3:12 = 108, 2:3:3:6 = 108.
        assert_eq!("2:3:4".parse::<RingSpec>().unwrap().num_pms(), 24);
        assert_eq!("3:3:12".parse::<RingSpec>().unwrap().num_pms(), 108);
        assert_eq!("2:3:3:6".parse::<RingSpec>().unwrap().num_pms(), 108);
    }

    #[test]
    fn single_ring_structure() {
        let t = topo("6");
        assert_eq!(t.num_pms(), 6);
        assert_eq!(t.num_rings(), 1);
        assert_eq!(t.num_stations(), 6); // NICs only, no IRIs
                                         // The ring closes on itself.
        let mut pos = (t.nic_of(NodeId::new(0)), 0u8);
        for _ in 0..6 {
            pos = t.next_of(pos.0, pos.1);
        }
        assert_eq!(pos.0, t.nic_of(NodeId::new(0)));
    }

    #[test]
    fn two_level_structure() {
        let t = topo("2:3"); // global ring with 2 local rings of 3 PMs
        assert_eq!(t.num_pms(), 6);
        assert_eq!(t.num_rings(), 3);
        // 6 NICs + 2 IRIs.
        assert_eq!(t.num_stations(), 8);
        // Local rings have 3 NICs + 1 IRI; global ring has 2 IRIs.
        assert_eq!(t.ring(0).members.len(), 2);
        assert_eq!(t.ring(0).depth, 0);
        assert_eq!(t.ring(1).members.len(), 4);
        assert_eq!(t.ring(1).depth, 1);
    }

    #[test]
    fn single_ring_hop_counts() {
        let t = topo("4");
        // Uni-directional: 0 -> 1 is 1 hop; 1 -> 0 wraps: 3 hops.
        assert_eq!(t.hops(NodeId::new(0), NodeId::new(1)), 1);
        assert_eq!(t.hops(NodeId::new(0), NodeId::new(3)), 3);
        assert_eq!(t.hops(NodeId::new(1), NodeId::new(0)), 3);
        // Round trip around a P-node ring is always P hops.
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    let rt = t.hops(NodeId::new(a), NodeId::new(b))
                        + t.hops(NodeId::new(b), NodeId::new(a));
                    assert_eq!(rt, 4, "{a}->{b}");
                }
            }
        }
    }

    #[test]
    fn hierarchical_routing_reaches_every_destination() {
        for spec in ["2:3", "2:3:4", "3:3:6", "2:3:3:6"] {
            let t = topo(spec);
            let p = t.num_pms();
            for a in 0..p {
                for b in 0..p {
                    if a != b {
                        // hops() panics internally if routing leaks.
                        let h = t.hops(NodeId::new(a), NodeId::new(b));
                        assert!(h >= 1);
                    }
                }
            }
        }
    }

    #[test]
    fn cross_ring_paths_are_longer() {
        let t = topo("2:3");
        // PMs 0..3 on local ring A, 3..6 on B. Same ring: short.
        let same = t.hops(NodeId::new(0), NodeId::new(1));
        // Cross-ring must traverse: local A -> IRI -> global -> IRI -> local B.
        let cross = t.hops(NodeId::new(0), NodeId::new(3));
        assert!(cross > same, "cross={cross} same={same}");
    }

    #[test]
    fn iri_subtree_intervals_partition_pms() {
        let t = topo("2:3:4");
        // Level-1 IRIs (on the global ring) have disjoint intervals covering all PMs.
        let mut intervals: Vec<(u32, u32)> = t
            .ring(0)
            .members
            .iter()
            .map(|&(st, _)| match t.station(st) {
                StationKind::Iri { subtree } => subtree,
                _ => panic!("global ring must consist of IRIs"),
            })
            .collect();
        intervals.sort();
        assert_eq!(intervals, vec![(0, 12), (12, 24)]);
    }

    #[test]
    fn actions_at_nic() {
        let t = topo("4");
        let st = t.nic_of(NodeId::new(2));
        assert_eq!(t.action(st, 0, NodeId::new(2)), RingAction::Eject);
        assert_eq!(t.action(st, 0, NodeId::new(3)), RingAction::Forward);
    }

    #[test]
    fn actions_at_iri() {
        let t = topo("2:3");
        // Find the IRI whose subtree is [0,3).
        let iri = (0..t.num_stations() as u32)
            .find(|&s| matches!(t.station(s), StationKind::Iri { subtree: (0, 3) }))
            .unwrap();
        // Child-ring side: stay inside subtree, leave otherwise.
        assert_eq!(t.action(iri, 0, NodeId::new(1)), RingAction::Forward);
        assert_eq!(t.action(iri, 0, NodeId::new(4)), RingAction::Up);
        // Parent-ring side: descend into subtree, else continue.
        assert_eq!(t.action(iri, 1, NodeId::new(1)), RingAction::Down);
        assert_eq!(t.action(iri, 1, NodeId::new(4)), RingAction::Forward);
    }

    #[test]
    fn route_table_matches_action_exhaustively() {
        for spec in ["4", "2:3", "2:3:4", "2:2:3"] {
            let t = topo(spec);
            let table = t.route_table();
            for st in 0..t.num_stations() as u32 {
                let sides: &[u8] = match t.station(st) {
                    StationKind::Nic { .. } => &[0],
                    StationKind::Iri { .. } => &[0, 1],
                };
                for &side in sides {
                    for dst in 0..t.num_pms() {
                        let d = NodeId::new(dst);
                        assert_eq!(
                            table.action(st, side, d),
                            t.action(st, side, d),
                            "{spec}: st={st} side={side} dst={dst}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn depth_labels() {
        let t3 = topo("2:3:4");
        assert_eq!(t3.depth_label(0), "global ring");
        assert_eq!(t3.depth_label(1), "intermediate rings");
        assert_eq!(t3.depth_label(2), "local rings");
        let t1 = topo("8");
        assert_eq!(t1.depth_label(0), "ring");
    }

    #[test]
    fn station_count_formula() {
        // Stations = PMs + (number of non-root rings) since each
        // non-root ring contributes exactly one IRI.
        let t = topo("2:3:4");
        let non_root_rings = t.num_rings() - 1;
        assert_eq!(t.num_stations(), t.num_pms() as usize + non_root_rings);
    }
}
