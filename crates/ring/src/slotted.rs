//! Slotted-ring switching: the Hector/NUMAchine alternative.
//!
//! The paper simulates *wormhole* rings but notes (footnote 3) that the
//! NUMAchine hardware implements *slotted* rings, and the authors'
//! companion study (Ravindran & Stumm, IEICE Trans. 1996 — reference
//! [21]) finds slotted rings perform somewhat better. This module
//! implements that alternative as an extension: each ring is a
//! synchronous circular pipeline of one-flit slots that advance every
//! cycle unconditionally. A station fills empty slots with its outgoing
//! flits and drains slots addressed to it; nothing ever blocks, so the
//! design is trivially deadlock-free and uses each link's full
//! bandwidth under load.
//!
//! Flits of one packet always travel the same path in order, but may be
//! separated by gaps and interleaved with other packets' flits —
//! reassembly at the destination is per-packet ([`SlotAssembler`]).

use std::collections::VecDeque;

use ringmesh_engine::{StallError, Watchdog};
use ringmesh_net::{
    DrainState, Flit, FlitPool, Interconnect, LevelUtil, NodeId, Packet, PacketRef, PacketStore,
    QueueClass, UtilizationReport,
};
use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotState};

use crate::topology::{RingAction, RingSpec, RingTopology, RouteTable, StationKind};
use crate::RingConfig;

/// Reassembles per-packet flit streams that may interleave with other
/// packets (slotted rings do not enforce wormhole contiguity).
///
/// Flit trains are staged in buffers checked out of a shared
/// [`FlitPool`], so steady-state reassembly allocates nothing: each
/// completed packet returns its buffer for the next one.
#[derive(Debug, Default)]
struct SlotAssembler {
    /// `(packet, staged flits)` for packets mid-assembly. Small and
    /// scanned linearly: a PM rarely assembles more than a handful of
    /// packets at once.
    partial: Vec<(PacketRef, Vec<Flit>)>,
}

impl SlotAssembler {
    /// Accepts a flit; returns the packet when its tail completes it.
    /// Train buffers come from `pool` and are recycled on completion.
    fn push(&mut self, flit: Flit, pool: &mut FlitPool) -> Option<PacketRef> {
        match self.partial.iter_mut().find(|(r, _)| *r == flit.packet) {
            Some((_, train)) => {
                debug_assert_eq!(train.len() as u32, flit.seq, "out-of-order slotted flit");
                train.push(flit);
            }
            None => {
                debug_assert!(flit.is_head(), "mid-packet flit without assembly state");
                if flit.is_tail {
                    // Single-flit packet: complete without staging.
                    return Some(flit.packet);
                }
                let mut train = pool.checkout();
                train.push(flit);
                self.partial.push((flit.packet, train));
            }
        }
        if flit.is_tail {
            let idx = self
                .partial
                .iter()
                .position(|(r, _)| *r == flit.packet)
                .expect("just updated");
            let (_, train) = self.partial.swap_remove(idx);
            pool.recycle(train);
            Some(flit.packet)
        } else {
            None
        }
    }
}

/// Per-station outgoing state: ring-changing flits pass straight
/// through (`crossing`), while locally-originated packets queue per
/// class and serialize one flit at a time into passing empty slots.
#[derive(Debug, Default)]
struct Outbox {
    crossing: VecDeque<Flit>,
    resp: VecDeque<PacketRef>,
    req: VecDeque<PacketRef>,
    drain: DrainState,
}

impl Outbox {
    fn enqueue(&mut self, class: QueueClass, r: PacketRef) {
        match class {
            QueueClass::Response => self.resp.push_back(r),
            QueueClass::Request => self.req.push_back(r),
        }
    }

    /// Accepts a flit crossing rings; crossings re-serialize through
    /// the outbox in arrival order, preserving per-packet order.
    fn drain_continue(&mut self, flit: Flit) {
        self.crossing.push_back(flit);
    }

    /// The next flit to inject, if any: ring-changing traffic first
    /// (the IRI priority rule), then local responses, then requests.
    fn next_flit(&mut self, store: &PacketStore) -> Option<Flit> {
        if let Some(flit) = self.crossing.pop_front() {
            return Some(flit);
        }
        if !self.drain.is_active() {
            let r = self.resp.pop_front().or_else(|| self.req.pop_front())?;
            self.drain.begin(r, store.get(r).flits);
        }
        Some(self.drain.emit())
    }

    fn len(&self) -> usize {
        self.resp.len() + self.req.len() + usize::from(self.drain.is_active())
    }
}

impl SnapshotState for SlotAssembler {
    fn save_state(&self, w: &mut SnapWriter) {
        self.partial.save(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        // Trains are rebuilt from the snapshot rather than checked out
        // of the pool: the pool's outstanding counter (restored
        // separately) already accounts for them, and completion recycles
        // them back as usual.
        self.partial = Snapshot::load(r)?;
        Ok(())
    }
}

impl SnapshotState for Outbox {
    fn save_state(&self, w: &mut SnapWriter) {
        self.crossing.save(w);
        self.resp.save(w);
        self.req.save(w);
        self.drain.save(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.crossing = Snapshot::load(r)?;
        self.resp = Snapshot::load(r)?;
        self.req = Snapshot::load(r)?;
        self.drain = DrainState::load(r)?;
        Ok(())
    }
}

/// A hierarchical ring network with slotted (non-blocking) switching.
///
/// Shares [`RingSpec`]/[`RingTopology`] and [`RingConfig`] with the
/// wormhole model ([`RingNetwork`](crate::RingNetwork)); only the
/// switching discipline differs. Implements [`Interconnect`].
///
/// # Example
///
/// ```
/// use ringmesh_net::{CacheLineSize, Interconnect, NodeId, Packet, PacketKind, TxnId};
/// use ringmesh_ring::{RingConfig, RingSpec, SlottedRingNetwork};
///
/// let cfg = RingConfig::new(CacheLineSize::B32);
/// let mut net = SlottedRingNetwork::new(&RingSpec::single(4), cfg.clone());
/// net.inject(NodeId::new(0), Packet {
///     txn: TxnId::new(1), kind: PacketKind::ReadReq,
///     src: NodeId::new(0), dst: NodeId::new(2),
///     flits: 1, injected_at: 0,
/// });
/// let mut delivered = Vec::new();
/// while delivered.is_empty() {
///     net.step(&mut delivered).unwrap();
/// }
/// assert_eq!(delivered[0].0, NodeId::new(2));
/// ```
#[derive(Debug)]
pub struct SlottedRingNetwork {
    topo: RingTopology,
    /// Flat routing-decision table; replaces per-flit `topo.action`
    /// recomputation on the slot-service path.
    routes: RouteTable,
    /// `(ring, position, station, side)` service schedule, flattened
    /// once at construction so the per-cycle station loop neither
    /// clones member lists nor chases the topology.
    service_order: Vec<(u32, u32, u32, u8)>,
    store: PacketStore,
    /// One slot vector per ring, indexed by member position; `slots[r][i]`
    /// is the slot that station `members[i]` examines this cycle.
    slots: Vec<Vec<Option<Flit>>>,
    /// PM outboxes (indexed by PM) and IRI up/down outboxes (indexed by
    /// station id): slotted crossings queue in elastic outboxes on the
    /// target ring's side.
    pm_out: Vec<Outbox>,
    iri_up: Vec<Outbox>,
    iri_down: Vec<Outbox>,
    assemblers: Vec<SlotAssembler>,
    /// Shared reassembly-buffer pool; see [`Self::pool_stats`].
    pool: FlitPool,
    cycle: u64,
    ring_flits: Vec<u64>,
    reset_cycle: u64,
    watchdog: Watchdog,
}

impl SlottedRingNetwork {
    /// Builds the slotted network for `spec` under `cfg` (only the
    /// cache-line/packet sizing of `cfg` is used; buffer depths do not
    /// apply to slotted switching, and the global-ring speedup is not
    /// supported in this extension).
    pub fn new(spec: &RingSpec, cfg: RingConfig) -> Self {
        let topo = RingTopology::new(spec);
        let slots: Vec<Vec<Option<Flit>>> = topo
            .rings()
            .map(|(_, r)| vec![None; r.members.len()])
            .collect();
        let mut service_order = Vec::new();
        for (rid, info) in topo.rings() {
            for (pos, &(st, side)) in info.members.iter().enumerate() {
                service_order.push((rid, pos as u32, st, side));
            }
        }
        let routes = topo.route_table();
        let n_st = topo.num_stations();
        let pms = topo.num_pms() as usize;
        let horizon = cfg.watchdog_horizon;
        let num_rings = topo.num_rings();
        SlottedRingNetwork {
            topo,
            routes,
            service_order,
            store: PacketStore::new(),
            slots,
            pm_out: (0..pms).map(|_| Outbox::default()).collect(),
            iri_up: (0..n_st).map(|_| Outbox::default()).collect(),
            iri_down: (0..n_st).map(|_| Outbox::default()).collect(),
            assemblers: (0..pms).map(|_| SlotAssembler::default()).collect(),
            pool: FlitPool::new(),
            cycle: 0,
            ring_flits: vec![0; num_rings],
            reset_cycle: 0,
            watchdog: Watchdog::new(horizon),
        }
    }

    /// The expanded topology.
    pub fn topology(&self) -> &RingTopology {
        &self.topo
    }

    /// `(fresh allocations, recycled checkouts, outstanding buffers)`
    /// of the reassembly flit pool. After a full drain `outstanding`
    /// is 0; in steady state `recycled` dominates `allocated`, which is
    /// the zero-allocation property the pool exists to provide.
    pub fn pool_stats(&self) -> (u64, u64, usize) {
        (
            self.pool.allocated(),
            self.pool.recycled(),
            self.pool.outstanding(),
        )
    }

    /// One station's interaction with the slot currently at its
    /// position on ring `rid`: drain it if addressed here, else leave
    /// it; fill an empty slot from the local outbox.
    #[allow(clippy::too_many_arguments)]
    fn service_slot(
        &mut self,
        rid: u32,
        pos: usize,
        st: u32,
        side: u8,
        delivered: &mut Vec<(NodeId, Packet)>,
        moved: &mut u64,
    ) {
        // Drain: does the occupying flit leave the ring here?
        if let Some(flit) = self.slots[rid as usize][pos] {
            let dst = self.store.get(flit.packet).dst;
            match self.routes.action(st, side, dst) {
                RingAction::Eject => {
                    let pm = match self.topo.station(st) {
                        StationKind::Nic { pm } => pm,
                        StationKind::Iri { .. } => unreachable!("eject at IRI"),
                    };
                    self.slots[rid as usize][pos] = None;
                    *moved += 1;
                    if let Some(done) = self.assemblers[pm.index()].push(flit, &mut self.pool) {
                        let pkt = self.store.remove(done);
                        delivered.push((pm, pkt));
                    }
                }
                RingAction::Up => {
                    self.slots[rid as usize][pos] = None;
                    self.iri_up[st as usize].drain_continue(flit);
                    *moved += 1;
                }
                RingAction::Down => {
                    self.slots[rid as usize][pos] = None;
                    self.iri_down[st as usize].drain_continue(flit);
                    *moved += 1;
                }
                RingAction::Forward => {}
            }
        }
        // Fill: an empty slot takes the next outgoing flit (the PM's
        // outbox at NICs; the down outbox on an IRI's lower side, the
        // up outbox on its upper side).
        if self.slots[rid as usize][pos].is_none() {
            let outbox = match (self.topo.station(st), side) {
                (StationKind::Nic { pm }, _) => &mut self.pm_out[pm.index()],
                (StationKind::Iri { .. }, 0) => &mut self.iri_down[st as usize],
                (StationKind::Iri { .. }, _) => &mut self.iri_up[st as usize],
            };
            if let Some(flit) = outbox.next_flit(&self.store) {
                self.slots[rid as usize][pos] = Some(flit);
                *moved += 1;
            }
        }
    }
}

impl Interconnect for SlottedRingNetwork {
    fn num_pms(&self) -> usize {
        self.topo.num_pms() as usize
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn can_inject(&self, pm: NodeId, _class: QueueClass) -> bool {
        // Slotted NIC outboxes are elastic but we keep the paper's
        // one-packet pacing per class at the PM boundary.
        self.pm_out[pm.index()].len() < 2
    }

    /// The slotted ring steps by rotating whole rings and then walking
    /// stations in ring order against the shared slot arrays, so the
    /// entire model is one dependency chain per ring with inter-ring
    /// transfer coupling — serial by construction. See the trait doc:
    /// models whose intra-cycle dependencies make sharding unsound
    /// simply stay serial.
    fn set_kernel_threads(&mut self, threads: usize) {
        let _ = threads;
    }

    fn kernel_threads(&self) -> usize {
        1
    }

    fn inject(&mut self, pm: NodeId, packet: Packet) {
        assert_eq!(packet.src, pm, "packet injected at the wrong PM");
        assert_ne!(packet.src, packet.dst, "local accesses bypass the network");
        let class = QueueClass::of(packet.kind);
        let r = self.store.insert(packet);
        self.pm_out[pm.index()].enqueue(class, r);
    }

    fn step(&mut self, delivered: &mut Vec<(NodeId, Packet)>) -> Result<(), StallError> {
        let mut moved = 0u64;
        // 1. Rotate every ring by one position (slots advance); one
        //    occupancy pass feeds both progress and utilization counts.
        for r in 0..self.slots.len() {
            self.slots[r].rotate_right(1);
            let occupied = self.slots[r].iter().flatten().count() as u64;
            moved += occupied;
            self.ring_flits[r] += occupied;
        }
        // 2. Every station services the slot now at its position, in
        //    the service order flattened at construction (no per-cycle
        //    member-list clones).
        for i in 0..self.service_order.len() {
            let (rid, pos, st, side) = self.service_order[i];
            self.service_slot(rid, pos as usize, st, side, delivered, &mut moved);
        }
        self.cycle += 1;
        self.watchdog.observe(self.cycle, moved, self.store.live());
        self.watchdog.check(self.cycle)
    }

    fn in_flight(&self) -> u64 {
        self.store.live()
    }

    fn utilization(&self) -> UtilizationReport {
        let cycles = self.cycle - self.reset_cycle;
        if cycles == 0 {
            return UtilizationReport::default();
        }
        let levels = self.topo.levels();
        let mut busy = vec![0u64; levels];
        let mut cap = vec![0u64; levels];
        for (rid, ring) in self.topo.rings() {
            let d = ring.depth as usize;
            busy[d] += self.ring_flits[rid as usize];
            cap[d] += ring.members.len() as u64 * cycles;
        }
        UtilizationReport {
            overall: busy.iter().sum::<u64>() as f64 / cap.iter().sum::<u64>().max(1) as f64,
            levels: (0..levels)
                .map(|d| LevelUtil {
                    label: self.topo.depth_label(d as u32),
                    utilization: busy[d] as f64 / cap[d].max(1) as f64,
                })
                .collect(),
        }
    }

    fn reset_counters(&mut self) {
        self.ring_flits.iter_mut().for_each(|c| *c = 0);
        self.reset_cycle = self.cycle;
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.store.save(w);
        self.slots.save(w);
        for group in [&self.pm_out, &self.iri_up, &self.iri_down] {
            w.usize(group.len());
            for outbox in group {
                outbox.save_state(w);
            }
        }
        w.usize(self.assemblers.len());
        for asm in &self.assemblers {
            asm.save_state(w);
        }
        self.pool.save_state(w);
        w.u64(self.cycle);
        self.ring_flits.save(w);
        w.u64(self.reset_cycle);
        self.watchdog.save_state(w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let mismatch = |what: &str, got: usize, want: usize| {
            SnapError::Mismatch(format!("{what}: snapshot has {got}, network has {want}"))
        };
        self.store = PacketStore::load(r)?;
        let slots: Vec<Vec<Option<Flit>>> = Snapshot::load(r)?;
        if slots.len() != self.slots.len() {
            return Err(mismatch("ring count", slots.len(), self.slots.len()));
        }
        for (i, (got, want)) in slots.iter().zip(&self.slots).enumerate() {
            if got.len() != want.len() {
                return Err(mismatch(
                    &format!("ring {i} slot count"),
                    got.len(),
                    want.len(),
                ));
            }
        }
        self.slots = slots;
        for (label, group) in [
            ("PM outbox", &mut self.pm_out),
            ("IRI up outbox", &mut self.iri_up),
            ("IRI down outbox", &mut self.iri_down),
        ] {
            let n = r.usize()?;
            if n != group.len() {
                return Err(mismatch(&format!("{label} count"), n, group.len()));
            }
            for outbox in group.iter_mut() {
                outbox.restore_state(r)?;
            }
        }
        let n_asm = r.usize()?;
        if n_asm != self.assemblers.len() {
            return Err(mismatch("assembler count", n_asm, self.assemblers.len()));
        }
        for asm in &mut self.assemblers {
            asm.restore_state(r)?;
        }
        self.pool.restore_state(r)?;
        self.cycle = r.u64()?;
        let ring_flits: Vec<u64> = Snapshot::load(r)?;
        if ring_flits.len() != self.ring_flits.len() {
            return Err(mismatch(
                "ring count",
                ring_flits.len(),
                self.ring_flits.len(),
            ));
        }
        self.ring_flits = ring_flits;
        self.reset_cycle = r.u64()?;
        self.watchdog.restore_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringmesh_net::{CacheLineSize, PacketKind, TxnId};

    fn packet(cfg: &RingConfig, txn: u64, kind: PacketKind, src: u32, dst: u32) -> Packet {
        Packet {
            txn: TxnId::new(txn),
            kind,
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            flits: cfg.format.flits(kind, cfg.cache_line),
            injected_at: 0,
        }
    }

    #[test]
    fn delivers_single_packet() {
        let cfg = RingConfig::new(CacheLineSize::B32);
        let mut net = SlottedRingNetwork::new(&RingSpec::single(4), cfg.clone());
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadResp, 0, 2));
        let mut out = Vec::new();
        let mut cycles = 0;
        while out.is_empty() {
            net.step(&mut out).unwrap();
            cycles += 1;
            assert!(cycles < 100);
        }
        assert_eq!(out[0].0, NodeId::new(2));
        // 3 flits over 2 hops in a non-blocking pipeline.
        assert!(cycles <= 8, "cycles={cycles}");
    }

    #[test]
    fn all_pairs_delivered_hierarchical() {
        let cfg = RingConfig::new(CacheLineSize::B64);
        let spec: RingSpec = "2:2:3".parse().unwrap();
        let p = spec.num_pms();
        let mut net = SlottedRingNetwork::new(&spec, cfg.clone());
        let mut expected = 0u32;
        let mut txn = 0;
        let mut out = Vec::new();
        for s in 0..p {
            for d in 0..p {
                if s != d {
                    // Pump injections over time (outbox pacing).
                    while !net.can_inject(NodeId::new(s), QueueClass::Request) {
                        net.step(&mut out).unwrap();
                    }
                    txn += 1;
                    net.inject(
                        NodeId::new(s),
                        packet(&cfg, txn, PacketKind::WriteReq, s, d),
                    );
                    expected += 1;
                }
            }
        }
        for _ in 0..20_000 {
            net.step(&mut out).unwrap();
            if out.len() as u32 >= expected {
                break;
            }
        }
        assert_eq!(out.len() as u32, expected);
        assert_eq!(net.in_flight(), 0);
        // Exactly-once delivery.
        let mut txns: Vec<u64> = out.iter().map(|(_, p)| p.txn.raw()).collect();
        txns.sort_unstable();
        txns.dedup();
        assert_eq!(txns.len() as u32, expected);
    }

    #[test]
    fn reassembly_pool_recycles_and_drains() {
        // Drive the all-pairs flow with a conservation ledger at the
        // boundary: when the ledger balances, the reassembly pool must
        // hold zero outstanding buffers, and steady-state traffic must
        // be served by recycling rather than fresh allocation.
        use ringmesh_faults::ConservationLedger;
        let cfg = RingConfig::new(CacheLineSize::B64);
        let spec: RingSpec = "2:2:3".parse().unwrap();
        let p = spec.num_pms();
        let mut net = SlottedRingNetwork::new(&spec, cfg.clone());
        let mut ledger = ConservationLedger::new(false);
        let mut out = Vec::new();
        let mut txn = 0;
        for s in 0..p {
            for d in 0..p {
                if s != d {
                    while !net.can_inject(NodeId::new(s), QueueClass::Request) {
                        net.step(&mut out).unwrap();
                    }
                    txn += 1;
                    net.inject(
                        NodeId::new(s),
                        packet(&cfg, txn, PacketKind::WriteReq, s, d),
                    );
                    ledger.inject(0);
                }
            }
        }
        for _ in 0..20_000 {
            net.step(&mut out).unwrap();
            if net.in_flight() == 0 {
                break;
            }
        }
        for _ in 0..out.len() {
            ledger.complete(0, false);
        }
        ledger.verify(net.in_flight()).unwrap();
        let (allocated, recycled, outstanding) = net.pool_stats();
        assert_eq!(outstanding, 0, "drained network leaked pool buffers");
        assert!(
            recycled > allocated,
            "pool should recycle in steady state (allocated={allocated} recycled={recycled})"
        );
        assert_eq!(
            allocated + recycled,
            txn,
            "one checkout per multi-flit packet"
        );
    }

    #[test]
    fn slots_never_block_under_flood() {
        // Saturate a small hierarchy: slotted switching must keep
        // moving (no watchdog trip) and drain completely.
        let cfg = RingConfig::new(CacheLineSize::B128);
        let spec: RingSpec = "3:4".parse().unwrap();
        let mut net = SlottedRingNetwork::new(&spec, cfg.clone());
        let mut out = Vec::new();
        let mut txn = 0u64;
        for round in 0..200u32 {
            for s in 0..12u32 {
                let d = (s + 1 + round % 11) % 12;
                if d != s && net.can_inject(NodeId::new(s), QueueClass::Request) {
                    txn += 1;
                    net.inject(
                        NodeId::new(s),
                        packet(&cfg, txn, PacketKind::WriteReq, s, d),
                    );
                }
            }
            net.step(&mut out).unwrap();
        }
        for _ in 0..20_000 {
            net.step(&mut out).unwrap();
            if net.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(net.in_flight(), 0);
        assert_eq!(out.len() as u64, txn);
    }
}
