//! [`TopologyBuilder`] implementations for the two ring disciplines.
//!
//! The registry keeps construction knowledge next to the kernels it
//! builds: everything the rest of the simulator needs to know about a
//! ring network — PM count, labels, workload placement, packet format
//! — is answered here instead of in per-call-site `match` arms.

use ringmesh_net::{
    CacheLineSize, ConfigError, Interconnect, PacketFormat, Placement, TopologyBuilder,
};

use crate::{RingConfig, RingNetwork, RingSpec, SlottedRingNetwork};

/// Builds the paper's wormhole-switched hierarchical ring
/// ([`RingNetwork`]). Spec syntax: `ring:2:3:4`, or `ring2x:2:3:4`
/// for the §6 double-speed global ring.
#[derive(Debug, Clone)]
pub struct RingBuilder {
    /// Hierarchy spec (e.g. `"2:3:4".parse()`).
    pub spec: RingSpec,
    /// Global-ring clock multiplier (1 or 2).
    pub speedup: u32,
}

impl TopologyBuilder for RingBuilder {
    fn num_pms(&self) -> u32 {
        self.spec.num_pms()
    }

    fn label(&self) -> String {
        if self.speedup == 1 {
            format!("ring {}", self.spec)
        } else {
            format!("ring {} ({}x global)", self.spec, self.speedup)
        }
    }

    fn spec(&self) -> String {
        if self.speedup == 1 {
            format!("ring:{}", self.spec)
        } else {
            format!("ring{}x:{}", self.speedup, self.spec)
        }
    }

    fn placement(&self) -> Placement {
        Placement::Linear {
            pms: self.spec.num_pms(),
        }
    }

    fn format(&self) -> PacketFormat {
        PacketFormat::RING
    }

    fn parallel_kernel(&self) -> bool {
        false
    }

    fn build(&self, cache_line: CacheLineSize) -> Result<Box<dyn Interconnect>, ConfigError> {
        if !(1..=2).contains(&self.speedup) {
            return Err(ConfigError::Invalid(format!(
                "global ring speedup must be 1 or 2, got {}",
                self.speedup
            )));
        }
        let rc = RingConfig::new(cache_line).with_global_speedup(self.speedup);
        Ok(Box::new(RingNetwork::new(&self.spec, rc)))
    }
}

/// Builds the slotted-ring extension ([`SlottedRingNetwork`]). Spec
/// syntax: `slotted:2:3:4`.
#[derive(Debug, Clone)]
pub struct SlottedBuilder {
    /// Hierarchy spec.
    pub spec: RingSpec,
}

impl TopologyBuilder for SlottedBuilder {
    fn num_pms(&self) -> u32 {
        self.spec.num_pms()
    }

    fn label(&self) -> String {
        format!("slotted ring {}", self.spec)
    }

    fn spec(&self) -> String {
        format!("slotted:{}", self.spec)
    }

    fn placement(&self) -> Placement {
        Placement::Linear {
            pms: self.spec.num_pms(),
        }
    }

    fn format(&self) -> PacketFormat {
        PacketFormat::RING
    }

    fn parallel_kernel(&self) -> bool {
        false
    }

    fn build(&self, cache_line: CacheLineSize) -> Result<Box<dyn Interconnect>, ConfigError> {
        let rc = RingConfig::new(cache_line);
        Ok(Box::new(SlottedRingNetwork::new(&self.spec, rc)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_builder_identity() {
        let b = RingBuilder {
            spec: "2:3:4".parse().unwrap(),
            speedup: 1,
        };
        assert_eq!(b.num_pms(), 24);
        assert_eq!(b.label(), "ring 2:3:4");
        assert_eq!(b.spec(), "ring:2:3:4");
        assert_eq!(b.placement(), Placement::Linear { pms: 24 });
        assert!(!b.parallel_kernel());
        let net = b.build(CacheLineSize::B64).unwrap();
        assert_eq!(net.num_pms(), 24);
    }

    #[test]
    fn double_speed_spec_string() {
        let b = RingBuilder {
            spec: "3:3:4".parse().unwrap(),
            speedup: 2,
        };
        assert_eq!(b.spec(), "ring2x:3:3:4");
        assert_eq!(b.label(), "ring 3:3:4 (2x global)");
    }

    #[test]
    fn bad_speedup_draws_typed_error() {
        let b = RingBuilder {
            spec: "4".parse().unwrap(),
            speedup: 3,
        };
        assert!(b.build(CacheLineSize::B32).is_err());
    }

    #[test]
    fn slotted_builder_identity() {
        let b = SlottedBuilder {
            spec: "2:3".parse().unwrap(),
        };
        assert_eq!(b.label(), "slotted ring 2:3");
        assert_eq!(b.spec(), "slotted:2:3");
        assert_eq!(b.build(CacheLineSize::B32).unwrap().num_pms(), 6);
    }
}
