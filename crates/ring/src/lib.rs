//! Hierarchical uni-directional ring network model for the `ringmesh`
//! simulator (§2.1, §3 and §6 of Ravindran & Stumm, HPCA 1997).
//!
//! A hierarchical ring system connects processing modules to *local*
//! rings through Network Interface Controllers (NICs), and rings of
//! adjacent levels through Inter-Ring Interfaces (IRIs) modelled as
//! 2×2 crossbars. Packets are wormhole switched: variable-size flit
//! trains whose head acquires links and buffers and whose tail frees
//! them, with registered stop/go back-pressure.
//!
//! * [`RingSpec`]/[`RingTopology`] — the `2:3:4`-style hierarchy
//!   descriptions of the paper's Table 2 and their expansion into a
//!   station graph.
//! * [`RingConfig`] — buffer/queue sizing and the §6 double-speed
//!   global ring option.
//! * [`RingNetwork`] — the cycle-accurate simulator; implements
//!   [`ringmesh_net::Interconnect`].
//!
//! # Example
//!
//! ```
//! use ringmesh_net::{CacheLineSize, Interconnect};
//! use ringmesh_ring::{RingConfig, RingNetwork, RingSpec};
//!
//! // The paper's optimal 24-processor topology for 128-byte lines.
//! let spec: RingSpec = "2:3:4".parse()?;
//! let net = RingNetwork::new(&spec, RingConfig::new(CacheLineSize::B128));
//! assert_eq!(net.num_pms(), 24);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod config;
mod iri;
mod network;
mod nic;
mod slotted;
mod station;
pub mod topology;

pub use builder::{RingBuilder, SlottedBuilder};
pub use config::RingConfig;
pub use network::RingNetwork;
pub use slotted::SlottedRingNetwork;
pub use topology::{RingAction, RingSpec, RingTopology, RouteTable, StationKind};

/// Station-level kernels, re-exported for the hybrid ring-mesh network
/// (`ringmesh-hybrid`), which assembles its local rings from the same
/// NIC/IRI state machines this crate's own network uses. Semver-exempt
/// plumbing, not a stable API — everything here mirrors internal
/// structure.
#[doc(hidden)]
pub mod kernel {
    pub use crate::iri::{Iri, LOWER, UPPER};
    pub use crate::nic::Nic;
    pub use crate::station::{Send, SideRef, StepPulse};
}
