//! The ring Network Interface Controller (Figure 3 of the paper).
//!
//! A NIC switches (1) incoming ring packets destined to the local PM
//! onto the ejection path, (2) outgoing packets from the PM onto the
//! ring, and (3) continuing transit packets from the input link to the
//! output link through a cache-line-sized ring (bypass) buffer. The
//! output link gives priority to transit traffic; among local packets
//! responses beat requests.

use ringmesh_faults::{ConservationLedger, DropReason};
use ringmesh_net::{
    Assembler, DrainState, FlitFifo, NodeId, Packet, PacketQueue, PacketRef, PacketStore,
    QueueClass,
};
use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotState};

use crate::station::{ClassQueues, Disposition, LinkOwner, Send, SideRef, StepPulse, TransitRoute};

/// Per-NIC simulation state.
#[derive(Debug)]
pub struct Nic {
    pm: NodeId,
    ring: u32,
    downstream: SideRef,
    ring_buf: FlitFifo,
    out: ClassQueues<PacketQueue>,
    drain: DrainState,
    owner: LinkOwner,
    transit: TransitRoute,
    assembler: Assembler,
}

impl Nic {
    /// Builds the NIC attaching `pm` to ring `ring`, with its output
    /// link feeding the `downstream` station side.
    pub fn new(
        pm: NodeId,
        ring: u32,
        downstream: SideRef,
        ring_buf_flits: usize,
        out_queue_packets: usize,
    ) -> Self {
        Nic {
            pm,
            ring,
            downstream,
            ring_buf: FlitFifo::new(ring_buf_flits),
            out: ClassQueues::new(
                PacketQueue::new(out_queue_packets),
                PacketQueue::new(out_queue_packets),
            ),
            drain: DrainState::idle(),
            owner: LinkOwner::Idle,
            transit: TransitRoute::default(),
            assembler: Assembler::new(),
        }
    }

    /// The processing module this NIC serves.
    pub fn pm(&self) -> NodeId {
        self.pm
    }

    /// The transit (bypass) buffer, for the network's send-commit loop.
    pub fn ring_buf_mut(&mut self) -> &mut FlitFifo {
        &mut self.ring_buf
    }

    /// Read access to the transit buffer (debug invariant checks).
    pub fn ring_buf(&self) -> &FlitFifo {
        &self.ring_buf
    }

    /// Whether the PM-side output queue for `class` can accept a packet.
    pub fn can_accept(&self, class: QueueClass) -> bool {
        self.out.get(class).can_accept()
    }

    /// Enqueues an outgoing packet from the PM.
    pub fn enqueue(&mut self, class: QueueClass, r: PacketRef) {
        self.out.get_mut(class).push(r);
    }

    /// One clock of the NIC. `free_out` is the downstream station's
    /// registered free-slot count; every link transfer needs one free
    /// slot per flit. `credits` tracks each ring's total free transit
    /// slots: a flit may *enter* the ring (from the PM) only while at
    /// least two such slots remain, so one free slot always circulates,
    /// forwarding always progresses, and every packet monotonically
    /// reaches its exit station — the credit rule that keeps the
    /// uni-directional rings deadlock-free (DESIGN.md, "Model fidelity
    /// notes"). Emits at most one flit on the output link (into
    /// `sends`) and at most one flit onto the ejection path.
    ///
    /// `link_up` gates the output link only: while the downstream link
    /// is transiently down no flit leaves the station, but the ejection
    /// path keeps draining (it is a separate wire in Figure 3).
    /// `corrupt` marks packet-store slots whose payload was corrupted
    /// in flight; such packets are dropped at reassembly instead of
    /// delivered.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        now: u64,
        link_up: bool,
        free_out: usize,
        credits: &mut [i64],
        corrupt: &[bool],
        ledger: &mut ConservationLedger,
        store: &mut PacketStore,
        sends: &mut Vec<Send>,
        delivered: &mut Vec<(NodeId, Packet)>,
        dropped: &mut Vec<(Packet, DropReason)>,
        pulse: &mut StepPulse,
    ) {
        let ring = self.ring as usize;
        // A downed output link advertises no room: transit forwarding
        // and new injections stall in place, losing nothing.
        let free_out = if link_up { free_out } else { 0 };
        let go_transit = free_out >= 1;
        // Classify the packet at the front of the ring buffer (decided
        // once, at its head flit).
        if let Some(flit) = self.ring_buf.front_ready(now) {
            if self.transit.packet() != Some(flit.packet) {
                debug_assert!(flit.is_head(), "mid-packet flit without a route");
                let eject = store.get(flit.packet).dst == self.pm;
                let disposition = if eject {
                    Disposition::Cross
                } else {
                    Disposition::Forward
                };
                self.transit.set(flit.packet, disposition);
            }
        }

        // Ejection path: one flit per cycle from the ring buffer to the
        // PM. This is independent of the output link (Figure 3 shows
        // separate paths), so it can proceed while the PM injects.
        if self.transit.crossing() {
            if let Some(flit) = self.ring_buf.pop_ready(now) {
                credits[ring] += 1; // the flit left the ring
                pulse.moved += 1;
                if flit.is_tail {
                    self.transit.clear();
                }
                if let Some(done) = self.assembler.push(flit) {
                    let slot = done.slot();
                    let pkt = store.remove(done);
                    if corrupt.get(slot).copied().unwrap_or(false) {
                        ledger.complete(slot, true);
                        dropped.push((pkt, DropReason::Corrupted));
                    } else {
                        ledger.complete(slot, false);
                        delivered.push((self.pm, pkt));
                    }
                }
            }
        }

        // Output link: at most one flit per cycle toward the downstream
        // neighbour, gated by its registered stop/go.
        match self.owner {
            LinkOwner::Transit => {
                if go_transit {
                    if let Some(flit) = self.ring_buf.pop_ready(now) {
                        debug_assert_eq!(Some(flit.packet), self.transit.packet());
                        if flit.is_tail {
                            self.owner = LinkOwner::Idle;
                            self.transit.clear();
                        }
                        sends.push(Send {
                            to: self.downstream,
                            flit,
                            ring: self.ring,
                        });
                    }
                } else if self.ring_buf.front_ready(now).is_some() {
                    pulse.blocked += 1;
                }
            }
            LinkOwner::Cross(_) => {
                // The injection drain: buffer space and credits for the
                // whole worm were reserved at start, and the packet is
                // held locally, so continuation is unconditional while
                // the link is up — an entering worm never stalls
                // holding the link. A downed link pauses the worm
                // mid-entry; the reserved downstream space keeps the
                // pause loss-free.
                if link_up {
                    let flit = self.drain.emit();
                    if flit.is_tail {
                        self.owner = LinkOwner::Idle;
                    }
                    sends.push(Send {
                        to: self.downstream,
                        flit,
                        ring: self.ring,
                    });
                } else {
                    pulse.blocked += 1;
                }
            }
            LinkOwner::Idle => {
                if self.transit.forwarding() && self.ring_buf.front_ready(now).is_some() {
                    // Transit traffic has priority on the output link.
                    if go_transit {
                        let flit = self.ring_buf.pop_ready(now).expect("front was ready");
                        if flit.is_tail {
                            self.transit.clear();
                        } else {
                            self.owner = LinkOwner::Transit;
                        }
                        sends.push(Send {
                            to: self.downstream,
                            flit,
                            ring: self.ring,
                        });
                    } else {
                        pulse.blocked += 1;
                    }
                } else if let Some(class) = self.next_injection(free_out, credits[ring], store) {
                    let r = self.out.get_mut(class).pop().expect("front checked");
                    let flits = store.get(r).flits;
                    credits[ring] -= i64::from(flits);
                    self.drain.begin(r, flits);
                    let flit = self.drain.emit();
                    if !flit.is_tail {
                        self.owner = LinkOwner::Cross(class);
                    }
                    sends.push(Send {
                        to: self.downstream,
                        flit,
                        ring: self.ring,
                    });
                }
            }
        }
    }

    /// Which class can start injecting: responses beat requests (§2.1).
    /// A worm may start entering the ring only if the downstream
    /// transit buffer has latched room for all of it (it then never
    /// stalls mid-entry) and the ring's free-slot credits cover it with
    /// one to spare (a free slot always keeps circulating).
    fn next_injection(
        &self,
        free_out: usize,
        credits: i64,
        store: &PacketStore,
    ) -> Option<QueueClass> {
        for class in [QueueClass::Response, QueueClass::Request] {
            if let Some(r) = self.out.get(class).front() {
                let flits = store.get(r).flits;
                if free_out >= flits as usize && credits > i64::from(flits) {
                    return Some(class);
                }
            }
        }
        None
    }

    /// True when a step of this NIC is provably a no-op: the transit
    /// buffer is empty, no worm is mid-entry on the output link, and
    /// nothing is queued at the PM boundary. Non-empty PM queues keep
    /// the NIC active even when everything else is idle — injection
    /// eligibility depends on downstream free space and ring credits,
    /// both of which change without touching this station.
    pub fn quiescent(&self) -> bool {
        self.ring_buf.is_empty()
            && matches!(self.owner, LinkOwner::Idle)
            && !self.drain.is_active()
            && self.transit.packet().is_none()
            && self.out.get(QueueClass::Request).is_empty()
            && self.out.get(QueueClass::Response).is_empty()
    }

    pub(crate) fn debug_idle(&self) -> bool {
        matches!(self.owner, LinkOwner::Idle)
            && self.out.get(QueueClass::Request).is_empty()
            && self.out.get(QueueClass::Response).is_empty()
    }

    pub(crate) fn debug_state(&self) -> String {
        format!(
            "owner={:?} outq=(r{} s{}) drain={} transit=({:?})",
            self.owner,
            self.out.get(QueueClass::Request).len(),
            self.out.get(QueueClass::Response).len(),
            self.drain.is_active(),
            self.transit.packet().map(|p| p.slot()),
        )
    }

    /// Latches the ring buffer's registered occupancy; returns the new
    /// free-slot count advertised to the upstream neighbour.
    pub fn latch(&mut self) -> usize {
        self.ring_buf.latch();
        self.ring_buf.free_latched()
    }
}

impl SnapshotState for Nic {
    fn save_state(&self, w: &mut SnapWriter) {
        self.ring_buf.save_state(w);
        self.out.save_state(w);
        self.drain.save(w);
        self.owner.save(w);
        self.transit.save(w);
        self.assembler.save(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.ring_buf.restore_state(r)?;
        self.out.restore_state(r)?;
        self.drain = DrainState::load(r)?;
        self.owner = LinkOwner::load(r)?;
        self.transit = TransitRoute::load(r)?;
        self.assembler = Assembler::load(r)?;
        Ok(())
    }
}
