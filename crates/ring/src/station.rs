//! Small shared pieces of ring station state.

use ringmesh_net::{Flit, PacketRef, QueueClass};
use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotState};

/// `(station index, ring side)` — mirrors
/// [`topology::SideRef`](crate::topology::SideRef).
pub type SideRef = (u32, u8);

/// A flit transfer decided this cycle, applied after all stations have
/// stepped (so everyone sees consistent registered state).
#[derive(Debug, Clone, Copy)]
pub struct Send {
    /// Receiving station side (its transit buffer).
    pub to: SideRef,
    /// The flit on the wire.
    pub flit: Flit,
    /// Ring carrying the transfer (for utilization accounting).
    pub ring: u32,
}

/// Flit-movement counts accumulated while stations step one tick: the
/// watchdog consumes `moved`; the tracer (when enabled) consumes all
/// three.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepPulse {
    /// Flits that advanced off a transit buffer or crossing queue
    /// (ejections and queue entries; link transfers are counted by the
    /// send-commit loop).
    pub moved: u64,
    /// Station sides whose ready front flit could not advance this
    /// tick (downstream buffer full, or a full up queue).
    pub blocked: u64,
    /// Packets (counted at their head flit) that entered an IRI
    /// crossing queue, i.e. began changing rings.
    pub crossed: u64,
}

/// Who currently owns an output link. Wormhole switching holds the link
/// from a packet's head flit to its tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LinkOwner {
    /// Link free.
    Idle,
    /// Forwarding a transit packet from the ring buffer.
    Transit,
    /// Injecting a packet that is changing rings (or entering from the
    /// PM), from the queue of the given class.
    Cross(QueueClass),
}

/// What the packet at the front of a transit buffer does at this
/// station.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Disposition {
    /// Continues around the current ring.
    Forward,
    /// Leaves the ring here: ejects to the PM, or enters an IRI
    /// crossing queue.
    Cross,
    /// Consumed in place: the packet needs to change rings here but the
    /// IRI is dead, so its flits are sunk and the packet is accounted
    /// as an explicit drop.
    Sink,
}

/// Routing disposition of the packet currently at the front of a
/// transit buffer: decided once at its head flit, held until the tail.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TransitRoute {
    current: Option<(PacketRef, Disposition)>,
}

impl TransitRoute {
    pub(crate) fn packet(&self) -> Option<PacketRef> {
        self.current.map(|(r, _)| r)
    }

    /// Whether the current front packet leaves the ring at this station
    /// (ejects to the PM, or crosses up/down at an IRI).
    pub(crate) fn crossing(&self) -> bool {
        matches!(self.current, Some((_, Disposition::Cross)))
    }

    /// Whether the current front packet continues around the ring.
    pub(crate) fn forwarding(&self) -> bool {
        matches!(self.current, Some((_, Disposition::Forward)))
    }

    /// Whether the current front packet is being sunk at a dead IRI.
    pub(crate) fn sinking(&self) -> bool {
        matches!(self.current, Some((_, Disposition::Sink)))
    }

    pub(crate) fn set(&mut self, packet: PacketRef, disposition: Disposition) {
        self.current = Some((packet, disposition));
    }

    pub(crate) fn clear(&mut self) {
        self.current = None;
    }
}

impl Snapshot for LinkOwner {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            LinkOwner::Idle => w.u8(0),
            LinkOwner::Transit => w.u8(1),
            LinkOwner::Cross(class) => {
                w.u8(2);
                class.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(LinkOwner::Idle),
            1 => Ok(LinkOwner::Transit),
            2 => Ok(LinkOwner::Cross(QueueClass::load(r)?)),
            t => Err(SnapError::Corrupt(format!("invalid link owner tag {t}"))),
        }
    }
}

impl Snapshot for Disposition {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            Disposition::Forward => 0,
            Disposition::Cross => 1,
            Disposition::Sink => 2,
        });
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(Disposition::Forward),
            1 => Ok(Disposition::Cross),
            2 => Ok(Disposition::Sink),
            t => Err(SnapError::Corrupt(format!("invalid disposition tag {t}"))),
        }
    }
}

impl Snapshot for TransitRoute {
    fn save(&self, w: &mut SnapWriter) {
        self.current.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TransitRoute {
            current: Snapshot::load(r)?,
        })
    }
}

/// A request/response pair of queues (the paper splits every
/// injection-side buffer by class and gives responses priority).
#[derive(Debug, Clone)]
pub(crate) struct ClassQueues<Q> {
    request: Q,
    response: Q,
}

impl<Q> ClassQueues<Q> {
    pub(crate) fn new(request: Q, response: Q) -> Self {
        ClassQueues { request, response }
    }

    pub(crate) fn get(&self, class: QueueClass) -> &Q {
        match class {
            QueueClass::Request => &self.request,
            QueueClass::Response => &self.response,
        }
    }

    pub(crate) fn get_mut(&mut self, class: QueueClass) -> &mut Q {
        match class {
            QueueClass::Request => &mut self.request,
            QueueClass::Response => &mut self.response,
        }
    }

    pub(crate) fn each_mut(&mut self, mut f: impl FnMut(&mut Q)) {
        f(&mut self.response);
        f(&mut self.request);
    }
}

impl<Q: SnapshotState> SnapshotState for ClassQueues<Q> {
    fn save_state(&self, w: &mut SnapWriter) {
        self.response.save_state(w);
        self.request.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.response.restore_state(r)?;
        self.request.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringmesh_net::{NodeId, Packet, PacketKind, PacketStore, TxnId};

    fn some_ref() -> PacketRef {
        let mut store = PacketStore::new();
        store.insert(Packet {
            txn: TxnId::new(0),
            kind: PacketKind::ReadReq,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            flits: 1,
            injected_at: 0,
        })
    }

    #[test]
    fn transit_route_lifecycle() {
        let mut tr = TransitRoute::default();
        assert!(!tr.forwarding() && !tr.crossing() && !tr.sinking());
        let r = some_ref();
        tr.set(r, Disposition::Forward);
        assert!(tr.forwarding());
        assert_eq!(tr.packet(), Some(r));
        tr.set(r, Disposition::Cross);
        assert!(tr.crossing());
        tr.set(r, Disposition::Sink);
        assert!(tr.sinking() && !tr.crossing() && !tr.forwarding());
        tr.clear();
        assert_eq!(tr.packet(), None);
    }

    #[test]
    fn class_queues_route_by_class() {
        let mut q = ClassQueues::new(1u32, 2u32);
        assert_eq!(*q.get(QueueClass::Request), 1);
        assert_eq!(*q.get(QueueClass::Response), 2);
        *q.get_mut(QueueClass::Request) = 10;
        assert_eq!(*q.get(QueueClass::Request), 10);
        let mut seen = Vec::new();
        q.each_mut(|v| seen.push(*v));
        // Response visited first (it has priority everywhere).
        assert_eq!(seen, vec![2, 10]);
    }

    #[test]
    fn link_owner_equality() {
        assert_eq!(LinkOwner::Idle, LinkOwner::Idle);
        assert_ne!(LinkOwner::Transit, LinkOwner::Cross(QueueClass::Request));
        assert_ne!(
            LinkOwner::Cross(QueueClass::Request),
            LinkOwner::Cross(QueueClass::Response)
        );
    }
}
