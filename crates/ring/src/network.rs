//! The hierarchical ring network simulator.

use ringmesh_engine::{StallError, Watchdog};
use ringmesh_faults::{
    ConservationError, ConservationLedger, DropReason, FaultDomain, FaultInjector,
};
use ringmesh_net::{
    Interconnect, LevelUtil, NodeId, Packet, PacketRef, PacketStore, QueueClass, UtilizationReport,
};
use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotState};
use ringmesh_trace::{Counter, EventKind, Gauge, Heatmap, HeatmapId, Probe, TraceLoc, Tracer};

use crate::iri::{Iri, LOWER, UPPER};
use crate::nic::Nic;
use crate::station::{Send, StepPulse};
use crate::topology::{RingAction, RingSpec, RingTopology, StationKind};
use crate::RingConfig;

/// Which concrete component a station id maps to.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Nic(u32),
    Iri(u32),
}

/// A flit-level, cycle-accurate hierarchical ring network.
///
/// Implements [`Interconnect`]; drive it with the `ringmesh-workload`
/// crate or directly as in the example below.
///
/// # Example
///
/// ```
/// use ringmesh_net::{CacheLineSize, Interconnect, NodeId, Packet, PacketFormat, PacketKind, TxnId};
/// use ringmesh_ring::{RingConfig, RingNetwork, RingSpec};
///
/// let spec = RingSpec::single(4);
/// let cfg = RingConfig::new(CacheLineSize::B32);
/// let mut net = RingNetwork::new(&spec, cfg.clone());
/// let kind = PacketKind::ReadReq;
/// net.inject(NodeId::new(0), Packet {
///     txn: TxnId::new(1), kind,
///     src: NodeId::new(0), dst: NodeId::new(2),
///     flits: cfg.format.flits(kind, cfg.cache_line),
///     injected_at: 0,
/// });
/// let mut delivered = Vec::new();
/// while delivered.is_empty() {
///     net.step(&mut delivered).unwrap();
/// }
/// assert_eq!(delivered[0].0, NodeId::new(2));
/// ```
#[derive(Debug)]
pub struct RingNetwork {
    topo: RingTopology,
    cfg: RingConfig,
    store: PacketStore,
    slots: Vec<Slot>,
    nics: Vec<Nic>,
    iris: Vec<Iri>,
    nic_of_pm: Vec<u32>,
    /// Iteration order: every station side, with its fast-domain flag.
    side_order: Vec<(u32, u8, bool)>,
    /// Active-station worklist: `station_active[st]` is false only
    /// while station `st` is provably quiescent (`Nic::quiescent` /
    /// `Iri::quiescent`), letting the tick loop skip idle stations
    /// under light load. Set true again by any arriving flit or local
    /// injection.
    station_active: Vec<bool>,
    /// Registered downstream free-slot count per station side
    /// (`station*2 + side`).
    free: Vec<usize>,
    /// Index into `free` of each side's downstream buffer.
    free_idx: Vec<[usize; 2]>,
    sends: Vec<Send>,
    tick: u64,
    ticks_per_cycle: u64,
    ring_flits: Vec<u64>,
    /// Free transit flit slots per ring (the deadlock-avoidance
    /// credits: ring entry requires at least two remaining).
    ring_credits: Vec<i64>,
    reset_tick: u64,
    watchdog: Watchdog,
    /// Observability sink; disabled (free) unless installed via
    /// [`Interconnect::set_tracer`].
    tracer: Tracer,
    /// Link-utilization heatmap handle (rows = rings, cols = member
    /// position on the ring), registered when a recording tracer is
    /// installed.
    link_heat: Option<HeatmapId>,
    /// Member position of each station side within its ring
    /// (`[station][side]`), for heatmap columns.
    member_idx: Vec<[usize; 2]>,
    /// Fault source; absent in fault-free runs, in which case every
    /// fault query answers "healthy" and behaviour is unchanged.
    faults: Option<FaultInjector>,
    /// Packet-conservation ledger (per-slot tracking on under
    /// `debug_assertions` or the release `--check` pass).
    ledger: ConservationLedger,
    /// Corruption marks by packet-store slot, rolled at injection.
    corrupt: Vec<bool>,
    /// Per-cycle scratch list of dropped packets.
    dropped: Vec<(Packet, DropReason)>,
    /// Per-tick scratch: packets sunk at dead IRIs, pending removal.
    sunk: Vec<PacketRef>,
}

impl RingNetwork {
    /// Builds the network for `spec` under `cfg`.
    pub fn new(spec: &RingSpec, cfg: RingConfig) -> Self {
        let topo = RingTopology::new(spec);
        let n_st = topo.num_stations();
        let mut slots = Vec::with_capacity(n_st);
        let mut nics = Vec::new();
        let mut iris = Vec::new();
        let mut nic_of_pm = vec![0u32; topo.num_pms() as usize];
        let buf_flits = cfg.ring_buffer_flits();
        let up_q_flits = cfg.iri_queue_flits();
        let down_q_flits = cfg.iri_down_queue_flits();
        for st in 0..n_st as u32 {
            match topo.station(st) {
                StationKind::Nic { pm } => {
                    nic_of_pm[pm.index()] = nics.len() as u32;
                    slots.push(Slot::Nic(nics.len() as u32));
                    nics.push(Nic::new(
                        pm,
                        topo.ring_of(st, 0),
                        topo.next_of(st, 0),
                        buf_flits,
                        cfg.out_queue_packets,
                    ));
                }
                StationKind::Iri { subtree } => {
                    slots.push(Slot::Iri(iris.len() as u32));
                    iris.push(Iri::new(
                        subtree,
                        [topo.ring_of(st, 0), topo.ring_of(st, 1)],
                        [topo.next_of(st, 0), topo.next_of(st, 1)],
                        buf_flits,
                        up_q_flits,
                        down_q_flits,
                        cfg.convoy_threshold_packets
                            .saturating_mul(cfg.format.cl_packet_flits(cfg.cache_line) as usize),
                    ));
                }
            }
        }
        let fast_ring = |ring: u32| cfg.global_ring_speedup == 2 && ring == 0;
        let mut side_order = Vec::new();
        let mut free_idx = vec![[0usize; 2]; n_st];
        for st in 0..n_st as u32 {
            let sides: &[u8] = match topo.station(st) {
                StationKind::Nic { .. } => &[0],
                StationKind::Iri { .. } => &[0, 1],
            };
            for &side in sides {
                side_order.push((st, side, fast_ring(topo.ring_of(st, side))));
                let (dst, dside) = topo.next_of(st, side);
                free_idx[st as usize][side as usize] = dst as usize * 2 + dside as usize;
            }
        }
        let ticks_per_cycle = if cfg.global_ring_speedup == 2 { 2 } else { 1 };
        let num_rings = topo.num_rings();
        let ring_credits: Vec<i64> = (0..num_rings as u32)
            .map(|r| (topo.ring(r).members.len() * buf_flits) as i64)
            .collect();
        let mut member_idx = vec![[0usize; 2]; n_st];
        for (_rid, ring) in topo.rings() {
            for (m, &(st, side)) in ring.members.iter().enumerate() {
                member_idx[st as usize][side as usize] = m;
            }
        }
        let horizon = cfg.watchdog_horizon;
        RingNetwork {
            topo,
            cfg,
            store: PacketStore::new(),
            slots,
            nics,
            iris,
            nic_of_pm,
            side_order,
            station_active: vec![true; n_st],
            free: vec![buf_flits; n_st * 2],
            free_idx,
            sends: Vec::new(),
            tick: 0,
            ticks_per_cycle,
            ring_flits: vec![0; num_rings],
            ring_credits,
            reset_tick: 0,
            watchdog: Watchdog::new(horizon),
            tracer: Tracer::off(),
            link_heat: None,
            member_idx,
            faults: None,
            ledger: ConservationLedger::new(cfg!(debug_assertions)),
            corrupt: Vec::new(),
            dropped: Vec::new(),
            sunk: Vec::new(),
        }
    }

    /// The expanded topology.
    pub fn topology(&self) -> &RingTopology {
        &self.topo
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// Dumps per-station buffer occupancies and link-owner states for
    /// deadlock debugging. Not part of the stable API.
    #[doc(hidden)]
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (i, nic) in self.nics.iter().enumerate() {
            if !nic.ring_buf().is_empty() || !nic.debug_idle() {
                writeln!(
                    s,
                    "nic{i} pm={} buf={} {}",
                    nic.pm(),
                    nic.ring_buf().len(),
                    nic.debug_state()
                )
                .ok();
            }
        }
        for (i, iri) in self.iris.iter().enumerate() {
            writeln!(s, "iri{i} {}", iri.debug_state()).ok();
        }
        s
    }

    /// Clock multiplier of ring `ring` (2 for a double-speed global
    /// ring, else 1).
    fn ring_speed(&self, ring: u32) -> u64 {
        if self.cfg.global_ring_speedup == 2 && ring == 0 {
            2
        } else {
            1
        }
    }

    /// Whether station `st` is a dead IRI.
    fn iri_dead(&self, f: &FaultInjector, st: u32) -> bool {
        match self.slots[st as usize] {
            Slot::Iri(x) => f.node_dead(x),
            Slot::Nic(_) => false,
        }
    }

    /// Whether a live route exists from `src`'s NIC to `dst`. Ring
    /// routing is deterministic, so this walks the unique route and
    /// fails at the first dead IRI the packet would have to cross;
    /// forwarding *through* a dead IRI is still allowed (lazy
    /// fail-stop: the crossbar keeps switching, only the crossing
    /// queues are gone).
    fn path_alive(&self, src: NodeId, dst: NodeId) -> bool {
        let Some(f) = self.faults.as_ref() else {
            return true;
        };
        if !f.any_nodes_dead() {
            return true;
        }
        let mut pos = self.topo.next_of(self.topo.nic_of(src), 0);
        let bound = self.topo.num_stations() * 2 + 4;
        for _ in 0..bound {
            let (st, side) = pos;
            match self.topo.action(st, side, dst) {
                RingAction::Eject => return true,
                RingAction::Forward => pos = self.topo.next_of(st, side),
                RingAction::Up => {
                    if self.iri_dead(f, st) {
                        return false;
                    }
                    pos = self.topo.next_of(st, 1);
                }
                RingAction::Down => {
                    if self.iri_dead(f, st) {
                        return false;
                    }
                    pos = self.topo.next_of(st, 0);
                }
            }
        }
        unreachable!("routing walk did not terminate");
    }

    fn run_tick(&mut self, delivered: &mut Vec<(NodeId, Packet)>, pulse: &mut StepPulse) {
        let now = self.tick;
        let cycle_now = now / self.ticks_per_cycle;
        // With a double-speed global ring the kernel ticks twice per
        // cycle: every station runs on even ticks; only the fast
        // (global-ring) sides also run on odd ticks.
        let all_active = now.is_multiple_of(self.ticks_per_cycle);
        self.sends.clear();
        for i in 0..self.side_order.len() {
            let (st, side, fast) = self.side_order[i];
            if !(all_active || fast) {
                continue;
            }
            // Skip provably-idle stations; a skipped step is a no-op by
            // construction (see `Nic::quiescent`/`Iri::quiescent`), so
            // the tick stream is identical to stepping everything.
            if !self.station_active[st as usize] {
                continue;
            }
            let free_out = self.free[self.free_idx[st as usize][side as usize]];
            // Fault view for this side: the output link `station*2 +
            // side`, and (for IRIs) whether the interface is dead.
            let link_up = self
                .faults
                .as_ref()
                .is_none_or(|f| f.link_up(st * 2 + side as u32, cycle_now));
            match self.slots[st as usize] {
                Slot::Nic(n) => {
                    self.nics[n as usize].step(
                        now,
                        link_up,
                        free_out,
                        &mut self.ring_credits,
                        &self.corrupt,
                        &mut self.ledger,
                        &mut self.store,
                        &mut self.sends,
                        delivered,
                        &mut self.dropped,
                        pulse,
                    );
                    if self.nics[n as usize].quiescent() {
                        self.station_active[st as usize] = false;
                    }
                }
                Slot::Iri(x) => {
                    let dead = self.faults.as_ref().is_some_and(|f| f.node_dead(x));
                    self.iris[x as usize].step_side(
                        side as usize,
                        now,
                        link_up,
                        dead,
                        free_out,
                        &mut self.ring_credits,
                        &self.store,
                        &mut self.sends,
                        &mut self.sunk,
                        pulse,
                    );
                    if self.iris[x as usize].quiescent() {
                        self.station_active[st as usize] = false;
                    }
                }
            }
        }
        // Retire packets sunk at dead IRIs this tick: their flits were
        // consumed in place, so only the bookkeeping remains.
        if !self.sunk.is_empty() {
            for i in 0..self.sunk.len() {
                let r = self.sunk[i];
                let slot = r.slot();
                let pkt = self.store.remove(r);
                self.ledger.complete(slot, true);
                self.dropped.push((pkt, DropReason::DeadInterface));
            }
            self.sunk.clear();
        }
        // Commit the wire transfers decided this tick.
        for i in 0..self.sends.len() {
            let s = self.sends[i];
            let (st, side) = s.to;
            match self.slots[st as usize] {
                Slot::Nic(n) => self.nics[n as usize].ring_buf_mut().push(s.flit, now),
                Slot::Iri(x) => self.iris[x as usize]
                    .buf_mut(side as usize)
                    .push(s.flit, now),
            }
            self.station_active[st as usize] = true;
            self.ring_flits[s.ring as usize] += 1;
        }
        pulse.moved += self.sends.len() as u64;
        if self.tracer.is_enabled() {
            self.trace_sends(now);
        }
        // Latch registered flow-control state for the next tick.
        for st in 0..self.slots.len() {
            match self.slots[st] {
                Slot::Nic(n) => {
                    self.free[st * 2] = self.nics[n as usize].latch();
                }
                Slot::Iri(x) => {
                    let (lo, up) = self.iris[x as usize].latch();
                    self.free[st * 2 + LOWER] = lo;
                    self.free[st * 2 + UPPER] = up;
                }
            }
        }
        self.tick += 1;
        #[cfg(debug_assertions)]
        self.check_credit_invariant();
    }

    /// Tracing for the wire transfers committed this tick: one heatmap
    /// bump per link transfer, one Hop event per sampled head flit.
    /// Only called while the tracer is enabled.
    fn trace_sends(&mut self, now: u64) {
        let cycle = now / self.ticks_per_cycle;
        self.tracer
            .count(Counter::FlitsForwarded, self.sends.len() as u64);
        for i in 0..self.sends.len() {
            let s = self.sends[i];
            let (st, side) = s.to;
            if let Some(id) = self.link_heat {
                let col = self.member_idx[st as usize][side as usize];
                self.tracer.heatmap(id, s.ring as usize, col, 1);
            }
            if s.flit.is_head() {
                let txn = self.store.get(s.flit.packet).txn.raw();
                self.tracer.event(
                    txn,
                    cycle,
                    TraceLoc::RingStation {
                        ring: s.ring,
                        station: st,
                    },
                    EventKind::Hop,
                );
            }
        }
    }

    /// Debug-only: the credit counters must equal each ring's actual
    /// free transit-buffer slots.
    #[cfg(debug_assertions)]
    fn check_credit_invariant(&self) {
        for (rid, ring) in self.topo.rings() {
            let mut occupied = 0usize;
            for &(st, side) in &ring.members {
                occupied += match self.slots[st as usize] {
                    Slot::Nic(n) => self.nics[n as usize].ring_buf().len(),
                    Slot::Iri(x) => self.iris[x as usize].buf(side as usize).len(),
                };
            }
            // Credits equal capacity minus occupancy minus slots still
            // reserved by in-progress entries, so they are bounded by
            // the actual free count and must never hit zero.
            let cap = ring.members.len() * self.cfg.ring_buffer_flits();
            let free = cap as i64 - occupied as i64;
            let c = self.ring_credits[rid as usize];
            assert!(
                c >= 1 && c <= free,
                "ring {rid} credit corruption at tick {}: credits={c} free={free}",
                self.tick
            );
        }
    }
}

impl Interconnect for RingNetwork {
    fn num_pms(&self) -> usize {
        self.topo.num_pms() as usize
    }

    fn cycle(&self) -> u64 {
        self.tick / self.ticks_per_cycle
    }

    fn can_inject(&self, pm: NodeId, class: QueueClass) -> bool {
        self.nics[self.nic_of_pm[pm.index()] as usize].can_accept(class)
    }

    /// The hierarchical ring kernel is deliberately serial: ring-entry
    /// credits (`ring_credits`) are read *and* decremented mid-tick as
    /// the `side_order` sweep progresses, and an IRI's two sides share
    /// its up/down crossing queues with unregistered (same-tick) reads,
    /// so every station on a ring belongs to one connected dependency
    /// component. Sharding it would change arbitration outcomes and
    /// break byte-identity, so the request is ignored (the mesh kernel
    /// in `crates/mesh` is the parallel one).
    fn set_kernel_threads(&mut self, threads: usize) {
        let _ = threads;
    }

    fn kernel_threads(&self) -> usize {
        1
    }

    fn inject(&mut self, pm: NodeId, packet: Packet) {
        assert_eq!(packet.src, pm, "packet injected at the wrong PM");
        assert_ne!(packet.src, packet.dst, "local accesses bypass the network");
        assert!(
            packet.dst.index() < self.num_pms(),
            "destination {} out of range",
            packet.dst
        );
        let class = QueueClass::of(packet.kind);
        if !self.path_alive(pm, packet.dst) {
            // Fail fast at injection when a dead IRI cuts the only
            // route: the packet could never be delivered.
            if let Some(f) = &mut self.faults {
                f.record_drop(DropReason::Unreachable);
            }
            self.ledger.refuse();
            if self.tracer.is_enabled() {
                self.tracer.count(Counter::PacketsDropped, 1);
            }
            return;
        }
        if self.tracer.is_enabled() {
            self.tracer.count(Counter::PacketsInjected, 1);
            self.tracer.event(
                packet.txn.raw(),
                self.cycle(),
                TraceLoc::Pm {
                    pm: pm.index() as u32,
                },
                EventKind::Inject {
                    src: packet.src.index() as u32,
                    dst: packet.dst.index() as u32,
                    flits: packet.flits,
                },
            );
        }
        let r = self.store.insert(packet);
        self.ledger.inject(r.slot());
        if let Some(f) = &mut self.faults {
            // Roll the corruption coin now; slots are reused, so the
            // mark must be (re)written on every insert.
            let bad = f.roll_corrupt();
            if self.corrupt.len() <= r.slot() {
                self.corrupt.resize(r.slot() + 1, false);
            }
            self.corrupt[r.slot()] = bad;
        }
        self.nics[self.nic_of_pm[pm.index()] as usize].enqueue(class, r);
        self.station_active[self.topo.nic_of(pm) as usize] = true;
    }

    fn step(&mut self, delivered: &mut Vec<(NodeId, Packet)>) -> Result<(), StallError> {
        let enabled = self.tracer.is_enabled();
        let mark = delivered.len();
        let cycle0 = self.cycle();
        if enabled {
            self.tracer.cycle(cycle0);
        }
        let mut pulse = StepPulse::default();
        if let Some(f) = &mut self.faults {
            f.advance(cycle0);
        }
        for _ in 0..self.ticks_per_cycle {
            self.run_tick(delivered, &mut pulse);
        }
        if !self.dropped.is_empty() {
            if enabled {
                self.tracer
                    .count(Counter::PacketsDropped, self.dropped.len() as u64);
            }
            if let Some(f) = &mut self.faults {
                for &(_, reason) in &self.dropped {
                    f.record_drop(reason);
                }
            }
            self.dropped.clear();
        }
        if enabled {
            self.tracer.count(Counter::BlockedCycles, pulse.blocked);
            self.tracer.count(Counter::IriCrossings, pulse.crossed);
            let newly = &delivered[mark..];
            if !newly.is_empty() {
                self.tracer
                    .count(Counter::PacketsDelivered, newly.len() as u64);
                for (pm, pkt) in newly {
                    self.tracer.event(
                        pkt.txn.raw(),
                        cycle0,
                        TraceLoc::Pm {
                            pm: pm.index() as u32,
                        },
                        EventKind::Eject,
                    );
                }
            }
            // Split-borrow dance: probe reads &self while writing the
            // tracer, so temporarily take the tracer out.
            let mut t = std::mem::take(&mut self.tracer);
            self.probe(&mut t);
            self.tracer = t;
        }
        #[cfg(debug_assertions)]
        {
            let (inj, del, drp) = self.ledger.counts();
            assert_eq!(inj, del + drp + self.store.live(), "conservation identity");
        }
        let cycle = self.cycle();
        self.watchdog.observe(cycle, pulse.moved, self.store.live());
        self.watchdog.check(cycle)
    }

    fn in_flight(&self) -> u64 {
        self.store.live()
    }

    fn utilization(&self) -> UtilizationReport {
        let cycles = (self.tick - self.reset_tick) / self.ticks_per_cycle;
        if cycles == 0 {
            return UtilizationReport::default();
        }
        // Aggregate busy link-cycles and capacity per hierarchy depth.
        let levels = self.topo.levels();
        let mut busy = vec![0u64; levels];
        let mut cap = vec![0u64; levels];
        for (rid, ring) in self.topo.rings() {
            let d = ring.depth as usize;
            busy[d] += self.ring_flits[rid as usize];
            cap[d] += ring.members.len() as u64 * cycles * self.ring_speed(rid);
        }
        let mut report = UtilizationReport {
            overall: busy.iter().sum::<u64>() as f64 / cap.iter().sum::<u64>().max(1) as f64,
            levels: Vec::new(),
        };
        for d in 0..levels {
            report.levels.push(LevelUtil {
                label: self.topo.depth_label(d as u32),
                utilization: busy[d] as f64 / cap[d].max(1) as f64,
            });
        }
        report
    }

    fn reset_counters(&mut self) {
        self.ring_flits.iter_mut().for_each(|c| *c = 0);
        self.reset_tick = self.tick;
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        if self.tracer.is_enabled() {
            let rows = self.topo.num_rings();
            let cols = self
                .topo
                .rings()
                .map(|(_, r)| r.members.len())
                .max()
                .unwrap_or(0);
            self.link_heat = self.tracer.add_heatmap(Heatmap::new(
                "flits forwarded per ring link",
                "ring",
                "member",
                rows,
                cols,
            ));
        }
    }

    fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        if self.tracer.is_enabled() {
            Some(&mut self.tracer)
        } else {
            None
        }
    }

    fn take_tracer(&mut self) -> Option<Tracer> {
        if self.tracer.is_enabled() {
            Some(std::mem::take(&mut self.tracer))
        } else {
            None
        }
    }

    fn fault_domain(&self) -> FaultDomain {
        FaultDomain {
            // Directed ring link out of `station*2 + side`; NIC
            // stations use side 0 only, so side-1 events at a NIC are
            // addressable no-ops.
            links: self.topo.num_stations() as u32 * 2,
            nodes: self.iris.len() as u32,
        }
    }

    fn set_faults(&mut self, injector: FaultInjector, check: bool) {
        self.faults = Some(injector);
        if check && !self.ledger.tracking() {
            self.ledger.set_tracking(true);
        }
    }

    fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    fn take_faults(&mut self) -> Option<FaultInjector> {
        self.faults.take()
    }

    fn verify_conservation(&self) -> Result<(), ConservationError> {
        self.ledger.verify(self.store.live())
    }

    fn conservation_counts(&self) -> Option<(u64, u64, u64)> {
        Some(self.ledger.counts())
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        if self.faults.is_some() {
            return Err(SnapError::Mismatch(
                "checkpointing with fault injection installed is not supported".into(),
            ));
        }
        self.store.save(w);
        w.usize(self.nics.len());
        for nic in &self.nics {
            nic.save_state(w);
        }
        w.usize(self.iris.len());
        for iri in &self.iris {
            iri.save_state(w);
        }
        self.station_active.save(w);
        self.free.save(w);
        w.u64(self.tick);
        self.ring_flits.save(w);
        self.ring_credits.save(w);
        w.u64(self.reset_tick);
        self.watchdog.save_state(w);
        self.ledger.save_state(w);
        self.corrupt.save(w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if self.faults.is_some() {
            return Err(SnapError::Mismatch(
                "restoring into a network with fault injection installed is not supported".into(),
            ));
        }
        let mismatch = |what: &str, got: usize, want: usize| {
            SnapError::Mismatch(format!("{what}: snapshot has {got}, network has {want}"))
        };
        self.store = PacketStore::load(r)?;
        let n_nics = r.usize()?;
        if n_nics != self.nics.len() {
            return Err(mismatch("NIC count", n_nics, self.nics.len()));
        }
        for nic in &mut self.nics {
            nic.restore_state(r)?;
        }
        let n_iris = r.usize()?;
        if n_iris != self.iris.len() {
            return Err(mismatch("IRI count", n_iris, self.iris.len()));
        }
        for iri in &mut self.iris {
            iri.restore_state(r)?;
        }
        let station_active: Vec<bool> = Snapshot::load(r)?;
        if station_active.len() != self.station_active.len() {
            return Err(mismatch(
                "station count",
                station_active.len(),
                self.station_active.len(),
            ));
        }
        self.station_active = station_active;
        let free: Vec<usize> = Snapshot::load(r)?;
        if free.len() != self.free.len() {
            return Err(mismatch(
                "free-slot table size",
                free.len(),
                self.free.len(),
            ));
        }
        self.free = free;
        self.tick = r.u64()?;
        let ring_flits: Vec<u64> = Snapshot::load(r)?;
        if ring_flits.len() != self.ring_flits.len() {
            return Err(mismatch(
                "ring count",
                ring_flits.len(),
                self.ring_flits.len(),
            ));
        }
        self.ring_flits = ring_flits;
        let ring_credits: Vec<i64> = Snapshot::load(r)?;
        if ring_credits.len() != self.ring_credits.len() {
            return Err(mismatch(
                "ring-credit table size",
                ring_credits.len(),
                self.ring_credits.len(),
            ));
        }
        self.ring_credits = ring_credits;
        self.reset_tick = r.u64()?;
        self.watchdog.restore_state(r)?;
        self.ledger.restore_state(r)?;
        self.corrupt = Snapshot::load(r)?;
        // Per-cycle scratch is always empty between steps.
        self.sends.clear();
        self.dropped.clear();
        self.sunk.clear();
        Ok(())
    }
}

impl Probe for RingNetwork {
    /// Publishes occupancy gauges: flits sitting in station transit
    /// buffers, flits queued at IRIs, and live packets.
    fn probe(&self, t: &mut Tracer) {
        let nic_flits: usize = self.nics.iter().map(|n| n.ring_buf().len()).sum();
        let iri_flits: usize = self.iris.iter().map(|i| i.occupancy()).sum();
        let queued: usize = self.iris.iter().map(|i| i.queue_flits()).sum();
        t.gauge(Gauge::RingBufferOccupancy, (nic_flits + iri_flits) as f64);
        t.gauge(Gauge::IriQueueOccupancy, queued as f64);
        t.gauge(Gauge::InFlightPackets, self.store.live() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringmesh_net::{CacheLineSize, PacketKind, TxnId};

    fn packet(cfg: &RingConfig, txn: u64, kind: PacketKind, src: u32, dst: u32) -> Packet {
        Packet {
            txn: TxnId::new(txn),
            kind,
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            flits: cfg.format.flits(kind, cfg.cache_line),
            injected_at: 0,
        }
    }

    fn deliver_all(net: &mut RingNetwork, expect: usize, max_cycles: u64) -> Vec<(NodeId, Packet)> {
        let mut out = Vec::new();
        for _ in 0..max_cycles {
            net.step(&mut out).unwrap();
            if out.len() >= expect {
                return out;
            }
        }
        panic!(
            "only {} of {expect} packets delivered in {max_cycles} cycles",
            out.len()
        );
    }

    #[test]
    fn single_flit_packet_takes_hop_count_cycles() {
        let cfg = RingConfig::new(CacheLineSize::B32);
        let spec = RingSpec::single(4);
        let mut net = RingNetwork::new(&spec, cfg.clone());
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 2));
        let mut delivered = Vec::new();
        let mut cycles = 0;
        while delivered.is_empty() {
            net.step(&mut delivered).unwrap();
            cycles += 1;
            assert!(cycles < 100);
        }
        // hops(0,2) = 2 on a 4-ring; add one cycle for ejection at the
        // destination NIC: the head flit leaves in the injection cycle.
        let hops = net.topology().hops(NodeId::new(0), NodeId::new(2)) as u64;
        assert_eq!(cycles, hops + 1);
    }

    #[test]
    fn multi_flit_packet_adds_serialization_latency() {
        let cfg = RingConfig::new(CacheLineSize::B128); // 9-flit responses
        let spec = RingSpec::single(4);
        let mut net = RingNetwork::new(&spec, cfg.clone());
        let p = packet(&cfg, 1, PacketKind::ReadResp, 0, 1);
        assert_eq!(p.flits, 9);
        net.inject(NodeId::new(0), p);
        let mut delivered = Vec::new();
        let mut cycles = 0;
        while delivered.is_empty() {
            net.step(&mut delivered).unwrap();
            cycles += 1;
            assert!(cycles < 100);
        }
        // hops + ejection + (flits - 1) pipeline fill.
        assert_eq!(cycles, 1 + 1 + 8);
    }

    #[test]
    fn crosses_ring_hierarchy() {
        let cfg = RingConfig::new(CacheLineSize::B32);
        let spec: RingSpec = "2:3".parse().unwrap();
        let mut net = RingNetwork::new(&spec, cfg.clone());
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 5));
        let got = deliver_all(&mut net, 1, 200);
        assert_eq!(got[0].0, NodeId::new(5));
        assert_eq!(got[0].1.txn, TxnId::new(1));
    }

    #[test]
    fn all_pairs_delivered_three_levels() {
        let cfg = RingConfig::new(CacheLineSize::B16);
        let spec: RingSpec = "2:2:3".parse().unwrap();
        let p = spec.num_pms();
        let mut net = RingNetwork::new(&spec, cfg.clone());
        let mut expected = 0;
        let mut txn = 0;
        for s in 0..p {
            for d in 0..p {
                if s != d && net.can_inject(NodeId::new(s), QueueClass::Request) {
                    txn += 1;
                    net.inject(NodeId::new(s), packet(&cfg, txn, PacketKind::ReadReq, s, d));
                    expected += 1;
                }
            }
        }
        assert!(expected >= p as usize as u32, "some injections must fit");
        let got = deliver_all(&mut net, expected as usize, 5_000);
        assert_eq!(got.len(), expected as usize);
    }

    #[test]
    fn zero_load_latency_matches_hops_prediction_across_hierarchy() {
        let cfg = RingConfig::new(CacheLineSize::B32);
        let spec: RingSpec = "2:3:4".parse().unwrap();
        for (src, dst) in [(0u32, 1u32), (0, 11), (0, 12), (5, 20), (23, 0)] {
            let mut net = RingNetwork::new(&spec, cfg.clone());
            net.inject(
                NodeId::new(src),
                packet(&cfg, 1, PacketKind::ReadReq, src, dst),
            );
            let mut delivered = Vec::new();
            let mut cycles = 0u64;
            while delivered.is_empty() {
                net.step(&mut delivered).unwrap();
                cycles += 1;
                assert!(cycles < 1000);
            }
            let hops = net.topology().hops(NodeId::new(src), NodeId::new(dst)) as u64;
            let crossings =
                net.topology()
                    .iri_crossings(NodeId::new(src), NodeId::new(dst)) as u64;
            assert_eq!(cycles, hops + crossings + 1, "src={src} dst={dst}");
        }
    }

    #[test]
    fn response_beats_request_at_injection() {
        let cfg = RingConfig::new(CacheLineSize::B32);
        let spec = RingSpec::single(4);
        let mut net = RingNetwork::new(&spec, cfg.clone());
        // Queue a request and a response at PM0 in the same cycle; the
        // response (3 flits) must be fully delivered before the request.
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 2));
        net.inject(NodeId::new(0), packet(&cfg, 2, PacketKind::ReadResp, 0, 2));
        let got = deliver_all(&mut net, 2, 100);
        assert_eq!(got[0].1.txn, TxnId::new(2), "response first");
        assert_eq!(got[1].1.txn, TxnId::new(1));
    }

    #[test]
    fn utilization_counts_only_after_reset() {
        let cfg = RingConfig::new(CacheLineSize::B32);
        let spec = RingSpec::single(4);
        let mut net = RingNetwork::new(&spec, cfg.clone());
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 3));
        let _ = deliver_all(&mut net, 1, 50);
        let before = net.utilization();
        assert!(before.overall > 0.0);
        net.reset_counters();
        let mut sink = Vec::new();
        for _ in 0..10 {
            net.step(&mut sink).unwrap();
        }
        let after = net.utilization();
        assert_eq!(after.overall, 0.0);
    }

    #[test]
    fn double_speed_global_ring_is_faster_across_rings() {
        let spec: RingSpec = "3:3:4".parse().unwrap();
        let mk = |speedup| {
            let cfg = RingConfig::new(CacheLineSize::B32).with_global_speedup(speedup);
            RingNetwork::new(&spec, cfg)
        };
        let cfg = RingConfig::new(CacheLineSize::B32);
        // PM 0 -> PM 35 crosses the global ring.
        let fly = |mut net: RingNetwork| -> u64 {
            net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 35));
            let mut delivered = Vec::new();
            let mut cycles = 0;
            while delivered.is_empty() {
                net.step(&mut delivered).unwrap();
                cycles += 1;
                assert!(cycles < 1000);
            }
            cycles
        };
        let normal = fly(mk(1));
        let fast = fly(mk(2));
        assert!(
            fast < normal,
            "double-speed global ring should cut latency: {fast} !< {normal}"
        );
    }

    #[test]
    fn conservation_no_packet_lost_or_duplicated() {
        let cfg = RingConfig::new(CacheLineSize::B64);
        let spec: RingSpec = "3:6".parse().unwrap();
        let mut net = RingNetwork::new(&spec, cfg.clone());
        let p = spec.num_pms();
        let mut injected = Vec::new();
        let mut txn = 0u64;
        // Inject a wave, run, inject another wave.
        for round in 0..5u32 {
            for s in 0..p {
                let d = (s + 1 + round) % p;
                if d != s && net.can_inject(NodeId::new(s), QueueClass::Request) {
                    txn += 1;
                    net.inject(NodeId::new(s), packet(&cfg, txn, PacketKind::ReadReq, s, d));
                    injected.push(txn);
                }
            }
            let mut sink = Vec::new();
            for _ in 0..30 {
                net.step(&mut sink).unwrap();
            }
        }
        let mut out = Vec::new();
        for _ in 0..2000 {
            net.step(&mut out).unwrap();
            if net.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(net.in_flight(), 0, "network must drain");
        // Count all deliveries across rounds: re-run is awkward, so just
        // check the final drain saw the remainder and nothing twice.
        let mut seen: Vec<u64> = out.iter().map(|(_, p)| p.txn.raw()).collect();
        seen.sort_unstable();
        let before = seen.len();
        seen.dedup();
        assert_eq!(seen.len(), before, "duplicate deliveries");
    }

    use ringmesh_faults::{FaultEvent, FaultKind, FaultSchedule};

    fn install(net: &mut RingNetwork, events: Vec<FaultEvent>, corrupt: f64) {
        let schedule = FaultSchedule::from_events(7, corrupt, events);
        let domain = net.fault_domain();
        net.set_faults(FaultInjector::new(&schedule, domain), true);
    }

    #[test]
    fn dead_iri_sinks_cross_traffic_in_flight() {
        let cfg = RingConfig::new(CacheLineSize::B32);
        let spec: RingSpec = "2:3".parse().unwrap();
        let mut net = RingNetwork::new(&spec, cfg.clone());
        // IRI 0 joins subtree [0,3) to the global ring; kill it after
        // the packet below is already on its way.
        install(
            &mut net,
            vec![FaultEvent {
                at: 1,
                kind: FaultKind::NodeDead { node: 0 },
            }],
            0.0,
        );
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 5));
        let mut out = Vec::new();
        for _ in 0..200 {
            net.step(&mut out).unwrap();
            if net.in_flight() == 0 {
                break;
            }
        }
        assert!(out.is_empty(), "cross-ring packet must not be delivered");
        assert_eq!(net.in_flight(), 0, "sunk worm must fully drain");
        net.verify_conservation().unwrap();
        assert_eq!(net.faults().unwrap().report().drops.dead_interface, 1);
    }

    #[test]
    fn dead_iri_refuses_new_cross_traffic_but_local_flows() {
        let cfg = RingConfig::new(CacheLineSize::B32);
        let spec: RingSpec = "2:3".parse().unwrap();
        let mut net = RingNetwork::new(&spec, cfg.clone());
        install(
            &mut net,
            vec![FaultEvent {
                at: 0,
                kind: FaultKind::NodeDead { node: 0 },
            }],
            0.0,
        );
        // One step applies the cycle-0 death before any injection.
        let mut out = Vec::new();
        net.step(&mut out).unwrap();
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 5));
        net.inject(NodeId::new(0), packet(&cfg, 2, PacketKind::ReadReq, 0, 1));
        for _ in 0..100 {
            net.step(&mut out).unwrap();
            if net.in_flight() == 0 && out.len() == 1 {
                break;
            }
        }
        assert_eq!(out.len(), 1, "only the intra-ring packet arrives");
        assert_eq!(out[0].1.txn, TxnId::new(2));
        net.verify_conservation().unwrap();
        assert_eq!(net.faults().unwrap().report().drops.unreachable, 1);
    }

    #[test]
    fn transient_link_down_delays_but_loses_nothing() {
        let cfg = RingConfig::new(CacheLineSize::B32);
        let spec = RingSpec::single(4);
        let fly = |events: Vec<FaultEvent>| -> u64 {
            let mut net = RingNetwork::new(&spec, cfg.clone());
            install(&mut net, events, 0.0);
            net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 2));
            let mut out = Vec::new();
            let mut cycles = 0u64;
            while out.is_empty() {
                net.step(&mut out).unwrap();
                cycles += 1;
                assert!(cycles < 300, "packet lost behind a downed link");
            }
            net.verify_conservation().unwrap();
            cycles
        };
        let base = fly(Vec::new());
        // Down PM0's NIC output link (station 0, side 0 => link 0).
        let slow = fly(vec![FaultEvent {
            at: 0,
            kind: FaultKind::LinkDown { link: 0, until: 50 },
        }]);
        assert!(slow >= 50, "delivery must wait out the outage: {slow}");
        assert!(base < slow);
    }

    #[test]
    fn corruption_drops_at_ejection() {
        let cfg = RingConfig::new(CacheLineSize::B32);
        let spec = RingSpec::single(4);
        let mut net = RingNetwork::new(&spec, cfg.clone());
        install(&mut net, Vec::new(), 1.0);
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 2));
        let mut out = Vec::new();
        for _ in 0..100 {
            net.step(&mut out).unwrap();
            if net.in_flight() == 0 {
                break;
            }
        }
        assert!(out.is_empty(), "corrupted packet must be dropped");
        assert_eq!(net.in_flight(), 0);
        net.verify_conservation().unwrap();
        let report = net.faults().unwrap().report();
        assert_eq!(report.drops.corrupted, 1);
        assert_eq!(report.corrupt_marked, 1);
    }

    #[test]
    fn installed_but_empty_schedule_changes_nothing() {
        let cfg = RingConfig::new(CacheLineSize::B32);
        let spec: RingSpec = "2:3".parse().unwrap();
        let fly = |faulty: bool| -> u64 {
            let mut net = RingNetwork::new(&spec, cfg.clone());
            if faulty {
                install(&mut net, Vec::new(), 0.0);
            }
            net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 5));
            let mut out = Vec::new();
            let mut cycles = 0u64;
            while out.is_empty() {
                net.step(&mut out).unwrap();
                cycles += 1;
                assert!(cycles < 300);
            }
            cycles
        };
        assert_eq!(fly(false), fly(true));
    }
}
