//! Configuration of the hierarchical ring network model.

use ringmesh_net::{CacheLineSize, PacketFormat};

/// Tunable parameters of a [`RingNetwork`](crate::RingNetwork).
///
/// Defaults reproduce the paper's setup: cache-line-sized ring and IRI
/// buffers, single-packet injection queues per traffic class, all rings
/// at the same clock. Set [`global_ring_speedup`] to 2 for the §6
/// double-speed global ring experiments.
///
/// [`global_ring_speedup`]: RingConfig::global_ring_speedup
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingConfig {
    /// Cache line size; determines packet and buffer sizes.
    pub cache_line: CacheLineSize,
    /// Packet format (header flits and flit width). Defaults to the
    /// 128-bit-channel ring format.
    pub format: PacketFormat,
    /// NIC output queue capacity per class, in packets (paper: 1).
    pub out_queue_packets: usize,
    /// IRI *up* (child→parent) queue capacity per class, in cache-line
    /// packets. `Some(2)` (the default) keeps the paper's finite,
    /// back-pressured design — whose pacing realises nearly the full
    /// bisection bandwidth — with one packet of slack beyond the
    /// paper's single-packet buffers, which deadlock under wormhole
    /// switching even inside the paper's parameter space. Set `None`
    /// for elastic up queues (~30% lower saturated throughput; see the
    /// `ablations` bench).
    ///
    /// The *down* (parent→child) queues are always elastic: descending
    /// traffic only moves toward the leaves, where NIC ejection is
    /// unconditional, so elastic down queues cannot grow without bound
    /// — and they are what makes the hierarchy deadlock-free. With
    /// finite down queues a descending worm can stall in its parent
    /// ring's transit buffer while the queue's drain waits on ring
    /// credits held by ascending traffic, closing a cross-level cycle
    /// (observed at e.g. T = 8 on 4:3:6 with a double-speed global
    /// ring). See DESIGN.md "Model fidelity notes".
    pub iri_queue_packets: Option<usize>,
    /// Transit (ring) buffer depth, in maximum-size packets (see
    /// [`ring_buffer_flits`](RingConfig::ring_buffer_flits)).
    pub ring_buffer_packets: usize,
    /// Convoy-control threshold: when an IRI's crossing queues for one
    /// output link hold more than this many maximum-size packets, their
    /// drain takes priority over continuing transit. With the down
    /// queues elastic (see [`iri_queue_packets`]) this is what supplies
    /// the pacing the paper's finite buffers provided: without it, a
    /// double-speed global ring can flood the descent queues faster
    /// than the transit-priority drain empties them, and the backlog —
    /// and the tail latency of descending packets — grows without
    /// bound. Defaults to 4 packets: low enough to keep every descent
    /// queue stable at a 2× global ring (8 packets already lets one
    /// queue diverge on 4:3:8), high enough that at 1× the saturated
    /// throughput matches the unthrottled network. Set `usize::MAX / 2`
    /// to disable for flow-control experiments (see DESIGN.md and the
    /// `ablations` bench).
    ///
    /// [`iri_queue_packets`]: RingConfig::iri_queue_packets
    pub convoy_threshold_packets: usize,
    /// Clock multiplier for the global (root) ring: 1 = normal, 2 =
    /// the §6 double-speed global ring.
    pub global_ring_speedup: u32,
    /// Cycles without any flit movement (with packets in flight) before
    /// the watchdog reports a deadlock.
    pub watchdog_horizon: u64,
}

impl RingConfig {
    /// Paper-default configuration for the given cache line size.
    pub fn new(cache_line: CacheLineSize) -> Self {
        RingConfig {
            cache_line,
            format: PacketFormat::RING,
            out_queue_packets: 1,
            ring_buffer_packets: 2,
            convoy_threshold_packets: 4,
            iri_queue_packets: Some(2),
            global_ring_speedup: 1,
            watchdog_horizon: 10_000,
        }
    }

    /// Returns the config with the global ring clocked at `speedup`×.
    ///
    /// # Panics
    ///
    /// Panics if `speedup` is not 1 or 2.
    pub fn with_global_speedup(mut self, speedup: u32) -> Self {
        assert!(
            (1..=2).contains(&speedup),
            "global ring speedup must be 1 or 2"
        );
        self.global_ring_speedup = speedup;
        self
    }

    /// Transit (ring) buffer depth in flits: *two* maximum-size packets
    /// (header + cache line). The paper's Figure 3 shows a one-packet
    /// ring buffer; we add a second packet of headroom because the
    /// ring-entry reservation (an entering worm must fit the downstream
    /// buffer whole, so it never stalls mid-packet holding the link)
    /// would otherwise demand a completely empty buffer and starve
    /// injection. See DESIGN.md "Model fidelity notes".
    pub fn ring_buffer_flits(&self) -> usize {
        self.ring_buffer_packets * self.format.cl_packet_flits(self.cache_line) as usize
    }

    /// IRI up-queue depth in flits per class (a huge sentinel capacity
    /// when elastic).
    pub fn iri_queue_flits(&self) -> usize {
        match self.iri_queue_packets {
            Some(n) => self.format.cl_packet_flits(self.cache_line) as usize * n,
            None => usize::MAX / 2,
        }
    }

    /// IRI down-queue depth in flits per class: always the elastic
    /// sentinel (see [`iri_queue_packets`](RingConfig::iri_queue_packets)
    /// for why descending queues must never refuse flits).
    pub fn iri_down_queue_flits(&self) -> usize {
        usize::MAX / 2
    }
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig::new(CacheLineSize::B32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = RingConfig::new(CacheLineSize::B64);
        // Two cl packets: 10 flits for 64B lines.
        assert_eq!(cfg.ring_buffer_flits(), 10);
        assert_eq!(
            cfg.iri_queue_packets,
            Some(2),
            "two-packet IRI queues by default"
        );
        assert_eq!(cfg.out_queue_packets, 1);
        assert_eq!(cfg.global_ring_speedup, 1);
    }

    #[test]
    fn speedup_builder() {
        let cfg = RingConfig::new(CacheLineSize::B32).with_global_speedup(2);
        assert_eq!(cfg.global_ring_speedup, 2);
    }

    #[test]
    #[should_panic(expected = "speedup")]
    fn invalid_speedup_rejected() {
        RingConfig::new(CacheLineSize::B32).with_global_speedup(3);
    }
}
