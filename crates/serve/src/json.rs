//! A minimal JSON value type with a parser and a deterministic writer.
//!
//! The serve protocol is line-delimited JSON and the workspace takes no
//! external dependencies, so this module hand-rolls the little JSON the
//! server needs. Two properties matter more than generality:
//!
//! - **Deterministic output.** Object members keep insertion order and
//!   floats render via Rust's shortest-round-trip formatter, so equal
//!   values always serialize to byte-identical text. The result cache
//!   and `--verify-cache` compare serialized payloads bit for bit.
//! - **Bounded input.** Nesting is capped; a malformed line yields an
//!   error string, never a panic.

use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order (no sorting, no dedup).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer, if this is a
    /// non-negative whole number small enough for f64 to hold exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => write_str(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_str(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a number: whole values in integer form, everything else via
/// the shortest-round-trip float formatter. Non-finite values (which
/// JSON cannot express) render as `null`.
fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        f.write_str("null")
    } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n:?}")
    }
}

fn write_str(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    /// Parses the `uXXXX` part of a unicode escape (the `\` is already
    /// consumed and `pos` is on the `u`), including surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let hex4 = |p: &mut Self| -> Result<u32, String> {
            p.pos += 1; // the 'u'
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return Err("truncated \\u escape".into());
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..end])
                .map_err(|_| "bad \\u escape".to_string())?;
            let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xd800..0xdc00).contains(&hi) {
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    let lo = hex4(self)?;
                    if (0xdc00..0xe000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                        return char::from_u32(cp).ok_or_else(|| "bad surrogate pair".into());
                    }
                }
            }
            return Err("unpaired surrogate".into());
        }
        char::from_u32(hi).ok_or_else(|| "bad \\u escape".into())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }
}

/// Convenience builder for object literals.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "1.5",
            "\"hi \\\"there\\\"\\n\"",
            "[1,2,[3]]",
            "{\"a\":1,\"b\":{\"c\":[true,null]}}",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text, "round trip of {text}");
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -2.5e-10] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"op\":\"job\",\"seed\":41,\"deep\":{\"x\":true}}").unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("job"));
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(41));
        assert_eq!(
            v.get("deep")
                .and_then(|d| d.get("x"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            Json::parse("\"\\u0041\\ud83d\\ude00\"").unwrap(),
            Json::Str("A\u{1f600}".into())
        );
        assert!(Json::parse("\"\\ud800\"").is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "nul",
            "1 2",
            "\"unterminated",
            "{\"a\":}",
            "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Depth bomb: fails cleanly instead of blowing the stack.
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn control_characters_escape_on_output() {
        assert_eq!(Json::Str("\u{1}".into()).to_string(), "\"\\u0001\"");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }
}
