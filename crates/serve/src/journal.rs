//! Durable batch journal: an append-only, fsync'd line-JSON WAL.
//!
//! The cache makes *completed* work crash-safe (atomic writes, integrity
//! footers); the journal makes *accepted* work crash-safe. Before a
//! batch's cache misses start simulating, the server appends one `job`
//! record per miss — key plus the original wire-form job object — and
//! fsyncs. Each completed attempt appends a `done` record; a finished
//! batch appends `end`. Record shapes:
//!
//! ```text
//! {"rec":"job","batch":3,"key":"ab…ef","spec":{"op":"job","network":"mesh",…}}
//! {"rec":"done","key":"ab…ef"}
//! {"rec":"end","batch":3}
//! ```
//!
//! On startup [`Journal::open`] replays the log: any `job` without a
//! matching `done` is work a dead server accepted but never finished.
//! Those records are rewritten as a fresh *recovery batch* (so a crash
//! during recovery loses nothing), and the server re-runs them —
//! resuming from their `.ckpt` checkpoints where present — before
//! accepting new connections. A SIGKILL at any point therefore yields a
//! cache whose completed batch is fingerprint-identical to an
//! uninterrupted run.
//!
//! Torn tails are expected: a record is only trusted if its line parses
//! as complete JSON, so a write cut short by the kill is ignored, never
//! misread. `done` is recorded for failed attempts too (the journal
//! tracks *attempts*, not successes) so a config that deterministically
//! stalls cannot wedge every subsequent startup in a recovery loop.
//!
//! Fleet dispatch adds an informational `lease` record — which worker
//! holds which job under what deadline — so a post-mortem can
//! reconstruct who was computing what when a machine died:
//!
//! ```text
//! {"rec":"lease","key":"ab…ef","worker":2,"attempt":1,"lease_ms":15000}
//! ```
//!
//! Replay ignores `lease` records (recovery cares only about
//! job-vs-done); they are an audit trail, not state.
//!
//! **Truncate-on-checkpoint:** the WAL does not grow without bound.
//! The journal tracks open batches and not-yet-done jobs; when the last
//! open batch ends with nothing pending, the file is truncated to empty
//! (the cache holds every completed result, so a fully-settled journal
//! carries no information). A server that runs for weeks therefore
//! keeps a journal proportional to its *in-flight* work, not its
//! history.

use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ringmesh_snap::{hex64, parse_hex64};

use crate::json::{obj, Json};

/// Name of the journal file under the cache root.
const JOURNAL_FILE: &str = "journal.wal";

/// One job a dead server accepted but never finished.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// The job's content key (also names its checkpoint file).
    pub key: u64,
    /// The original wire-form job object, re-parseable by
    /// [`parse_job`](crate::parse_job).
    pub spec: Json,
}

/// Unfinished work found in the journal at startup, already re-staged
/// as a fresh batch so recovery itself is crash-safe.
#[derive(Debug)]
pub struct Recovery {
    /// The recovery batch's journal id (close it with
    /// [`Journal::end_batch`] once every job is done).
    pub batch: u64,
    /// The unfinished jobs, in original acceptance order.
    pub jobs: Vec<RecoveredJob>,
}

/// The append-only batch journal. All appends fsync before returning,
/// so an acknowledged record survives a SIGKILL.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    next_batch: u64,
    /// Jobs begun but not yet recorded done (drives truncation).
    pending: HashSet<u64>,
    /// Batches begun but not yet ended (drives truncation).
    open_batches: u64,
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir`, replays it, and
    /// compacts it down to the unfinished work (if any) as a fresh
    /// recovery batch.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors on the journal file itself.
    pub fn open(dir: &Path) -> io::Result<(Journal, Option<Recovery>)> {
        fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let pending = match fs::read_to_string(&path) {
            Ok(text) => replay(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };

        // Rewrite compacted: pending jobs re-staged as batch 0, then
        // fsync, so a crash mid-recovery still finds them next time.
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        let recovery = if pending.is_empty() {
            None
        } else {
            for job in &pending {
                writeln!(file, "{}", job_record(0, job.key, &job.spec))?;
            }
            Some(Recovery {
                batch: 0,
                jobs: pending,
            })
        };
        file.sync_data()?;
        let pending: HashSet<u64> = recovery
            .iter()
            .flat_map(|r| r.jobs.iter().map(|j| j.key))
            .collect();
        let open_batches = u64::from(!pending.is_empty());
        Ok((
            Journal {
                path,
                file,
                next_batch: 1,
                pending,
                open_batches,
            },
            recovery,
        ))
    }

    /// Path of the journal file (for diagnostics and tests).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records that a batch of jobs is about to simulate; returns the
    /// batch id for [`end_batch`](Self::end_batch). Durable on return.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync errors.
    pub fn begin_batch(&mut self, jobs: &[(u64, Json)]) -> io::Result<u64> {
        let batch = self.next_batch;
        self.next_batch += 1;
        for (key, spec) in jobs {
            writeln!(self.file, "{}", job_record(batch, *key, spec))?;
            self.pending.insert(*key);
        }
        self.open_batches += 1;
        self.file.sync_data()?;
        Ok(batch)
    }

    /// Records that a job was leased to a fleet worker — an audit-trail
    /// record replay ignores, durable on return so a post-mortem of a
    /// dead coordinator shows who held what.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync errors.
    pub fn record_lease(
        &mut self,
        key: u64,
        worker: u64,
        attempt: u32,
        lease_ms: u64,
    ) -> io::Result<()> {
        writeln!(
            self.file,
            "{}",
            obj(vec![
                ("rec", Json::Str("lease".into())),
                ("key", Json::Str(hex64(key))),
                ("worker", Json::Num(worker as f64)),
                ("attempt", Json::Num(f64::from(attempt))),
                ("lease_ms", Json::Num(lease_ms as f64)),
            ])
        )?;
        self.file.sync_data()
    }

    /// Records that a job attempt ran to completion (success or
    /// deterministic failure — either way it must not replay at
    /// startup). Durable on return.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync errors.
    pub fn record_done(&mut self, key: u64) -> io::Result<()> {
        writeln!(
            self.file,
            "{}",
            obj(vec![
                ("rec", Json::Str("done".into())),
                ("key", Json::Str(hex64(key))),
            ])
        )?;
        self.pending.remove(&key);
        self.file.sync_data()
    }

    /// Records that every job in `batch` is accounted for. Durable on
    /// return. When this closes the *last* open batch and no job is
    /// pending, the journal compacts itself to empty (the cache holds
    /// every completed result, so a settled WAL carries no state) —
    /// this is what keeps the file from growing across server
    /// lifetimes.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync/truncate errors.
    pub fn end_batch(&mut self, batch: u64) -> io::Result<()> {
        writeln!(
            self.file,
            "{}",
            obj(vec![
                ("rec", Json::Str("end".into())),
                ("batch", Json::Num(batch as f64)),
            ])
        )?;
        self.open_batches = self.open_batches.saturating_sub(1);
        if self.open_batches == 0 && self.pending.is_empty() {
            // Truncate-on-checkpoint: everything the log records is
            // settled, so the history (this `end` line included) is
            // dead weight. Rewind before truncating so the next append
            // starts at offset zero.
            self.file.seek(SeekFrom::Start(0))?;
            self.file.set_len(0)?;
        }
        self.file.sync_data()
    }

    /// Jobs begun but not yet recorded done (diagnostics and tests).
    pub fn pending_jobs(&self) -> usize {
        self.pending.len()
    }

    /// Forces everything appended so far to disk (a no-op given every
    /// append fsyncs; kept as the explicit flush point for graceful
    /// shutdown).
    ///
    /// # Errors
    ///
    /// Propagates fsync errors.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// Builds one `job` record line.
fn job_record(batch: u64, key: u64, spec: &Json) -> String {
    obj(vec![
        ("rec", Json::Str("job".into())),
        ("batch", Json::Num(batch as f64)),
        ("key", Json::Str(hex64(key))),
        ("spec", spec.clone()),
    ])
    .to_string()
}

/// Replays journal text into the list of unfinished jobs, in acceptance
/// order. Unparseable lines (torn tails) and malformed records are
/// skipped.
fn replay(text: &str) -> Vec<RecoveredJob> {
    let mut jobs: Vec<RecoveredJob> = Vec::new();
    for line in text.lines() {
        let Ok(rec) = Json::parse(line) else {
            continue; // torn tail from a kill mid-append
        };
        match rec.get("rec").and_then(Json::as_str) {
            Some("job") => {
                let key = rec.get("key").and_then(Json::as_str).and_then(parse_hex64);
                let spec = rec.get("spec");
                if let (Some(key), Some(spec)) = (key, spec) {
                    // Re-accepted job: latest spec wins, order preserved.
                    jobs.retain(|j| j.key != key);
                    jobs.push(RecoveredJob {
                        key,
                        spec: spec.clone(),
                    });
                }
            }
            Some("done") => {
                if let Some(key) = rec.get("key").and_then(Json::as_str).and_then(parse_hex64) {
                    jobs.retain(|j| j.key != key);
                }
            }
            _ => {} // `end` carries no per-job state; unknown recs skip
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ringmesh-journal-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec(n: u64) -> Json {
        obj(vec![
            ("op", Json::Str("job".into())),
            ("seed", Json::Num(n as f64)),
        ])
    }

    #[test]
    fn clean_history_recovers_nothing() {
        let dir = tempdir("clean");
        {
            let (mut j, rec) = Journal::open(&dir).unwrap();
            assert!(rec.is_none());
            let b = j.begin_batch(&[(1, spec(1)), (2, spec(2))]).unwrap();
            j.record_done(1).unwrap();
            j.record_done(2).unwrap();
            j.end_batch(b).unwrap();
        }
        let (_, rec) = Journal::open(&dir).unwrap();
        assert!(rec.is_none(), "fully-done batches leave nothing pending");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unfinished_jobs_come_back_in_order() {
        let dir = tempdir("pending");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.begin_batch(&[(5, spec(5)), (6, spec(6)), (7, spec(7))])
                .unwrap();
            j.record_done(6).unwrap();
            // Server dies here: 5 and 7 never ran to completion.
        }
        let (_, rec) = Journal::open(&dir).unwrap();
        let rec = rec.expect("two jobs pending");
        let keys: Vec<u64> = rec.jobs.iter().map(|job| job.key).collect();
        assert_eq!(keys, vec![5, 7]);
        assert_eq!(
            rec.jobs[0].spec.get("seed").and_then(Json::as_u64),
            Some(5),
            "original wire spec survives the crash"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_itself_is_crash_safe() {
        let dir = tempdir("rerecover");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.begin_batch(&[(9, spec(9))]).unwrap();
        }
        // First restart stages a recovery batch but dies before done.
        {
            let (_, rec) = Journal::open(&dir).unwrap();
            assert_eq!(rec.unwrap().jobs.len(), 1);
        }
        // Second restart still sees the job.
        let (mut j, rec) = Journal::open(&dir).unwrap();
        let rec = rec.expect("still pending");
        assert_eq!(rec.jobs[0].key, 9);
        j.record_done(9).unwrap();
        j.end_batch(rec.batch).unwrap();
        let (_, rec) = Journal::open(&dir).unwrap();
        assert!(rec.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_ignored_not_misread() {
        let dir = tempdir("torn");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.begin_batch(&[(3, spec(3))]).unwrap();
        }
        // Simulate a kill mid-append: garbage half-line at the end.
        let path = dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        write!(file, "{{\"rec\":\"done\",\"key\":\"00000000000").unwrap();
        drop(file);
        let (_, rec) = Journal::open(&dir).unwrap();
        assert_eq!(
            rec.expect("torn done must not count").jobs[0].key,
            3,
            "job 3 is still pending because its done record tore"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn settled_journal_truncates_to_empty() {
        let dir = tempdir("compact");
        let (mut j, _) = Journal::open(&dir).unwrap();
        let b = j.begin_batch(&[(1, spec(1)), (2, spec(2))]).unwrap();
        assert_eq!(j.pending_jobs(), 2);
        j.record_done(1).unwrap();
        j.record_done(2).unwrap();
        assert!(fs::metadata(j.path()).unwrap().len() > 0);
        j.end_batch(b).unwrap();
        assert_eq!(
            fs::metadata(j.path()).unwrap().len(),
            0,
            "a settled WAL must truncate, not grow forever"
        );
        assert_eq!(j.pending_jobs(), 0);
        // And the journal keeps working after the truncation.
        let b2 = j.begin_batch(&[(3, spec(3))]).unwrap();
        drop(j);
        let (_, rec) = Journal::open(&dir).unwrap();
        assert_eq!(rec.expect("job 3 pending").jobs[0].key, 3);
        let _ = b2;
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_waits_for_every_open_batch() {
        let dir = tempdir("compact-overlap");
        let (mut j, _) = Journal::open(&dir).unwrap();
        // Two concurrent batches (max_batches > 1 in the server).
        let a = j.begin_batch(&[(1, spec(1))]).unwrap();
        let b = j.begin_batch(&[(2, spec(2))]).unwrap();
        j.record_done(1).unwrap();
        j.end_batch(a).unwrap();
        assert!(
            fs::metadata(j.path()).unwrap().len() > 0,
            "batch b is still open; its job record must survive"
        );
        j.record_done(2).unwrap();
        j.end_batch(b).unwrap();
        assert_eq!(fs::metadata(j.path()).unwrap().len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lease_records_are_durable_audit_but_invisible_to_replay() {
        let dir = tempdir("lease");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.begin_batch(&[(8, spec(8))]).unwrap();
            j.record_lease(8, 2, 1, 15_000).unwrap();
            j.record_lease(8, 3, 2, 15_000).unwrap();
            let text = fs::read_to_string(j.path()).unwrap();
            assert_eq!(text.matches("\"rec\":\"lease\"").count(), 2);
            assert!(text.contains("\"worker\":2") && text.contains("\"attempt\":2"));
        }
        // Replay: the job is still pending exactly once — leases do not
        // complete, duplicate, or reorder it.
        let (_, rec) = Journal::open(&dir).unwrap();
        let rec = rec.expect("leased-but-unfinished job is pending");
        assert_eq!(rec.jobs.len(), 1);
        assert_eq!(rec.jobs[0].key, 8);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resubmitted_key_keeps_one_pending_record() {
        let dir = tempdir("dup");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.begin_batch(&[(4, spec(1))]).unwrap();
            j.begin_batch(&[(4, spec(2))]).unwrap();
        }
        let (_, rec) = Journal::open(&dir).unwrap();
        let rec = rec.unwrap();
        assert_eq!(rec.jobs.len(), 1);
        assert_eq!(
            rec.jobs[0].spec.get("seed").and_then(Json::as_u64),
            Some(2),
            "latest spec wins"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
