//! `ringmesh-serve` — simulation as a service.
//!
//! A sweep-job server for the `ringmesh` simulator: clients submit
//! batches of sweep-point jobs as line-delimited JSON (over stdin/stdout
//! or a TCP socket), the server schedules them on the shared
//! [`WorkerPool`](ringmesh::WorkerPool), streams per-job windowed
//! progress, and answers repeated questions instantly from a
//! content-addressed result cache:
//!
//! - **Content-addressed caching** ([`ResultCache`]) — jobs are keyed
//!   by a digest of the canonicalized configuration (every
//!   output-relevant field, floats as raw IEEE-754 bits) plus the code
//!   version. Because simulations are deterministic, a key identifies
//!   one bit-exact result forever; resubmitting a sweep costs a file
//!   read per point. `verify_fraction` re-runs a deterministic sample
//!   of hits and diffs payloads bit for bit.
//! - **Checkpoint/resume** ([`run_job`]) — long jobs periodically
//!   serialize full engine + network + workload state next to their
//!   cache entry; a resubmitted job picks up where the dead server
//!   left off, and the resumed run fingerprint-matches an
//!   uninterrupted one.
//! - **Windowed streaming** — progress events cover ringmesh-trace
//!   sampling windows, so live stats line up with trace reports.
//! - **Crash safety** ([`Journal`]) — accepted batches append to an
//!   fsync'd write-ahead log before simulating; a server killed
//!   mid-batch finishes the work at its next startup (resuming from
//!   checkpoints) with fingerprint-identical results.
//! - **Self-healing cache** — every entry carries an FNV integrity
//!   footer verified on read; corrupt or torn entries are quarantined
//!   and recomputed, and a `--cache-budget` evicts
//!   least-recently-touched entries deterministically.
//! - **Multi-client serving** — [`Server::serve_tcp`] runs concurrent
//!   sessions with read/write deadlines over shared state; load beyond
//!   the admission limits is shed with typed `busy` events instead of
//!   queued unboundedly.
//! - **Fleet dispatch** ([`RemoteRunner`]) — an attached worker fleet
//!   runs batch misses under journaled, time-bounded leases with
//!   heartbeat-driven re-dispatch and straggler speculation; results
//!   merge in job-submission order, so a batch is byte-identical to a
//!   single-process run no matter how many workers served it or died
//!   mid-flight, and byte-divergent duplicate results are surfaced as
//!   hard determinism violations.
//!
//! ```text
//! $ printf '%s\n' \
//!     '{"op":"job","id":"r24","network":"ring","spec":"2:3:4","scale":"quick"}' \
//!     '{"op":"run"}' '{"op":"quit"}' | ringmesh serve
//! {"event":"accepted","id":"r24","key":"...","cached":false}
//! {"event":"window","id":"r24","cycle":1000,"issued":...,"retired":...}
//! ...
//! {"event":"result","id":"r24","cached":false,"resumed":false,"data":{...}}
//! {"event":"batch","jobs":1,"cache_hits":0,"cache_misses":1,...}
//! {"event":"bye"}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod jobspec;
mod journal;
pub mod json;
mod remote;
mod runner;
mod server;

pub use cache::{write_atomic, ResultCache, CODE_VERSION, QUARANTINE_STRIKE_LIMIT};
pub use jobspec::{parse_job, JobSpec};
pub use journal::{Journal, RecoveredJob, Recovery};
pub use remote::{RemoteEvent, RemoteOutcome, RemoteRunner, RemoteTask};
pub use runner::{run_job, JobError, JobOutcome, WindowEvent};
pub use server::{
    result_payload, ServeExit, ServeOptions, Server, MAX_LINE_BYTES, MAX_PENDING_JOBS,
};
