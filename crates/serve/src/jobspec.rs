//! Translating job objects from the wire into [`SystemConfig`]s.
//!
//! A job is a flat JSON object; every field beyond the network shape is
//! optional and defaults to the paper-baseline configuration. Example:
//!
//! ```json
//! {"op":"job","id":"r24","network":"ring","spec":"2:3:4",
//!  "cache_line":128,"miss_rate":0.1,"seed":7,"scale":"quick"}
//! ```

use ringmesh::{NetworkSpec, SimParams, SystemConfig};
use ringmesh_net::{BufferRegime, CacheLineSize};
use ringmesh_workload::{HotSpot, MissProcess};

use crate::json::Json;

/// One submitted job: a client-chosen label plus the full simulation
/// configuration it denotes.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Client-chosen job label, echoed on every event for this job.
    pub id: String,
    /// The simulation point to run.
    pub cfg: SystemConfig,
}

/// Builds a [`JobSpec`] from a parsed `{"op":"job",...}` object.
///
/// # Errors
///
/// Returns a human-readable message naming the offending field; the
/// config is also passed through [`SystemConfig::validate`].
pub fn parse_job(v: &Json, default_id: &str) -> Result<JobSpec, String> {
    let id = match v.get("id") {
        Some(j) => j.as_str().ok_or("field 'id' must be a string")?.to_string(),
        None => default_id.to_string(),
    };

    let network = parse_network(v)?;
    let cache_line = match v.get("cache_line") {
        Some(j) => {
            let bytes = j
                .as_u64()
                .ok_or("field 'cache_line' must be 16/32/64/128")?;
            CacheLineSize::from_bytes(u32::try_from(bytes).map_err(|_| "cache_line too large")?)?
        }
        None => CacheLineSize::B128,
    };
    let mut cfg = SystemConfig::new(network, cache_line);

    if let Some(j) = v.get("region") {
        cfg.workload.region = f64_field(j, "region")?;
    }
    if let Some(j) = v.get("miss_rate") {
        cfg.workload.miss_rate = f64_field(j, "miss_rate")?;
    }
    if let Some(j) = v.get("outstanding") {
        cfg.workload.outstanding = u32_field(j, "outstanding")?;
    }
    if let Some(j) = v.get("read_fraction") {
        cfg.workload.read_fraction = f64_field(j, "read_fraction")?;
    }
    if let Some(j) = v.get("miss_process") {
        cfg.workload.miss_process = match j.as_str() {
            Some("det") => MissProcess::Deterministic,
            Some("geo") => MissProcess::Geometric,
            _ => return Err("field 'miss_process' must be \"det\" or \"geo\"".into()),
        };
    }
    match (v.get("hot_node"), v.get("hot_fraction")) {
        (Some(n), Some(f)) => {
            cfg.workload.hot_spot = Some(HotSpot {
                node: u32_field(n, "hot_node")?,
                fraction: f64_field(f, "hot_fraction")?,
            });
        }
        (None, None) => {}
        _ => return Err("'hot_node' and 'hot_fraction' must be given together".into()),
    }
    if let Some(j) = v.get("mem_latency") {
        cfg.memory.latency = u32_field(j, "mem_latency")?;
    }
    if let Some(j) = v.get("mem_occupancy") {
        cfg.memory.occupancy = u32_field(j, "mem_occupancy")?;
    }

    if let Some(j) = v.get("scale") {
        cfg.sim = match j.as_str() {
            Some("quick") => SimParams::quick(),
            Some("full") => SimParams::full(),
            _ => return Err("field 'scale' must be \"quick\" or \"full\"".into()),
        };
    }
    if let Some(j) = v.get("warmup") {
        cfg.sim.warmup = u64_field(j, "warmup")?;
    }
    if let Some(j) = v.get("batch_cycles") {
        cfg.sim.batch_cycles = u64_field(j, "batch_cycles")?;
    }
    if let Some(j) = v.get("batches") {
        cfg.sim.batches = u64_field(j, "batches")? as usize;
    }
    if let Some(j) = v.get("seed") {
        cfg.seed = u64_field(j, "seed")?;
    }

    cfg.validate().map_err(|e| e.to_string())?;
    Ok(JobSpec { id, cfg })
}

fn parse_network(v: &Json) -> Result<NetworkSpec, String> {
    // A 'topology' field carries the complete registry spec string
    // ("ring:2:3:4", "mesh:12:cl", "hybrid:4x4:4", ...) and replaces
    // the per-kind shape fields below.
    if let Some(j) = v.get("topology") {
        let spec = j.as_str().ok_or("field 'topology' must be a string")?;
        if v.get("network").is_some() {
            return Err("give either 'topology' or 'network', not both".into());
        }
        return spec.parse().map_err(|e| format!("bad topology spec: {e}"));
    }
    let kind = v
        .get("network")
        .and_then(Json::as_str)
        .ok_or("field 'network' must be \"ring\", \"slotted\", \"mesh\" or \"hybrid\"")?;
    match kind {
        "ring" | "slotted" => {
            let spec = v
                .get("spec")
                .and_then(Json::as_str)
                .ok_or("ring networks need a 'spec' string like \"2:3:4\"")?
                .parse()
                .map_err(|e| format!("bad ring spec: {e}"))?;
            if kind == "slotted" {
                if v.get("speedup").is_some() {
                    return Err("'speedup' does not apply to slotted rings".into());
                }
                Ok(NetworkSpec::SlottedRing { spec })
            } else {
                let speedup = match v.get("speedup") {
                    Some(j) => u32_field(j, "speedup")?,
                    None => 1,
                };
                Ok(NetworkSpec::Ring { spec, speedup })
            }
        }
        "mesh" => {
            let side = v
                .get("side")
                .ok_or_else(|| "mesh networks need a 'side' length".to_string())
                .and_then(|j| u32_field(j, "side"))?;
            let buffers = match v.get("buffers") {
                Some(j) => match j.as_str() {
                    Some("1") => BufferRegime::OneFlit,
                    Some("4") => BufferRegime::FourFlit,
                    Some("line") => BufferRegime::CacheLine,
                    _ => return Err("field 'buffers' must be \"1\", \"4\" or \"line\"".into()),
                },
                None => BufferRegime::FourFlit,
            };
            Ok(NetworkSpec::Mesh { side, buffers })
        }
        "hybrid" => {
            let side = v
                .get("side")
                .ok_or_else(|| "hybrid networks need a 'side' length".to_string())
                .and_then(|j| u32_field(j, "side"))?;
            let local = v
                .get("local")
                .ok_or_else(|| "hybrid networks need a 'local' ring size".to_string())
                .and_then(|j| u32_field(j, "local"))?;
            Ok(NetworkSpec::Hybrid { side, local })
        }
        other => Err(format!("unknown network kind '{other}'")),
    }
}

fn f64_field(j: &Json, name: &str) -> Result<f64, String> {
    j.as_f64()
        .ok_or_else(|| format!("field '{name}' must be a number"))
}

fn u64_field(j: &Json, name: &str) -> Result<u64, String> {
    j.as_u64()
        .ok_or_else(|| format!("field '{name}' must be a non-negative integer"))
}

fn u32_field(j: &Json, name: &str) -> Result<u32, String> {
    u64_field(j, name)
        .and_then(|n| u32::try_from(n).map_err(|_| format!("field '{name}' is out of range")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<JobSpec, String> {
        parse_job(&Json::parse(text).unwrap(), "job-0")
    }

    #[test]
    fn minimal_ring_job_uses_paper_defaults() {
        let job = parse(r#"{"network":"ring","spec":"2:3:4"}"#).unwrap();
        assert_eq!(job.id, "job-0");
        assert_eq!(job.cfg.network.label(), "ring 2:3:4");
        assert_eq!(job.cfg.cache_line, CacheLineSize::B128);
        assert_eq!(
            job.cfg,
            SystemConfig::new(job.cfg.network.clone(), CacheLineSize::B128)
        );
    }

    #[test]
    fn every_field_lands_in_the_config() {
        let job = parse(
            r#"{"id":"m5","network":"mesh","side":5,"buffers":"line","cache_line":32,
                "region":0.5,"miss_rate":0.2,"outstanding":8,"read_fraction":0.6,
                "miss_process":"geo","hot_node":3,"hot_fraction":0.1,
                "mem_latency":12,"mem_occupancy":5,
                "warmup":900,"batch_cycles":700,"batches":3,"seed":99}"#,
        )
        .unwrap();
        assert_eq!(job.id, "m5");
        let c = &job.cfg;
        assert_eq!(c.network.label(), "mesh 5x5 (cl-sized buffers)");
        assert_eq!(c.cache_line, CacheLineSize::B32);
        assert_eq!(c.workload.region, 0.5);
        assert_eq!(c.workload.miss_rate, 0.2);
        assert_eq!(c.workload.outstanding, 8);
        assert_eq!(c.workload.read_fraction, 0.6);
        assert_eq!(c.workload.miss_process, MissProcess::Geometric);
        assert_eq!(
            c.workload.hot_spot,
            Some(HotSpot {
                node: 3,
                fraction: 0.1
            })
        );
        assert_eq!(c.memory.latency, 12);
        assert_eq!(c.memory.occupancy, 5);
        assert_eq!(
            (c.sim.warmup, c.sim.batch_cycles, c.sim.batches),
            (900, 700, 3)
        );
        assert_eq!(c.seed, 99);
    }

    #[test]
    fn slotted_and_sped_up_rings() {
        let s = parse(r#"{"network":"slotted","spec":"2:2:3"}"#).unwrap();
        assert_eq!(s.cfg.network.label(), "slotted ring 2:2:3");
        let f = parse(r#"{"network":"ring","spec":"2:4","speedup":2}"#).unwrap();
        assert_eq!(f.cfg.network.label(), "ring 2:4 (2x global)");
        assert!(parse(r#"{"network":"slotted","spec":"2:4","speedup":2}"#).is_err());
    }

    #[test]
    fn topology_field_reaches_every_registered_network() {
        for (text, label) in [
            (r#"{"topology":"ring:2:3:4"}"#, "ring 2:3:4"),
            (r#"{"topology":"ring2x:2:4"}"#, "ring 2:4 (2x global)"),
            (r#"{"topology":"slotted:2:2:3"}"#, "slotted ring 2:2:3"),
            (r#"{"topology":"mesh:5:cl"}"#, "mesh 5x5 (cl-sized buffers)"),
            (
                r#"{"topology":"hybrid:4x4:4"}"#,
                "hybrid 4x4 mesh of 4-PM rings",
            ),
        ] {
            let job = parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(job.cfg.network.label(), label);
        }
    }

    #[test]
    fn hybrid_kind_takes_side_and_local() {
        let job = parse(r#"{"network":"hybrid","side":2,"local":8}"#).unwrap();
        assert_eq!(job.cfg.network.num_pms(), 32);
        assert!(parse(r#"{"network":"hybrid","side":2}"#)
            .unwrap_err()
            .contains("'local'"));
    }

    #[test]
    fn malformed_topology_fields_draw_errors_not_panics() {
        for (text, needle) in [
            (r#"{"topology":"torus:4"}"#, "topology"),
            (r#"{"topology":"hybrid:4x5:4"}"#, "square"),
            (r#"{"topology":"hybrid:4x4:0"}"#, "positive"),
            (r#"{"topology":"mesh:0"}"#, "mesh"),
            (r#"{"topology":42}"#, "string"),
            (
                r#"{"topology":"mesh:3","network":"mesh","side":3}"#,
                "not both",
            ),
        ] {
            let err = parse(text).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn scale_presets_then_overrides() {
        let job = parse(r#"{"network":"mesh","side":3,"scale":"quick","batches":2}"#).unwrap();
        assert_eq!(job.cfg.sim.warmup, SimParams::quick().warmup);
        assert_eq!(job.cfg.sim.batches, 2);
    }

    #[test]
    fn bad_jobs_name_the_offending_field() {
        for (text, needle) in [
            (r#"{"spec":"2:3:4"}"#, "'network'"),
            (r#"{"network":"torus"}"#, "torus"),
            (r#"{"network":"ring"}"#, "'spec'"),
            (r#"{"network":"ring","spec":"0:9"}"#, "ring spec"),
            (r#"{"network":"mesh"}"#, "'side'"),
            (r#"{"network":"mesh","side":3,"cache_line":48}"#, "48"),
            (r#"{"network":"mesh","side":3,"hot_node":1}"#, "together"),
            (
                r#"{"network":"mesh","side":3,"miss_rate":2.0}"#,
                "miss rate",
            ),
            (r#"{"network":"mesh","side":3,"batches":0}"#, "batch"),
        ] {
            let err = parse(text).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }
}
