//! The sweep-job server: line-delimited JSON over any byte stream,
//! hardened for concurrent clients and unclean deaths.
//!
//! One request per line, one or more event lines back. Ops:
//!
//! | request                         | events                                  |
//! |---------------------------------|-----------------------------------------|
//! | `{"op":"job", ...}`             | `accepted` (job queued for the batch)   |
//! | `{"op":"run"}`                  | `window`* / `result`* then one `batch`  |
//! | `{"op":"stats"}`                | `stats` (cache + robustness counters)   |
//! | `{"op":"quit"}`                 | `bye`, connection closes                |
//! | `{"op":"shutdown"}`             | `bye`, whole server winds down          |
//!
//! `run` answers cache hits instantly from the content-addressed store
//! and schedules the misses on the shared [`WorkerPool`] — or, when a
//! [`RemoteRunner`] fleet is attached and reports live workers, on the
//! fleet under journaled leases. `window` events stream as workers
//! progress (each tagged with the job id); fleet batches additionally
//! stream `lease`, `retry`, and `speculate` lifecycle events. `result`
//! events are emitted in job-submission order, and the closing `batch`
//! line carries hit/miss counters plus a combined fingerprint over all
//! results in submission order — two batches of identical jobs produce
//! byte-identical `result` data and equal batch fingerprints whether
//! computed, cached, or recovered from dead workers.
//!
//! # Robustness contract
//!
//! - **Concurrent clients.** [`Server::serve_tcp`] runs one session
//!   thread per connection over a shared cache, journal, and worker
//!   pool; concurrent submissions of the same job are answered with
//!   byte-identical payloads.
//! - **Admission control.** Connections beyond `max_clients` and `run`
//!   requests beyond `max_batches` are shed with a typed `busy` event —
//!   the server never silently queues unbounded work or hangs a client.
//!   A session's own job queue is bounded by [`MAX_PENDING_JOBS`].
//! - **Deadlines.** TCP sessions carry read/write deadlines; an idle or
//!   stuck peer is disconnected instead of pinning a thread forever.
//! - **Malformed input is survivable.** A line that fails to parse, an
//!   unknown op, invalid UTF-8, or a line longer than
//!   [`MAX_LINE_BYTES`] draws a typed `error` event and the session
//!   continues; nothing a client sends can wedge the server.
//! - **Crash safety.** Batches journal to an fsync'd WAL before
//!   simulating; a SIGKILL mid-batch is recovered at the next startup
//!   (resuming from checkpoints) and yields fingerprint-identical
//!   results. Graceful stops ([`Server::stop_handle`], SIGTERM in the
//!   CLI) flush checkpoints and the journal before exiting.

use std::cell::RefCell;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use ringmesh::{AdmissionGate, RunResult, StopFlag, SystemConfig, WorkerPool};
use ringmesh_snap::{hex64, Fingerprint};
use ringmesh_trace::TraceConfig;

use crate::cache::ResultCache;
use crate::jobspec::{parse_job, JobSpec};
use crate::journal::{Journal, Recovery};
use crate::json::{obj, Json};
use crate::remote::{RemoteEvent, RemoteOutcome, RemoteRunner, RemoteTask};
use crate::runner::{run_job, JobError, WindowEvent};

/// Longest accepted request line, in bytes (1 MiB). Anything longer is
/// discarded up to its newline and answered with a typed `error` event;
/// the connection stays alive. Part of the documented protocol.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Most jobs one session may queue before `run`; further `job` requests
/// draw a `busy` event until the queue drains. Bounds server memory
/// against a client that submits forever without running.
pub const MAX_PENDING_JOBS: usize = 4096;

/// How often a blocked TCP read wakes to poll the stop flag and the
/// idle deadline.
const POLL_TICK: Duration = Duration::from_secs(1);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Result-cache directory.
    pub cache_dir: PathBuf,
    /// Worker threads (`None` = the pool's default sizing).
    pub threads: Option<usize>,
    /// Fraction of cache hits to deterministically re-run and diff
    /// bit-for-bit against the stored payload (`--verify-cache`).
    pub verify_fraction: f64,
    /// Cycles between state checkpoints for in-flight jobs (0 = off).
    pub checkpoint_every: u64,
    /// Progress-window length in cycles; defaults to the ringmesh-trace
    /// sampling window so streamed stats line up with trace reports.
    pub window_cycles: u64,
    /// Completed-entry size budget in bytes; exceeding it evicts
    /// least-recently-touched entries at startup and after each batch
    /// (`None` = unbounded).
    pub cache_budget: Option<u64>,
    /// Concurrent TCP sessions admitted; further connections get a
    /// `busy` event and are closed.
    pub max_clients: usize,
    /// Concurrent running batches admitted across all sessions; further
    /// `run` requests get a `busy` event (jobs stay queued).
    pub max_batches: usize,
    /// TCP idle deadline: a session that sends nothing for this long is
    /// disconnected (`None` = never).
    pub read_deadline: Option<Duration>,
    /// TCP write deadline per event line; a peer that stops draining
    /// output errors the session instead of wedging a thread (`None` =
    /// never).
    pub write_deadline: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            cache_dir: PathBuf::from(".ringmesh-cache"),
            threads: None,
            verify_fraction: 0.0,
            checkpoint_every: 0,
            window_cycles: TraceConfig::default().window_cycles,
            cache_budget: None,
            max_clients: 16,
            max_batches: 2,
            read_deadline: Some(Duration::from_secs(300)),
            write_deadline: Some(Duration::from_secs(30)),
        }
    }
}

/// How a serve session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeExit {
    /// Input ended or the client sent `quit`; a TCP server keeps
    /// accepting connections.
    Quit,
    /// The client sent `shutdown`; the whole server winds down.
    Shutdown,
    /// The server's stop flag was set (SIGTERM or another session's
    /// `shutdown`); checkpoints and journal were flushed first.
    Terminated,
    /// The session sat idle past its read deadline and was dropped.
    IdleTimeout,
}

/// A sweep-job server: shared result cache, durable batch journal, and
/// worker pool, serving any number of concurrent sessions.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
}

/// Everything a session thread needs, behind one `Arc`.
#[derive(Debug)]
struct Shared {
    opts: ServeOptions,
    pool: WorkerPool,
    cache: Mutex<ResultCache>,
    journal: Mutex<Journal>,
    /// Bounds concurrent running batches (admission for `run`).
    batches: AdmissionGate,
    /// Bounds concurrent TCP sessions (admission at accept).
    clients: AdmissionGate,
    /// Cooperative shutdown: set by `shutdown`, SIGTERM, or tests.
    stop: StopFlag,
    /// Malformed request lines seen (drives `ExitStatus::Protocol`).
    protocol_errors: AtomicU64,
    /// Journaled jobs completed by startup recovery.
    recovered: AtomicU64,
    /// Optional worker fleet; batches with misses dispatch here while
    /// it reports live workers (set once via [`Server::set_remote`]).
    remote: OnceLock<Arc<dyn RemoteRunner>>,
    /// Duplicate remote runs that disagreed byte-for-byte — a broken
    /// worker or build (drives `ExitStatus::DeterminismViolation`).
    determinism_violations: AtomicU64,
}

/// One queued job and what the cache already knows about it.
#[derive(Debug)]
struct Pending {
    spec: JobSpec,
    /// The wire-form request object, journaled verbatim so a crashed
    /// batch can be replayed by a server that never saw the client.
    raw: Json,
    key: u64,
    cached: Option<String>,
}

/// What `run` decided to do with one pending job.
#[derive(Debug)]
enum Plan {
    /// Serve the stored payload as-is.
    Hit(String),
    /// Simulate (index into the work-item vector).
    Work(usize),
    /// Cache hit selected for verification: serve the stored payload,
    /// but also re-run (work index) and diff.
    Verify(String, usize),
    /// Same key as an earlier job in this batch; reuse its outcome.
    Alias(usize),
}

/// One planned simulation: everything either execution lane (local pool
/// or remote fleet) needs to run the job and label its events.
#[derive(Debug, Clone)]
struct WorkItem {
    /// Client-chosen job id (event labels only).
    id: String,
    cfg: SystemConfig,
    key: u64,
    /// Wire-form job object, re-parsed by remote workers.
    raw: Json,
}

/// Terminal outcome of one work item, lane-independent: the canonical
/// result payload plus whether the run resumed from a checkpoint.
type WorkOutcome = Result<(String, bool), JobError>;

impl Server {
    /// Opens the cache, replays the batch journal (completing any work
    /// a dead server left unfinished, resuming from checkpoints), runs
    /// a budget-eviction pass, and spins up the worker pool.
    ///
    /// # Errors
    ///
    /// Fails if the cache directory or journal cannot be prepared, or
    /// if recovery cannot write its results.
    pub fn new(opts: ServeOptions) -> io::Result<Server> {
        let cache = ResultCache::open(&opts.cache_dir)?;
        let (journal, recovery) = Journal::open(&opts.cache_dir)?;
        let pool = match opts.threads {
            Some(n) => WorkerPool::new(n),
            None => WorkerPool::default(),
        };
        let shared = Arc::new(Shared {
            batches: AdmissionGate::new(opts.max_batches),
            clients: AdmissionGate::new(opts.max_clients),
            opts,
            pool,
            cache: Mutex::new(cache),
            journal: Mutex::new(journal),
            stop: StopFlag::new(),
            protocol_errors: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            remote: OnceLock::new(),
            determinism_violations: AtomicU64::new(0),
        });
        if let Some(recovery) = recovery {
            shared.recover(recovery)?;
        }
        if let Some(budget) = shared.opts.cache_budget {
            shared.cache_lock().evict_to_budget(budget)?;
        }
        Ok(Server { shared })
    }

    /// A handle that requests graceful shutdown when set: sessions wind
    /// down at their next request boundary, in-flight jobs checkpoint
    /// at their next window, and the journal is flushed.
    pub fn stop_handle(&self) -> StopFlag {
        self.shared.stop.clone()
    }

    /// Serves one session: reads requests line by line from `input`,
    /// writes event lines to `out`, until EOF / `quit` / `shutdown` /
    /// stop / idle deadline.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors on the transport.
    pub fn serve<R: BufRead, W: Write>(&self, input: R, out: W) -> io::Result<ServeExit> {
        self.shared.session(input, out)
    }

    /// Binds `addr` and serves connections concurrently (one thread per
    /// admitted session) until a client sends `shutdown` or
    /// [`stop_handle`](Self::stop_handle) is set. Connections beyond
    /// `max_clients` receive a `busy` event and are closed; admitted
    /// sessions get the configured read/write deadlines.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept errors; per-connection transport errors
    /// end that session only.
    pub fn serve_tcp(&self, addr: &str) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        eprintln!("ringmesh serve: listening on {}", listener.local_addr()?);
        listener.set_nonblocking(true)?;
        let shared = &self.shared;
        let outcome = std::thread::scope(|s| -> io::Result<()> {
            loop {
                if shared.stop.is_set() {
                    return Ok(());
                }
                match listener.accept() {
                    Ok((stream, peer)) => match shared.clients.try_enter() {
                        Some(permit) => {
                            s.spawn(move || {
                                let _permit = permit;
                                if let Err(e) = shared.connection(stream) {
                                    eprintln!("ringmesh serve: session {peer}: {e}");
                                }
                            });
                        }
                        None => {
                            // Shed the connection with a typed reply
                            // rather than letting it queue invisibly.
                            let mut stream = stream;
                            let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                            let _ = writeln!(
                                stream,
                                "{}",
                                busy_event("connections", shared.clients.limit())
                            );
                        }
                    },
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(e) => return Err(e),
                }
            }
        });
        // All sessions have joined; make the journal durable before the
        // process (typically) exits.
        let _ = self.shared.journal_lock().sync();
        outcome
    }

    /// Cache hit/miss totals so far (hits, misses).
    pub fn cache_counters(&self) -> (u64, u64) {
        let cache = self.shared.cache_lock();
        (cache.hits, cache.misses)
    }

    /// Malformed request lines seen across all sessions (drives the
    /// CLI's `ExitStatus::Protocol` path).
    pub fn protocol_errors(&self) -> u64 {
        self.shared.protocol_errors.load(Ordering::SeqCst)
    }

    /// Journaled jobs completed by startup recovery.
    pub fn recovered_jobs(&self) -> u64 {
        self.shared.recovered.load(Ordering::SeqCst)
    }

    /// Attaches a worker fleet. From then on, any batch with cache
    /// misses is dispatched through `runner` whenever it reports live
    /// workers (falling back to the local pool otherwise, or for tasks
    /// the fleet hands back unrun). At most one fleet may be attached;
    /// later calls are ignored.
    pub fn set_remote(&self, runner: Arc<dyn RemoteRunner>) {
        let _ = self.shared.remote.set(runner);
    }

    /// Hard determinism violations observed so far: duplicate remote
    /// runs of one content key that returned byte-different payloads.
    /// Non-zero drives the CLI's `ExitStatus::DeterminismViolation`.
    pub fn determinism_violations(&self) -> u64 {
        self.shared.determinism_violations.load(Ordering::SeqCst)
    }

    /// Holds one batch admission slot; while the guard lives, one fewer
    /// concurrent `run` is admitted. Lets tests exercise the `busy`
    /// path deterministically.
    #[doc(hidden)]
    pub fn hold_batch_slot(&self) -> Option<impl Drop + '_> {
        self.shared.batches.try_enter()
    }
}

impl Shared {
    fn cache_lock(&self) -> MutexGuard<'_, ResultCache> {
        self.cache.lock().expect("cache lock poisoned")
    }

    fn journal_lock(&self) -> MutexGuard<'_, Journal> {
        self.journal.lock().expect("journal lock poisoned")
    }

    /// Configures deadlines on an accepted socket and runs a session
    /// over it.
    fn connection(&self, stream: TcpStream) -> io::Result<()> {
        // Short read timeout = the poll tick; the idle deadline is
        // enforced in the session loop so the stop flag is still
        // observed promptly under a long (or absent) deadline.
        stream.set_read_timeout(Some(POLL_TICK))?;
        stream.set_write_timeout(self.opts.write_deadline)?;
        let reader = BufReader::new(stream.try_clone()?);
        if self.session(reader, stream)? == ServeExit::Shutdown {
            self.stop.set();
        }
        Ok(())
    }

    /// One request/response session over arbitrary byte streams.
    fn session<R: BufRead, W: Write>(&self, input: R, mut out: W) -> io::Result<ServeExit> {
        let mut reader = LineReader::new(input, MAX_LINE_BYTES);
        let mut pending: Vec<Pending> = Vec::new();
        let mut next_id = 0usize;
        let mut last_activity = Instant::now();
        let exit = loop {
            if self.stop.is_set() {
                emit(
                    &mut out,
                    obj(vec![
                        ("event", Json::Str("bye".into())),
                        ("reason", Json::Str("shutdown".into())),
                    ]),
                )?;
                break ServeExit::Terminated;
            }
            let line = match reader.next_line()? {
                LineRead::TimedOut => {
                    if let Some(deadline) = self.opts.read_deadline {
                        if last_activity.elapsed() >= deadline {
                            break ServeExit::IdleTimeout;
                        }
                    }
                    continue;
                }
                LineRead::Eof => break ServeExit::Quit,
                LineRead::Oversized => {
                    last_activity = Instant::now();
                    self.protocol_error(
                        &mut out,
                        None,
                        &format!("request line exceeds the {MAX_LINE_BYTES}-byte limit"),
                    )?;
                    continue;
                }
                LineRead::Line(bytes) => {
                    last_activity = Instant::now();
                    match String::from_utf8(bytes) {
                        Ok(s) => s,
                        Err(_) => {
                            self.protocol_error(&mut out, None, "request line is not valid UTF-8")?;
                            continue;
                        }
                    }
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let req = match Json::parse(&line) {
                Ok(v) => v,
                Err(e) => {
                    self.protocol_error(&mut out, None, &format!("bad request: {e}"))?;
                    continue;
                }
            };
            match req.get("op").and_then(Json::as_str) {
                Some("job") => {
                    if pending.len() >= MAX_PENDING_JOBS {
                        emit(&mut out, busy_event("jobs", MAX_PENDING_JOBS))?;
                        continue;
                    }
                    let default_id = format!("job-{next_id}");
                    match parse_job(&req, &default_id) {
                        Ok(spec) => {
                            next_id += 1;
                            let key = ResultCache::key(&spec.cfg);
                            let cached = self.cache_lock().lookup(key);
                            emit(
                                &mut out,
                                obj(vec![
                                    ("event", Json::Str("accepted".into())),
                                    ("id", Json::Str(spec.id.clone())),
                                    ("key", Json::Str(hex64(key))),
                                    ("cached", Json::Bool(cached.is_some())),
                                ]),
                            )?;
                            pending.push(Pending {
                                spec,
                                raw: req,
                                key,
                                cached,
                            });
                        }
                        Err(e) => self.protocol_error(&mut out, req.get("id"), &e)?,
                    }
                }
                Some("run") => match self.batches.try_enter() {
                    Some(_permit) => {
                        let batch = std::mem::take(&mut pending);
                        self.run_batch(batch, &mut out)?;
                    }
                    None => emit(&mut out, busy_event("batches", self.batches.limit()))?,
                },
                Some("stats") => {
                    let (hits, misses, entries, bytes, quarantined, evicted, suppressed) = {
                        let cache = self.cache_lock();
                        (
                            cache.hits,
                            cache.misses,
                            cache.entries(),
                            cache.entry_bytes(),
                            cache.quarantined,
                            cache.evicted,
                            cache.suppressed_stores,
                        )
                    };
                    emit(
                        &mut out,
                        obj(vec![
                            ("event", Json::Str("stats".into())),
                            ("cache_hits", Json::Num(hits as f64)),
                            ("cache_misses", Json::Num(misses as f64)),
                            ("cache_entries", Json::Num(entries as f64)),
                            ("cache_bytes", Json::Num(bytes as f64)),
                            ("quarantined", Json::Num(quarantined as f64)),
                            ("evicted", Json::Num(evicted as f64)),
                            ("suppressed_stores", Json::Num(suppressed as f64)),
                            (
                                "recovered",
                                Json::Num(self.recovered.load(Ordering::SeqCst) as f64),
                            ),
                            ("pending", Json::Num(pending.len() as f64)),
                            (
                                "batches_in_flight",
                                Json::Num(self.batches.in_flight() as f64),
                            ),
                            (
                                "fleet_workers",
                                Json::Num(self.remote.get().map_or(0, |r| r.live_workers()) as f64),
                            ),
                            (
                                "determinism_violations",
                                Json::Num(self.determinism_violations.load(Ordering::SeqCst) as f64),
                            ),
                        ]),
                    )?;
                }
                Some("quit") => {
                    emit(&mut out, obj(vec![("event", Json::Str("bye".into()))]))?;
                    break ServeExit::Quit;
                }
                Some("shutdown") => {
                    emit(&mut out, obj(vec![("event", Json::Str("bye".into()))]))?;
                    break ServeExit::Shutdown;
                }
                other => {
                    let msg = match other {
                        Some(op) => format!("unknown op '{op}'"),
                        None => "missing 'op' field".to_string(),
                    };
                    self.protocol_error(&mut out, None, &msg)?;
                }
            }
        };
        // Session boundary: make the journal durable whatever happens
        // to the process next.
        let _ = self.journal_lock().sync();
        Ok(exit)
    }

    /// Emits a typed protocol `error` event and counts it toward the
    /// CLI's `ExitStatus::Protocol` path. The session always continues.
    fn protocol_error<W: Write>(
        &self,
        out: &mut W,
        id: Option<&Json>,
        message: &str,
    ) -> io::Result<()> {
        self.protocol_errors.fetch_add(1, Ordering::SeqCst);
        emit(out, error_event(id, "protocol", message))
    }

    /// Completes journaled work a dead server left behind: re-runs each
    /// job (resuming from its checkpoint where one exists), stores the
    /// results, and closes the recovery batch.
    fn recover(&self, recovery: Recovery) -> io::Result<()> {
        let mut runnable: Vec<(u64, SystemConfig)> = Vec::new();
        for job in &recovery.jobs {
            match parse_job(&job.spec, "recovered") {
                // The key must still match: a code-version bump (or a
                // protocol change) means the journaled promise is from
                // another world — drop it and let clients resubmit.
                Ok(spec) if ResultCache::key(&spec.cfg) == job.key => {
                    runnable.push((job.key, spec.cfg));
                }
                _ => {
                    eprintln!(
                        "ringmesh serve: dropping unreplayable journal entry {}",
                        hex64(job.key)
                    );
                    self.journal_lock().record_done(job.key)?;
                }
            }
        }
        if !runnable.is_empty() {
            eprintln!(
                "ringmesh serve: recovering {} journaled job(s) from an unclean shutdown",
                runnable.len()
            );
        }
        let window = self.opts.window_cycles.max(1);
        let outcomes = self.pool.map(runnable, |_, (key, cfg)| {
            let ckpt = ResultCache::checkpoint_path_in(&self.opts.cache_dir, key);
            let outcome = run_job(
                &cfg,
                window,
                self.opts.checkpoint_every,
                Some(&ckpt),
                Some(&self.stop),
                &mut |_| {},
            );
            (key, cfg, outcome)
        });
        let mut interrupted = false;
        for (key, cfg, outcome) in outcomes {
            match outcome {
                Ok(o) => {
                    let payload = result_payload(&cfg, &o.result, key);
                    self.cache_lock().store(key, &payload)?;
                    self.journal_lock().record_done(key)?;
                    self.recovered.fetch_add(1, Ordering::SeqCst);
                }
                Err(JobError::Interrupted) => interrupted = true, // still pending; checkpointed
                Err(JobError::Failed(e)) => {
                    eprintln!("ringmesh serve: recovery of {} failed: {e}", hex64(key));
                    self.journal_lock().record_done(key)?;
                }
            }
        }
        if !interrupted {
            self.journal_lock().end_batch(recovery.batch)?;
        }
        Ok(())
    }

    /// Runs one batch: instant cache hits, misses on the local pool or
    /// the attached fleet, streamed windows and lifecycle events,
    /// journaled crash safety, results merged in submission order,
    /// closing summary.
    fn run_batch<W: Write>(&self, batch: Vec<Pending>, out: &mut W) -> io::Result<()> {
        // Plan each job. Work items carry everything either lane needs.
        let mut plans: Vec<Plan> = Vec::with_capacity(batch.len());
        let mut work: Vec<WorkItem> = Vec::new();
        for p in &batch {
            let earlier = work.iter().position(|w| w.key == p.key);
            match (&p.cached, earlier) {
                (_, Some(w)) => plans.push(Plan::Alias(w)),
                (Some(payload), None) => {
                    if self.selected_for_verify(p.key) {
                        work.push(WorkItem {
                            id: p.spec.id.clone(),
                            cfg: p.spec.cfg.clone(),
                            key: p.key,
                            raw: p.raw.clone(),
                        });
                        plans.push(Plan::Verify(payload.clone(), work.len() - 1));
                    } else {
                        plans.push(Plan::Hit(payload.clone()));
                    }
                }
                (None, None) => {
                    work.push(WorkItem {
                        id: p.spec.id.clone(),
                        cfg: p.spec.cfg.clone(),
                        key: p.key,
                        raw: p.raw.clone(),
                    });
                    plans.push(Plan::Work(work.len() - 1));
                }
            }
        }

        // Journal the fresh computes (not verify re-runs — the cache
        // already holds their results) before any of them start: after
        // this fsync a SIGKILL anywhere in the batch is recoverable.
        let journaled: Vec<(u64, Json)> = batch
            .iter()
            .zip(&plans)
            .filter(|(_, plan)| matches!(plan, Plan::Work(_)))
            .map(|(p, _)| (p.key, p.raw.clone()))
            .collect();
        let journal_batch = if journaled.is_empty() {
            None
        } else {
            Some(self.journal_lock().begin_batch(&journaled)?)
        };

        // Answer pure hits immediately, in submission order.
        for (p, plan) in batch.iter().zip(&plans) {
            if let Plan::Hit(payload) = plan {
                emit_result(out, &p.spec.id, payload, true, false)?;
            }
        }

        // Simulate the rest: on the attached fleet when it has live
        // workers, on the local pool otherwise. Either lane streams
        // progress as it goes and returns one terminal outcome per work
        // item; result emission happens below in submission order, so
        // the client-visible stream is identical whichever lane ran the
        // work (and however many workers died along the way).
        let runner = self
            .remote
            .get()
            .filter(|r| !work.is_empty() && r.live_workers() > 0)
            .cloned();
        let outcomes: Vec<WorkOutcome> = match runner {
            Some(runner) => self.run_remote(&*runner, &work, out)?,
            None => self.run_local(&work, out),
        };

        // Post-run accounting in submission order: emit results, store
        // fresh ones, diff verified hits, fold the batch fingerprint.
        // Client writes are best-effort from here: a peer that vanished
        // mid-batch must not stop results from reaching the cache and
        // the journal (the work is already paid for).
        let mut write_err: Option<io::Error> = None;
        let mut best_effort = |r: io::Result<()>| {
            if let (Err(e), None) = (r, write_err.as_ref().map(|_| ())) {
                write_err = Some(e);
            }
        };
        let mut fp = Fingerprint::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut verified = 0u64;
        let mut mismatches = 0u64;
        let mut errors = 0u64;
        let mut interrupted = 0u64;
        for (p, plan) in batch.iter().zip(&plans) {
            match plan {
                Plan::Hit(payload) => {
                    hits += 1;
                    fp.write_str(payload);
                }
                Plan::Work(w) => match &outcomes[*w] {
                    Ok((payload, resumed)) => {
                        misses += 1;
                        best_effort(emit_result(out, &p.spec.id, payload, false, *resumed));
                        let struck = {
                            let mut cache = self.cache_lock();
                            let struck = cache.struck_out(p.key).then(|| cache.strikes(p.key));
                            if let Err(e) = cache.store(p.key, payload) {
                                drop(cache);
                                best_effort(emit(
                                    out,
                                    error_event_str(
                                        &p.spec.id,
                                        "cache",
                                        &format!("cache store: {e}"),
                                    ),
                                ));
                            }
                            struck
                        };
                        if let Some(strikes) = struck {
                            best_effort(emit(out, warn_event(&p.spec.id, p.key, strikes)));
                        }
                        self.journal_lock().record_done(p.key)?;
                        fp.write_str(payload);
                    }
                    Err(JobError::Interrupted) => {
                        interrupted += 1;
                        best_effort(emit(
                            out,
                            error_event_str(
                                &p.spec.id,
                                "interrupted",
                                "shutdown before completion; progress checkpointed — resubmit to resume",
                            ),
                        ));
                        fp.write_str("interrupted");
                    }
                    Err(JobError::Failed(e)) => {
                        errors += 1;
                        best_effort(emit(out, error_event_str(&p.spec.id, "run", e)));
                        self.journal_lock().record_done(p.key)?;
                        fp.write_str(&format!("error:{e}"));
                    }
                },
                Plan::Verify(cached, w) => match &outcomes[*w] {
                    // A verification re-run is still a cache hit from
                    // the client's point of view — it serves the
                    // *stored* payload so hits stay byte-stable even
                    // when the entry turns out to be stale.
                    Ok((payload, _)) => {
                        hits += 1;
                        best_effort(emit_result(out, &p.spec.id, cached, true, false));
                        if payload == cached {
                            verified += 1;
                        } else {
                            mismatches += 1;
                            best_effort(emit(
                                out,
                                error_event_str(
                                    &p.spec.id,
                                    "cache",
                                    "cache verification mismatch: stored payload differs from re-run",
                                ),
                            ));
                            // Trust the fresh run over the stale entry.
                            let _ = self.cache_lock().store(p.key, payload);
                        }
                        fp.write_str(payload);
                    }
                    Err(JobError::Interrupted) => {
                        // Verification was cut short; the stored entry
                        // is still the answer.
                        hits += 1;
                        best_effort(emit_result(out, &p.spec.id, cached, true, false));
                        fp.write_str(cached);
                    }
                    Err(JobError::Failed(e)) => {
                        errors += 1;
                        fp.write_str(&format!("error:{e}"));
                    }
                },
                Plan::Alias(w) => match &outcomes[*w] {
                    Ok((payload, _)) => {
                        hits += 1; // answered from this batch's own work
                        best_effort(emit_result(out, &p.spec.id, payload, true, false));
                        fp.write_str(payload);
                    }
                    Err(JobError::Interrupted) => {
                        interrupted += 1;
                        best_effort(emit(
                            out,
                            error_event_str(
                                &p.spec.id,
                                "interrupted",
                                "shutdown before completion; progress checkpointed — resubmit to resume",
                            ),
                        ));
                        fp.write_str("interrupted");
                    }
                    Err(JobError::Failed(e)) => {
                        errors += 1;
                        best_effort(emit(out, error_event_str(&p.spec.id, "run", e)));
                        fp.write_str(&format!("error:{e}"));
                    }
                },
            }
        }
        {
            let mut cache = self.cache_lock();
            cache.hits += hits;
            cache.misses += misses;
        }
        if let Some(n) = journal_batch {
            if interrupted == 0 {
                self.journal_lock().end_batch(n)?;
            }
        }
        if let Some(budget) = self.opts.cache_budget {
            self.cache_lock().evict_to_budget(budget)?;
        }

        let summary = emit(
            out,
            obj(vec![
                ("event", Json::Str("batch".into())),
                ("jobs", Json::Num(batch.len() as f64)),
                ("cache_hits", Json::Num(hits as f64)),
                ("cache_misses", Json::Num(misses as f64)),
                ("verified", Json::Num(verified as f64)),
                ("mismatches", Json::Num(mismatches as f64)),
                ("errors", Json::Num(errors as f64)),
                ("interrupted", Json::Num(interrupted as f64)),
                ("fingerprint", Json::Str(hex64(fp.finish()))),
            ]),
        );
        match write_err {
            Some(e) => Err(e),
            None => summary,
        }
    }

    /// Runs work items on the local [`WorkerPool`], streaming `window`
    /// events as workers progress. Returns one terminal outcome per
    /// item; results and errors are emitted later, in submission order.
    fn run_local<W: Write>(&self, work: &[WorkItem], out: &mut W) -> Vec<WorkOutcome> {
        let window = self.opts.window_cycles;
        let checkpoint_every = self.opts.checkpoint_every;
        let cache_dir = &self.opts.cache_dir;
        let stop = &self.stop;
        let sink = RefCell::new(out);
        self.pool.run_jobs(
            work.to_vec(),
            |_, item: WorkItem, progress| {
                let ckpt = ResultCache::checkpoint_path_in(cache_dir, item.key);
                let outcome = run_job(
                    &item.cfg,
                    window,
                    checkpoint_every,
                    Some(&ckpt),
                    Some(stop),
                    progress,
                )?;
                Ok((
                    result_payload(&item.cfg, &outcome.result, item.key),
                    outcome.resumed,
                ))
            },
            |i, w: WindowEvent| {
                let _ = emit(&mut **sink.borrow_mut(), window_event(&work[i].id, &w));
            },
            |_, _: &WorkOutcome| {},
        )
    }

    /// Dispatches work items to the attached fleet: relays its lease /
    /// window / retry / speculate lifecycle to the client, journals
    /// every lease grant for the post-mortem audit trail, counts
    /// determinism violations, and falls back to the local pool for any
    /// task the fleet hands back unrun (all workers died, retry budget
    /// drained) so a batch always reaches the same terminal outcomes a
    /// single-process server would produce.
    ///
    /// # Errors
    ///
    /// Propagates journal write failures; client writes are
    /// best-effort.
    fn run_remote<W: Write>(
        &self,
        runner: &dyn RemoteRunner,
        work: &[WorkItem],
        out: &mut W,
    ) -> io::Result<Vec<WorkOutcome>> {
        let tasks: Vec<RemoteTask> = work
            .iter()
            .map(|w| RemoteTask {
                id: w.id.clone(),
                key: w.key,
                spec: w.raw.clone(),
            })
            .collect();
        let mut journal_err: Option<io::Error> = None;
        let raw = {
            let journal_err = &mut journal_err;
            let mut events = |ev: RemoteEvent| {
                let line = match ev {
                    RemoteEvent::Lease {
                        task,
                        worker,
                        attempt,
                        lease_ms,
                    } => {
                        let item = &work[task];
                        if let Err(e) = self
                            .journal_lock()
                            .record_lease(item.key, worker, attempt, lease_ms)
                        {
                            journal_err.get_or_insert(e);
                        }
                        obj(vec![
                            ("event", Json::Str("lease".into())),
                            ("id", Json::Str(item.id.clone())),
                            ("worker", Json::Num(worker as f64)),
                            ("attempt", Json::Num(f64::from(attempt))),
                            ("lease_ms", Json::Num(lease_ms as f64)),
                        ])
                    }
                    RemoteEvent::Window {
                        task,
                        cycle,
                        issued,
                        retired,
                    } => window_event(
                        &work[task].id,
                        &WindowEvent {
                            cycle,
                            issued,
                            retired,
                        },
                    ),
                    RemoteEvent::Retry {
                        task,
                        attempt,
                        reason,
                        backoff_ms,
                    } => obj(vec![
                        ("event", Json::Str("retry".into())),
                        ("id", Json::Str(work[task].id.clone())),
                        ("attempt", Json::Num(f64::from(attempt))),
                        ("reason", Json::Str(reason)),
                        ("backoff_ms", Json::Num(backoff_ms as f64)),
                    ]),
                    RemoteEvent::Speculate { task, worker } => obj(vec![
                        ("event", Json::Str("speculate".into())),
                        ("id", Json::Str(work[task].id.clone())),
                        ("worker", Json::Num(worker as f64)),
                    ]),
                };
                let _ = emit(out, line);
            };
            runner.run_tasks(tasks, &self.stop, &mut events)
        };
        if let Some(e) = journal_err {
            return Err(e);
        }
        debug_assert_eq!(raw.len(), work.len(), "one outcome per task");
        let mut outcomes: Vec<Option<WorkOutcome>> = Vec::with_capacity(work.len());
        let mut fallback: Vec<usize> = Vec::new();
        for (i, o) in raw.into_iter().enumerate() {
            outcomes.push(match o {
                RemoteOutcome::Done { payload } => Some(Ok((payload, false))),
                RemoteOutcome::Failed(e) => Some(Err(JobError::Failed(e))),
                RemoteOutcome::Divergent { first, second } => {
                    self.determinism_violations.fetch_add(1, Ordering::SeqCst);
                    let msg = format!(
                        "determinism violation: duplicate runs of key {} returned \
                         different payloads ({} vs {})",
                        hex64(work[i].key),
                        hex64(first),
                        hex64(second)
                    );
                    eprintln!("ringmesh serve: {msg}");
                    Some(Err(JobError::Failed(msg)))
                }
                RemoteOutcome::Unrun if self.stop.is_set() => Some(Err(JobError::Interrupted)),
                RemoteOutcome::Unrun => {
                    fallback.push(i);
                    None
                }
            });
        }
        if !fallback.is_empty() {
            let _ = emit(
                out,
                obj(vec![
                    ("event", Json::Str("fallback".into())),
                    ("jobs", Json::Num(fallback.len() as f64)),
                    (
                        "reason",
                        Json::Str("fleet could not finish; running locally".into()),
                    ),
                ]),
            );
            let items: Vec<WorkItem> = fallback.iter().map(|&i| work[i].clone()).collect();
            let local = self.run_local(&items, out);
            for (slot, r) in fallback.into_iter().zip(local) {
                outcomes[slot] = Some(r);
            }
        }
        Ok(outcomes
            .into_iter()
            .map(|o| o.expect("every task reaches a terminal outcome"))
            .collect())
    }

    /// Deterministic verification sampling: stable in the key, so the
    /// same job is either always or never re-checked at a given
    /// fraction.
    fn selected_for_verify(&self, key: u64) -> bool {
        let f = self.opts.verify_fraction.clamp(0.0, 1.0);
        (key % 10_000) < (f * 10_000.0) as u64
    }
}

/// What one bounded line read produced.
enum LineRead {
    /// A complete line (newline stripped), at most the cap in bytes.
    Line(Vec<u8>),
    /// A line longer than the cap; the excess was discarded through its
    /// newline.
    Oversized,
    /// The transport reported a read timeout (poll tick); the partial
    /// line, if any, stays buffered.
    TimedOut,
    /// End of input (a final unterminated line is returned first).
    Eof,
}

/// A line reader with a hard byte cap and timeout transparency: reads
/// never allocate beyond the cap no matter what the peer sends, and a
/// socket read timeout surfaces as [`LineRead::TimedOut`] without
/// losing buffered partial input.
struct LineReader<R> {
    inner: R,
    scratch: Vec<u8>,
    /// Inside an oversized line, discarding until its newline.
    discarding: bool,
    max: usize,
}

impl<R: BufRead> LineReader<R> {
    fn new(inner: R, max: usize) -> Self {
        LineReader {
            inner,
            scratch: Vec::new(),
            discarding: false,
            max,
        }
    }

    fn next_line(&mut self) -> io::Result<LineRead> {
        loop {
            let buf = match self.inner.fill_buf() {
                Ok(buf) => buf,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    return Ok(LineRead::TimedOut);
                }
                Err(e) => return Err(e),
            };
            if buf.is_empty() {
                // EOF: flush any final unterminated line first.
                if self.discarding {
                    self.discarding = false;
                    return Ok(LineRead::Oversized);
                }
                if self.scratch.is_empty() {
                    return Ok(LineRead::Eof);
                }
                return Ok(LineRead::Line(std::mem::take(&mut self.scratch)));
            }
            let newline = buf.iter().position(|&b| b == b'\n');
            if self.discarding {
                let n = newline.map_or(buf.len(), |p| p + 1);
                self.inner.consume(n);
                if newline.is_some() {
                    self.discarding = false;
                    return Ok(LineRead::Oversized);
                }
                continue;
            }
            match newline {
                Some(p) => {
                    self.scratch.extend_from_slice(&buf[..p]);
                    self.inner.consume(p + 1);
                    if self.scratch.len() > self.max {
                        self.scratch.clear();
                        return Ok(LineRead::Oversized);
                    }
                    return Ok(LineRead::Line(std::mem::take(&mut self.scratch)));
                }
                None => {
                    let n = buf.len();
                    self.scratch.extend_from_slice(buf);
                    self.inner.consume(n);
                    if self.scratch.len() > self.max {
                        // Too long already; drop it and skip to newline.
                        self.scratch.clear();
                        self.discarding = true;
                    }
                }
            }
        }
    }
}

/// The canonical result payload for one completed job. Deterministic by
/// construction (insertion-ordered members, shortest-round-trip floats)
/// so equal results serialize to byte-identical text — remote workers
/// build their payloads through this exact function, which is what lets
/// the coordinator hash-compare duplicate attempts byte for byte.
pub fn result_payload(cfg: &SystemConfig, r: &RunResult, key: u64) -> String {
    let mut members = vec![
        ("schema", Json::Str("ringmesh-serve/1".into())),
        ("key", Json::Str(hex64(key))),
        ("config", Json::Str(cfg.canonical())),
        ("network", Json::Str(cfg.network.label())),
        ("pms", Json::Num(r.pms as f64)),
        (
            "latency",
            obj(vec![
                ("mean", Json::Num(r.latency.mean)),
                ("ci95", Json::Num(r.latency.ci95)),
                ("std_dev", Json::Num(r.latency.std_dev)),
                ("min", Json::Num(r.latency.min)),
                ("max", Json::Num(r.latency.max)),
                ("batches", Json::Num(r.latency.n as f64)),
            ]),
        ),
    ];
    if let Some((p50, p95, p99)) = r.percentiles {
        members.push((
            "percentiles",
            obj(vec![
                ("p50", Json::Num(p50)),
                ("p95", Json::Num(p95)),
                ("p99", Json::Num(p99)),
            ]),
        ));
    }
    members.push(("throughput", Json::Num(r.throughput)));
    members.push(("utilization", Json::Num(r.utilization.overall)));
    members.push((
        "levels",
        Json::Arr(
            r.utilization
                .levels
                .iter()
                .map(|l| {
                    obj(vec![
                        ("label", Json::Str(l.label.clone())),
                        ("utilization", Json::Num(l.utilization)),
                    ])
                })
                .collect(),
        ),
    ));
    members.push(("issued", Json::Num(r.workload.issued as f64)));
    members.push(("retired", Json::Num(r.workload.retired as f64)));
    members.push(("fingerprint", Json::Str(hex64(r.fingerprint()))));
    obj(members).to_string()
}

fn emit<W: Write>(out: &mut W, event: Json) -> io::Result<()> {
    writeln!(out, "{event}")?;
    out.flush()
}

/// Writes a `result` event with the payload embedded under `"data"`.
/// The payload is spliced in verbatim — it is already serialized JSON
/// and must stay byte-identical between cached and fresh emission.
fn emit_result<W: Write>(
    out: &mut W,
    id: &str,
    payload: &str,
    cached: bool,
    resumed: bool,
) -> io::Result<()> {
    let head = obj(vec![
        ("event", Json::Str("result".into())),
        ("id", Json::Str(id.to_string())),
        ("cached", Json::Bool(cached)),
        ("resumed", Json::Bool(resumed)),
    ])
    .to_string();
    // head is "{...}"; replace the closing brace with ,"data":payload}.
    writeln!(out, "{},\"data\":{}}}", &head[..head.len() - 1], payload)?;
    out.flush()
}

/// Windowed-progress event for one job, identical whichever lane
/// (local pool or remote worker) produced the window.
fn window_event(id: &str, w: &WindowEvent) -> Json {
    obj(vec![
        ("event", Json::Str("window".into())),
        ("id", Json::Str(id.to_string())),
        ("cycle", Json::Num(w.cycle as f64)),
        ("issued", Json::Num(w.issued as f64)),
        ("retired", Json::Num(w.retired as f64)),
    ])
}

/// Non-fatal advisory: the key's cache slot keeps corrupting, so the
/// server stopped rewriting it and answers by recomputation.
fn warn_event(id: &str, key: u64, strikes: u32) -> Json {
    obj(vec![
        ("event", Json::Str("warn".into())),
        ("id", Json::Str(id.to_string())),
        ("code", Json::Str("cache-backoff".into())),
        (
            "message",
            Json::Str(format!(
                "cache slot for key {} quarantined {strikes} times; \
                 store suppressed, serving by recomputation",
                hex64(key)
            )),
        ),
    ])
}

/// Typed load-shedding event: `scope` names the saturated limit.
fn busy_event(scope: &str, limit: usize) -> Json {
    obj(vec![
        ("event", Json::Str("busy".into())),
        ("scope", Json::Str(scope.to_string())),
        ("limit", Json::Num(limit as f64)),
        ("retry", Json::Bool(true)),
    ])
}

fn error_event(id: Option<&Json>, code: &str, message: &str) -> Json {
    let mut members = vec![("event", Json::Str("error".into()))];
    if let Some(Json::Str(id)) = id {
        members.push(("id", Json::Str(id.clone())));
    }
    members.push(("code", Json::Str(code.to_string())));
    members.push(("message", Json::Str(message.to_string())));
    obj(members)
}

fn error_event_str(id: &str, code: &str, message: &str) -> Json {
    obj(vec![
        ("event", Json::Str("error".into())),
        ("id", Json::Str(id.to_string())),
        ("code", Json::Str(code.to_string())),
        ("message", Json::Str(message.to_string())),
    ])
}
