//! The sweep-job server: line-delimited JSON over any byte stream.
//!
//! One request per line, one or more event lines back. Ops:
//!
//! | request                         | events                                  |
//! |---------------------------------|-----------------------------------------|
//! | `{"op":"job", ...}`             | `accepted` (job queued for the batch)   |
//! | `{"op":"run"}`                  | `window`* / `result`* then one `batch`  |
//! | `{"op":"stats"}`                | `stats` (cache counters)                |
//! | `{"op":"quit"}`                 | `bye`, connection closes                |
//! | `{"op":"shutdown"}`             | `bye`, TCP accept loop stops too        |
//!
//! `run` answers cache hits instantly from the content-addressed store
//! and schedules the misses on the shared [`WorkerPool`]; `window` and
//! `result` events stream as workers progress (each tagged with the
//! job id), and the closing `batch` line carries hit/miss counters plus
//! a combined fingerprint over all results in submission order — two
//! batches of identical jobs produce byte-identical `result` data and
//! equal batch fingerprints whether computed or cached.

use std::cell::RefCell;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;

use ringmesh::{RunResult, SystemConfig, WorkerPool};
use ringmesh_snap::{hex64, Fingerprint};
use ringmesh_trace::TraceConfig;

use crate::cache::ResultCache;
use crate::jobspec::{parse_job, JobSpec};
use crate::json::{obj, Json};
use crate::runner::{run_job, WindowEvent};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Result-cache directory.
    pub cache_dir: PathBuf,
    /// Worker threads (`None` = the pool's default sizing).
    pub threads: Option<usize>,
    /// Fraction of cache hits to deterministically re-run and diff
    /// bit-for-bit against the stored payload (`--verify-cache`).
    pub verify_fraction: f64,
    /// Cycles between state checkpoints for in-flight jobs (0 = off).
    pub checkpoint_every: u64,
    /// Progress-window length in cycles; defaults to the ringmesh-trace
    /// sampling window so streamed stats line up with trace reports.
    pub window_cycles: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            cache_dir: PathBuf::from(".ringmesh-cache"),
            threads: None,
            verify_fraction: 0.0,
            checkpoint_every: 0,
            window_cycles: TraceConfig::default().window_cycles,
        }
    }
}

/// How a serve session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeExit {
    /// Input ended or the client sent `quit`; a TCP server keeps
    /// accepting connections.
    Quit,
    /// The client sent `shutdown`; a TCP server stops accepting.
    Shutdown,
}

/// A sweep-job server: shared result cache + worker pool, serving any
/// number of sequential sessions.
#[derive(Debug)]
pub struct Server {
    opts: ServeOptions,
    cache: ResultCache,
    pool: WorkerPool,
}

/// One queued job and what the cache already knows about it.
#[derive(Debug)]
struct Pending {
    spec: JobSpec,
    key: u64,
    cached: Option<String>,
}

/// What `run` decided to do with one pending job.
#[derive(Debug)]
enum Plan {
    /// Serve the stored payload as-is.
    Hit(String),
    /// Simulate (index into the work-item vector).
    Work(usize),
    /// Cache hit selected for verification: serve the stored payload,
    /// but also re-run (work index) and diff.
    Verify(String, usize),
    /// Same key as an earlier job in this batch; reuse its outcome.
    Alias(usize),
}

impl Server {
    /// Opens the cache and spins up the worker pool.
    ///
    /// # Errors
    ///
    /// Fails if the cache directory cannot be created.
    pub fn new(opts: ServeOptions) -> io::Result<Server> {
        let cache = ResultCache::open(&opts.cache_dir)?;
        let pool = match opts.threads {
            Some(n) => WorkerPool::new(n),
            None => WorkerPool::default(),
        };
        Ok(Server { opts, cache, pool })
    }

    /// Serves one session: reads requests line by line from `input`,
    /// writes event lines to `out`, until EOF / `quit` / `shutdown`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors on the transport.
    pub fn serve<R: BufRead, W: Write>(&mut self, input: R, mut out: W) -> io::Result<ServeExit> {
        let mut pending: Vec<Pending> = Vec::new();
        let mut next_id = 0usize;
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let req = match Json::parse(&line) {
                Ok(v) => v,
                Err(e) => {
                    emit(&mut out, error_event(None, &format!("bad request: {e}")))?;
                    continue;
                }
            };
            match req.get("op").and_then(Json::as_str) {
                Some("job") => {
                    let default_id = format!("job-{next_id}");
                    match parse_job(&req, &default_id) {
                        Ok(spec) => {
                            next_id += 1;
                            let key = ResultCache::key(&spec.cfg);
                            let cached = self.cache.lookup(key);
                            emit(
                                &mut out,
                                obj(vec![
                                    ("event", Json::Str("accepted".into())),
                                    ("id", Json::Str(spec.id.clone())),
                                    ("key", Json::Str(hex64(key))),
                                    ("cached", Json::Bool(cached.is_some())),
                                ]),
                            )?;
                            pending.push(Pending { spec, key, cached });
                        }
                        Err(e) => emit(&mut out, error_event(req.get("id"), &e))?,
                    }
                }
                Some("run") => {
                    let batch = std::mem::take(&mut pending);
                    self.run_batch(batch, &mut out)?;
                }
                Some("stats") => {
                    emit(
                        &mut out,
                        obj(vec![
                            ("event", Json::Str("stats".into())),
                            ("cache_hits", Json::Num(self.cache.hits as f64)),
                            ("cache_misses", Json::Num(self.cache.misses as f64)),
                            ("cache_entries", Json::Num(self.cache.entries() as f64)),
                            ("pending", Json::Num(pending.len() as f64)),
                        ]),
                    )?;
                }
                Some("quit") => {
                    emit(&mut out, obj(vec![("event", Json::Str("bye".into()))]))?;
                    return Ok(ServeExit::Quit);
                }
                Some("shutdown") => {
                    emit(&mut out, obj(vec![("event", Json::Str("bye".into()))]))?;
                    return Ok(ServeExit::Shutdown);
                }
                other => {
                    let msg = match other {
                        Some(op) => format!("unknown op '{op}'"),
                        None => "missing 'op' field".to_string(),
                    };
                    emit(&mut out, error_event(None, &msg))?;
                }
            }
        }
        Ok(ServeExit::Quit)
    }

    /// Binds `addr` and serves connections one at a time until a client
    /// sends `shutdown`.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept errors; per-connection transport errors
    /// end that session only.
    pub fn serve_tcp(&mut self, addr: &str) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        eprintln!("ringmesh serve: listening on {}", listener.local_addr()?);
        for stream in listener.incoming() {
            let stream = stream?;
            let reader = BufReader::new(stream.try_clone()?);
            match self.serve(reader, stream) {
                Ok(ServeExit::Shutdown) => return Ok(()),
                Ok(ServeExit::Quit) => {}
                Err(e) => eprintln!("ringmesh serve: session error: {e}"),
            }
        }
        Ok(())
    }

    /// Runs one batch: instant cache hits, pooled misses, streamed
    /// windows/results, closing summary.
    fn run_batch<W: Write>(&mut self, batch: Vec<Pending>, out: &mut W) -> io::Result<()> {
        // Plan each job. Work items carry everything the worker needs.
        let mut plans: Vec<Plan> = Vec::with_capacity(batch.len());
        // Work item: (id, config, key, is a cache-verification re-run).
        let mut work: Vec<(String, SystemConfig, u64, bool)> = Vec::new();
        for p in &batch {
            let earlier = work.iter().position(|&(_, _, k, _)| k == p.key);
            match (&p.cached, earlier) {
                (_, Some(w)) => plans.push(Plan::Alias(w)),
                (Some(payload), None) => {
                    if self.selected_for_verify(p.key) {
                        work.push((p.spec.id.clone(), p.spec.cfg.clone(), p.key, true));
                        plans.push(Plan::Verify(payload.clone(), work.len() - 1));
                    } else {
                        plans.push(Plan::Hit(payload.clone()));
                    }
                }
                (None, None) => {
                    work.push((p.spec.id.clone(), p.spec.cfg.clone(), p.key, false));
                    plans.push(Plan::Work(work.len() - 1));
                }
            }
        }

        // Answer pure hits immediately, in submission order.
        for (p, plan) in batch.iter().zip(&plans) {
            if let Plan::Hit(payload) = plan {
                emit_result(out, &p.spec.id, payload, true, false)?;
            }
        }

        // Simulate the rest on the pool, streaming as workers go.
        let window = self.opts.window_cycles;
        let checkpoint_every = self.opts.checkpoint_every;
        let cache = &self.cache;
        let sink = RefCell::new(&mut *out);
        let outcomes: Vec<Result<(String, u64, bool), String>> = self.pool.run_jobs(
            work.clone(),
            |_, (_, cfg, key, _), progress| {
                let ckpt = cache.checkpoint_path(key);
                let outcome = run_job(&cfg, window, checkpoint_every, Some(&ckpt), progress)?;
                Ok((
                    result_payload(&cfg, &outcome.result, key),
                    outcome.result.fingerprint(),
                    outcome.resumed,
                ))
            },
            |i, w: WindowEvent| {
                let (id, _, _, _) = &work[i];
                let _ = emit(
                    &mut **sink.borrow_mut(),
                    obj(vec![
                        ("event", Json::Str("window".into())),
                        ("id", Json::Str(id.clone())),
                        ("cycle", Json::Num(w.cycle as f64)),
                        ("issued", Json::Num(w.issued as f64)),
                        ("retired", Json::Num(w.retired as f64)),
                    ]),
                );
            },
            |i, r: &Result<(String, u64, bool), String>| {
                let (id, _, _, is_verify) = &work[i];
                let _ = match r {
                    // A verification re-run is still a cache hit from
                    // the client's point of view — and must stream the
                    // *stored* payload so hits stay byte-stable even
                    // when the entry turns out to be stale (the diff
                    // and repair happen after the batch completes).
                    Ok(_) if *is_verify => Ok(()),
                    Ok((payload, _, resumed)) => {
                        emit_result(&mut **sink.borrow_mut(), id, payload, false, *resumed)
                    }
                    Err(e) => emit(&mut **sink.borrow_mut(), error_event_str(id, e)),
                };
            },
        );
        let _ = sink;

        // Post-run accounting in submission order: store fresh results,
        // diff verified hits, emit aliases, fold the batch fingerprint.
        let mut fp = Fingerprint::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut verified = 0u64;
        let mut mismatches = 0u64;
        let mut errors = 0u64;
        for (p, plan) in batch.iter().zip(&plans) {
            match plan {
                Plan::Hit(payload) => {
                    hits += 1;
                    fp.write_str(payload);
                }
                Plan::Work(w) => match &outcomes[*w] {
                    Ok((payload, _, _)) => {
                        misses += 1;
                        if let Err(e) = self.cache.store(p.key, payload) {
                            emit(
                                out,
                                error_event_str(&p.spec.id, &format!("cache store: {e}")),
                            )?;
                        }
                        fp.write_str(payload);
                    }
                    Err(e) => {
                        errors += 1;
                        fp.write_str(&format!("error:{e}"));
                    }
                },
                Plan::Verify(cached, w) => match &outcomes[*w] {
                    Ok((payload, _, _)) => {
                        hits += 1;
                        emit_result(out, &p.spec.id, cached, true, false)?;
                        if payload == cached {
                            verified += 1;
                        } else {
                            mismatches += 1;
                            emit(
                                out,
                                error_event_str(
                                    &p.spec.id,
                                    "cache verification mismatch: stored payload differs from re-run",
                                ),
                            )?;
                            // Trust the fresh run over the stale entry.
                            let _ = self.cache.store(p.key, payload);
                        }
                        fp.write_str(payload);
                    }
                    Err(e) => {
                        errors += 1;
                        fp.write_str(&format!("error:{e}"));
                    }
                },
                Plan::Alias(w) => match &outcomes[*w] {
                    Ok((payload, _, _)) => {
                        hits += 1; // answered from this batch's own work
                        emit_result(out, &p.spec.id, payload, true, false)?;
                        fp.write_str(payload);
                    }
                    Err(e) => {
                        errors += 1;
                        emit(out, error_event_str(&p.spec.id, e))?;
                        fp.write_str(&format!("error:{e}"));
                    }
                },
            }
        }
        self.cache.hits += hits;
        self.cache.misses += misses;

        emit(
            out,
            obj(vec![
                ("event", Json::Str("batch".into())),
                ("jobs", Json::Num(batch.len() as f64)),
                ("cache_hits", Json::Num(hits as f64)),
                ("cache_misses", Json::Num(misses as f64)),
                ("verified", Json::Num(verified as f64)),
                ("mismatches", Json::Num(mismatches as f64)),
                ("errors", Json::Num(errors as f64)),
                ("fingerprint", Json::Str(hex64(fp.finish()))),
            ]),
        )
    }

    /// Deterministic verification sampling: stable in the key, so the
    /// same job is either always or never re-checked at a given
    /// fraction.
    fn selected_for_verify(&self, key: u64) -> bool {
        let f = self.opts.verify_fraction.clamp(0.0, 1.0);
        (key % 10_000) < (f * 10_000.0) as u64
    }

    /// Cache hit/miss totals so far (hits, misses).
    pub fn cache_counters(&self) -> (u64, u64) {
        (self.cache.hits, self.cache.misses)
    }
}

/// The canonical result payload for one completed job. Deterministic by
/// construction (insertion-ordered members, shortest-round-trip floats)
/// so equal results serialize to byte-identical text.
fn result_payload(cfg: &SystemConfig, r: &RunResult, key: u64) -> String {
    let mut members = vec![
        ("schema", Json::Str("ringmesh-serve/1".into())),
        ("key", Json::Str(hex64(key))),
        ("config", Json::Str(cfg.canonical())),
        ("network", Json::Str(cfg.network.label())),
        ("pms", Json::Num(r.pms as f64)),
        (
            "latency",
            obj(vec![
                ("mean", Json::Num(r.latency.mean)),
                ("ci95", Json::Num(r.latency.ci95)),
                ("std_dev", Json::Num(r.latency.std_dev)),
                ("min", Json::Num(r.latency.min)),
                ("max", Json::Num(r.latency.max)),
                ("batches", Json::Num(r.latency.n as f64)),
            ]),
        ),
    ];
    if let Some((p50, p95, p99)) = r.percentiles {
        members.push((
            "percentiles",
            obj(vec![
                ("p50", Json::Num(p50)),
                ("p95", Json::Num(p95)),
                ("p99", Json::Num(p99)),
            ]),
        ));
    }
    members.push(("throughput", Json::Num(r.throughput)));
    members.push(("utilization", Json::Num(r.utilization.overall)));
    members.push((
        "levels",
        Json::Arr(
            r.utilization
                .levels
                .iter()
                .map(|l| {
                    obj(vec![
                        ("label", Json::Str(l.label.clone())),
                        ("utilization", Json::Num(l.utilization)),
                    ])
                })
                .collect(),
        ),
    ));
    members.push(("issued", Json::Num(r.workload.issued as f64)));
    members.push(("retired", Json::Num(r.workload.retired as f64)));
    members.push(("fingerprint", Json::Str(hex64(r.fingerprint()))));
    obj(members).to_string()
}

fn emit<W: Write>(out: &mut W, event: Json) -> io::Result<()> {
    writeln!(out, "{event}")?;
    out.flush()
}

/// Writes a `result` event with the payload embedded under `"data"`.
/// The payload is spliced in verbatim — it is already serialized JSON
/// and must stay byte-identical between cached and fresh emission.
fn emit_result<W: Write>(
    out: &mut W,
    id: &str,
    payload: &str,
    cached: bool,
    resumed: bool,
) -> io::Result<()> {
    let head = obj(vec![
        ("event", Json::Str("result".into())),
        ("id", Json::Str(id.to_string())),
        ("cached", Json::Bool(cached)),
        ("resumed", Json::Bool(resumed)),
    ])
    .to_string();
    // head is "{...}"; replace the closing brace with ,"data":payload}.
    writeln!(out, "{},\"data\":{}}}", &head[..head.len() - 1], payload)?;
    out.flush()
}

fn error_event(id: Option<&Json>, message: &str) -> Json {
    let mut members = vec![("event", Json::Str("error".into()))];
    if let Some(Json::Str(id)) = id {
        members.push(("id", Json::Str(id.clone())));
    }
    members.push(("message", Json::Str(message.to_string())));
    obj(members)
}

fn error_event_str(id: &str, message: &str) -> Json {
    obj(vec![
        ("event", Json::Str("error".into())),
        ("id", Json::Str(id.to_string())),
        ("message", Json::Str(message.to_string())),
    ])
}
