//! Content-addressed result cache with checkpoint side-files.
//!
//! A cache key digests the *canonicalized* configuration (every
//! output-relevant field, floats as raw bits — see
//! [`SystemConfig::canonical`]) together with the code version, so a
//! key can only ever map to one bit-exact result. Layout on disk:
//!
//! ```text
//! .ringmesh-cache/
//!   ab/abcd0123deadbeef.json   completed result payload
//!   ab/abcd0123deadbeef.ckpt   in-progress checkpoint (deleted on completion)
//! ```
//!
//! Entries are written via a temp file + rename so readers never see a
//! torn payload, and an interrupted server leaves at worst a stale
//! `.tmp` that the next write replaces.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ringmesh::SystemConfig;
use ringmesh_snap::{hex64, Fingerprint};

/// The code-version component of every cache key. Bumping the crate
/// version invalidates all cached results, which is exactly right: a
/// new simulator build may produce different (still deterministic)
/// numbers.
pub const CODE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// A directory of content-addressed result payloads plus hit/miss
/// accounting for the server's summary lines.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    /// Jobs answered from a stored payload without simulating.
    pub hits: u64,
    /// Jobs that had to simulate (their results are then stored).
    pub misses: u64,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: &Path) -> io::Result<ResultCache> {
        fs::create_dir_all(dir)?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
            hits: 0,
            misses: 0,
        })
    }

    /// The content key for a configuration under the current code
    /// version.
    pub fn key(cfg: &SystemConfig) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_str(&cfg.canonical());
        fp.write_str("|code=");
        fp.write_str(CODE_VERSION);
        fp.finish()
    }

    fn shard(&self, key: u64) -> PathBuf {
        self.dir.join(&hex64(key)[..2])
    }

    /// Path of the stored result payload for `key`.
    pub fn result_path(&self, key: u64) -> PathBuf {
        self.shard(key).join(format!("{}.json", hex64(key)))
    }

    /// Path of the in-progress checkpoint for `key`.
    pub fn checkpoint_path(&self, key: u64) -> PathBuf {
        self.shard(key).join(format!("{}.ckpt", hex64(key)))
    }

    /// The stored payload for `key`, if one exists.
    pub fn lookup(&self, key: u64) -> Option<String> {
        fs::read_to_string(self.result_path(key)).ok()
    }

    /// Stores `payload` as the result for `key` (atomic via rename) and
    /// drops any leftover checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the cache is an optimization, so
    /// callers may choose to log and continue.
    pub fn store(&self, key: u64, payload: &str) -> io::Result<()> {
        let path = self.result_path(key);
        write_atomic(&path, payload.as_bytes())?;
        let _ = fs::remove_file(self.checkpoint_path(key));
        Ok(())
    }

    /// Number of completed result entries on disk.
    pub fn entries(&self) -> usize {
        let mut n = 0;
        if let Ok(shards) = fs::read_dir(&self.dir) {
            for shard in shards.flatten() {
                if let Ok(files) = fs::read_dir(shard.path()) {
                    n += files
                        .flatten()
                        .filter(|f| f.path().extension().is_some_and(|e| e == "json"))
                        .count();
                }
            }
        }
        n
    }
}

/// Writes `bytes` to `path` through a sibling temp file + rename, so a
/// crash can never leave a half-written file at `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use ringmesh::{NetworkSpec, SystemConfig};
    use ringmesh_net::CacheLineSize;

    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ringmesh-serve-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_track_config_identity_and_code_version() {
        let a = SystemConfig::new(NetworkSpec::mesh(3), CacheLineSize::B64);
        assert_eq!(ResultCache::key(&a), ResultCache::key(&a.clone()));
        assert_ne!(
            ResultCache::key(&a),
            ResultCache::key(&a.clone().with_seed(1))
        );
        // The key covers more than the config alone.
        assert_ne!(ResultCache::key(&a), a.fingerprint());
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let dir = tempdir("store");
        let cache = ResultCache::open(&dir).unwrap();
        let cfg = SystemConfig::new(NetworkSpec::mesh(3), CacheLineSize::B64);
        let key = ResultCache::key(&cfg);
        assert_eq!(cache.lookup(key), None);
        assert_eq!(cache.entries(), 0);
        cache.store(key, "{\"x\":1}").unwrap();
        assert_eq!(cache.lookup(key).as_deref(), Some("{\"x\":1}"));
        assert_eq!(cache.entries(), 1);
        // Overwrites are atomic replacements, not appends.
        cache.store(key, "{\"x\":2}").unwrap();
        assert_eq!(cache.lookup(key).as_deref(), Some("{\"x\":2}"));
        assert_eq!(cache.entries(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn storing_a_result_clears_its_checkpoint() {
        let dir = tempdir("ckpt");
        let cache = ResultCache::open(&dir).unwrap();
        let key = 0xabcd_0123_dead_beef;
        write_atomic(&cache.checkpoint_path(key), b"state").unwrap();
        assert!(cache.checkpoint_path(key).exists());
        cache.store(key, "{}").unwrap();
        assert!(!cache.checkpoint_path(key).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
