//! Content-addressed result cache with integrity footers, quarantine,
//! and deterministic size-budgeted eviction.
//!
//! A cache key digests the *canonicalized* configuration (every
//! output-relevant field, floats as raw bits — see
//! [`SystemConfig::canonical`]) together with the code version, so a
//! key can only ever map to one bit-exact result. Layout on disk:
//!
//! ```text
//! .ringmesh-cache/
//!   ab/abcd0123deadbeef.json   sealed result payload (FNV footer)
//!   ab/abcd0123deadbeef.ckpt   in-progress checkpoint (deleted on completion)
//!   access.log                 append-only key-touch order (eviction recency)
//!   journal.wal                durable batch journal (see crate::journal)
//!   quarantine/                entries that failed integrity verification
//! ```
//!
//! Three robustness layers compose:
//!
//! - **Atomic writes.** Entries land via a temp file + rename, so a
//!   crash can never leave a half-written file at the entry path.
//! - **Integrity footers.** Every sealed entry ends with an FNV-1a
//!   digest of its payload (`\n#fnv64=<16 hex>\n`). [`ResultCache::lookup`]
//!   verifies the footer on every read; a torn, truncated, or tampered
//!   entry is moved to `quarantine/` and reported as a miss, so the
//!   server transparently recomputes it — the cache self-heals instead
//!   of serving poison.
//! - **Deterministic eviction.** Key touches (stores and hits) append to
//!   `access.log`; [`ResultCache::evict_to_budget`] drops
//!   least-recently-touched entries (ties broken by key) until the
//!   cache fits the budget. Recency comes from the log, never from
//!   filesystem timestamps, so two hosts that served the same request
//!   history evict the same entries in the same order.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use ringmesh::SystemConfig;
use ringmesh_snap::{hex64, parse_hex64, Fingerprint};

/// The code-version component of every cache key. Bumping the crate
/// version invalidates all cached results, which is exactly right: a
/// new simulator build may produce different (still deterministic)
/// numbers.
pub const CODE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Marker that introduces the integrity footer of a sealed entry.
pub const FOOTER_PREFIX: &str = "\n#fnv64=";

/// How many times one key may be quarantined before the cache stops
/// rewriting its slot. A slot that keeps corrupting (bad sector, bad
/// RAM, hostile tampering) would otherwise drive an unbounded
/// quarantine → recompute → store → corrupt loop; past this limit the
/// key is answered by recomputation alone and the server emits a
/// `warn` event instead of churning the disk.
pub const QUARANTINE_STRIKE_LIMIT: u32 = 3;

/// Name of the quarantine directory under the cache root.
const QUARANTINE_DIR: &str = "quarantine";

/// Name of the key-touch order log under the cache root.
const ACCESS_LOG: &str = "access.log";

/// A directory of content-addressed result payloads plus hit/miss,
/// quarantine, and eviction accounting for the server's summary lines.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    /// Jobs answered from a stored payload without simulating.
    pub hits: u64,
    /// Jobs that had to simulate (their results are then stored).
    pub misses: u64,
    /// Entries that failed integrity verification and were quarantined.
    pub quarantined: u64,
    /// Entries evicted by the size budget.
    pub evicted: u64,
    /// Stores suppressed because the key struck out (see
    /// [`QUARANTINE_STRIKE_LIMIT`]).
    pub suppressed_stores: u64,
    /// Per-key quarantine counts this process lifetime.
    strikes: HashMap<u64, u32>,
    /// Key touches in order (recency = last occurrence), mirrored to
    /// `access.log`.
    touches: Vec<u64>,
    /// Open append handle for `access.log`.
    log: Option<File>,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`, loading and
    /// compacting the access log.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: &Path) -> io::Result<ResultCache> {
        fs::create_dir_all(dir)?;
        let touches = recency_order(&read_touch_log(dir));
        write_touch_log(dir, &touches)?;
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(ACCESS_LOG))?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
            hits: 0,
            misses: 0,
            quarantined: 0,
            evicted: 0,
            suppressed_stores: 0,
            strikes: HashMap::new(),
            touches,
            log: Some(log),
        })
    }

    /// The content key for a configuration under the current code
    /// version.
    pub fn key(cfg: &SystemConfig) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_str(&cfg.canonical());
        fp.write_str("|code=");
        fp.write_str(CODE_VERSION);
        fp.finish()
    }

    /// Path of the stored result payload for `key` under `dir` — usable
    /// without holding the cache itself (the server computes checkpoint
    /// paths from worker threads while the cache is locked elsewhere).
    pub fn result_path_in(dir: &Path, key: u64) -> PathBuf {
        dir.join(&hex64(key)[..2])
            .join(format!("{}.json", hex64(key)))
    }

    /// Path of the in-progress checkpoint for `key` under `dir`.
    pub fn checkpoint_path_in(dir: &Path, key: u64) -> PathBuf {
        dir.join(&hex64(key)[..2])
            .join(format!("{}.ckpt", hex64(key)))
    }

    /// Path of the stored result payload for `key`.
    pub fn result_path(&self, key: u64) -> PathBuf {
        ResultCache::result_path_in(&self.dir, key)
    }

    /// Path of the in-progress checkpoint for `key`.
    pub fn checkpoint_path(&self, key: u64) -> PathBuf {
        ResultCache::checkpoint_path_in(&self.dir, key)
    }

    /// Seals `payload` for storage: appends the FNV-1a integrity footer
    /// that [`lookup`](Self::lookup) verifies on every read.
    pub fn seal(payload: &str) -> String {
        format!(
            "{payload}{FOOTER_PREFIX}{}\n",
            hex64(Fingerprint::of(payload.as_bytes()))
        )
    }

    /// Splits a sealed entry back into its payload, verifying the
    /// footer; `None` means the entry is torn, truncated, or tampered.
    pub fn unseal(sealed: &str) -> Option<&str> {
        let at = sealed.rfind(FOOTER_PREFIX)?;
        let payload = &sealed[..at];
        let digest = sealed[at + FOOTER_PREFIX.len()..].strip_suffix('\n')?;
        (parse_hex64(digest)? == Fingerprint::of(payload.as_bytes())).then_some(payload)
    }

    /// The stored payload for `key`, if a verified entry exists. A
    /// present-but-corrupt entry is moved to `quarantine/` and reported
    /// as a miss so the caller recomputes it.
    pub fn lookup(&mut self, key: u64) -> Option<String> {
        let path = self.result_path(key);
        let sealed = fs::read_to_string(&path).ok()?;
        match ResultCache::unseal(&sealed) {
            Some(payload) => {
                let payload = payload.to_string();
                self.touch(key);
                Some(payload)
            }
            None => {
                self.quarantine(key, &path);
                None
            }
        }
    }

    /// Times `key` has been quarantined this process lifetime; at
    /// [`QUARANTINE_STRIKE_LIMIT`] the slot is struck out and
    /// [`store`](Self::store) backs off.
    pub fn strikes(&self, key: u64) -> u32 {
        self.strikes.get(&key).copied().unwrap_or(0)
    }

    /// True once `key` has struck out: its slot keeps corrupting, so
    /// rewriting it is suppressed and callers should emit a `warn`.
    pub fn struck_out(&self, key: u64) -> bool {
        self.strikes(key) >= QUARANTINE_STRIKE_LIMIT
    }

    /// Stores `payload` (sealed, atomic via rename) as the result for
    /// `key` and drops any leftover checkpoint. A key that has struck
    /// out ([`struck_out`](Self::struck_out)) is *not* rewritten — the
    /// slot keeps corrupting, so the write is suppressed (counted in
    /// `suppressed_stores`) and the key is served by recomputation.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the cache is an optimization, so
    /// callers may choose to log and continue.
    pub fn store(&mut self, key: u64, payload: &str) -> io::Result<()> {
        if self.struck_out(key) {
            self.suppressed_stores += 1;
            let _ = fs::remove_file(self.checkpoint_path(key));
            return Ok(());
        }
        let path = self.result_path(key);
        write_atomic(&path, ResultCache::seal(payload).as_bytes())?;
        let _ = fs::remove_file(self.checkpoint_path(key));
        self.touch(key);
        Ok(())
    }

    /// Moves a failed entry into `quarantine/` (falling back to removal
    /// if the move itself fails) and counts it — both globally and as a
    /// strike against `key`.
    fn quarantine(&mut self, key: u64, path: &Path) {
        let qdir = self.dir.join(QUARANTINE_DIR);
        let ok = fs::create_dir_all(&qdir).is_ok()
            && path.file_name().is_some_and(|name| {
                let dest = qdir.join(name);
                let _ = fs::remove_file(&dest);
                fs::rename(path, &dest).is_ok()
            });
        if !ok {
            let _ = fs::remove_file(path);
        }
        self.quarantined += 1;
        *self.strikes.entry(key).or_insert(0) += 1;
    }

    /// Records a key touch for eviction recency: in memory and appended
    /// to `access.log` (best-effort — the log is an eviction-order
    /// record, not a durability structure).
    fn touch(&mut self, key: u64) {
        self.touches.push(key);
        if let Some(log) = &mut self.log {
            let _ = writeln!(log, "{}", hex64(key));
        }
    }

    /// Evicts least-recently-touched entries (oldest first, ties broken
    /// by key) until completed payloads fit in `budget` bytes, then
    /// compacts the access log. Entries never touched in recorded
    /// history sort oldest of all. Returns the number of entries
    /// evicted.
    ///
    /// # Errors
    ///
    /// Propagates failures rewriting the access log; individual entry
    /// removals are best-effort.
    pub fn evict_to_budget(&mut self, budget: u64) -> io::Result<u64> {
        let recency: HashMap<u64, usize> = self
            .touches
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i))
            .collect();
        // (rank, key, size): rank -1 (never touched) sorts first.
        let mut entries: Vec<(i64, u64, u64)> = Vec::new();
        let mut total = 0u64;
        for (key, size) in self.disk_entries() {
            let rank = recency.get(&key).map_or(-1, |&i| i as i64);
            entries.push((rank, key, size));
            total += size;
        }
        entries.sort_unstable();
        let mut evicted = 0u64;
        for &(_, key, size) in &entries {
            if total <= budget {
                break;
            }
            let _ = fs::remove_file(self.result_path(key));
            let _ = fs::remove_file(self.checkpoint_path(key));
            total -= size;
            evicted += 1;
        }
        self.evicted += evicted;
        // Compact: surviving keys only, in recency order.
        let survivors: Vec<u64> = recency_order(&self.touches)
            .into_iter()
            .filter(|k| self.result_path(*k).exists())
            .collect();
        self.log = None; // close before rewriting
        write_touch_log(&self.dir, &survivors)?;
        self.touches = survivors;
        self.log = Some(
            OpenOptions::new()
                .append(true)
                .open(self.dir.join(ACCESS_LOG))?,
        );
        Ok(evicted)
    }

    /// Completed `(key, payload size)` entries on disk, shard order.
    fn disk_entries(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for shard in shard_dirs(&self.dir) {
            let Ok(files) = fs::read_dir(&shard) else {
                continue;
            };
            for f in files.flatten() {
                let path = f.path();
                if path.extension().is_some_and(|e| e == "json") {
                    if let Some(key) = path
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .and_then(parse_hex64)
                    {
                        let size = f.metadata().map(|m| m.len()).unwrap_or(0);
                        out.push((key, size));
                    }
                }
            }
        }
        out
    }

    /// Number of completed result entries on disk (quarantine excluded).
    pub fn entries(&self) -> usize {
        self.disk_entries().len()
    }

    /// Total bytes of completed result entries on disk.
    pub fn entry_bytes(&self) -> u64 {
        self.disk_entries().iter().map(|&(_, size)| size).sum()
    }
}

/// The two-hex-digit shard directories under the cache root (skips
/// `quarantine/` and any stray files).
fn shard_dirs(dir: &Path) -> Vec<PathBuf> {
    let Ok(rd) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut shards: Vec<PathBuf> = rd
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.len() == 2 && n.bytes().all(|b| b.is_ascii_hexdigit()))
        })
        .collect();
    shards.sort();
    shards
}

/// Reads the raw touch sequence from `access.log`, skipping anything
/// unparseable (a torn tail after a crash is expected, not an error).
fn read_touch_log(dir: &Path) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(dir.join(ACCESS_LOG)) else {
        return Vec::new();
    };
    text.lines().filter_map(parse_hex64).collect()
}

/// Rewrites `access.log` with exactly `touches`, one key per line.
fn write_touch_log(dir: &Path, touches: &[u64]) -> io::Result<()> {
    let mut text = String::with_capacity(touches.len() * 17);
    for &k in touches {
        text.push_str(&hex64(k));
        text.push('\n');
    }
    write_atomic(&dir.join(ACCESS_LOG), text.as_bytes())
}

/// Deduplicates a touch sequence to recency order: each key once, least
/// recently touched first.
fn recency_order(touches: &[u64]) -> Vec<u64> {
    let last: HashMap<u64, usize> = touches.iter().enumerate().map(|(i, &k)| (k, i)).collect();
    let mut keys: Vec<(usize, u64)> = last.into_iter().map(|(k, i)| (i, k)).collect();
    keys.sort_unstable();
    keys.into_iter().map(|(_, k)| k).collect()
}

/// Writes `bytes` to `path` through a sibling temp file + rename, so a
/// crash can never leave a half-written file at `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use ringmesh::{NetworkSpec, SystemConfig};
    use ringmesh_net::CacheLineSize;

    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ringmesh-serve-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_track_config_identity_and_code_version() {
        let a = SystemConfig::new(NetworkSpec::mesh(3), CacheLineSize::B64);
        assert_eq!(ResultCache::key(&a), ResultCache::key(&a.clone()));
        assert_ne!(
            ResultCache::key(&a),
            ResultCache::key(&a.clone().with_seed(1))
        );
        // The key covers more than the config alone.
        assert_ne!(ResultCache::key(&a), a.fingerprint());
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let dir = tempdir("store");
        let mut cache = ResultCache::open(&dir).unwrap();
        let cfg = SystemConfig::new(NetworkSpec::mesh(3), CacheLineSize::B64);
        let key = ResultCache::key(&cfg);
        assert_eq!(cache.lookup(key), None);
        assert_eq!(cache.entries(), 0);
        cache.store(key, "{\"x\":1}").unwrap();
        assert_eq!(cache.lookup(key).as_deref(), Some("{\"x\":1}"));
        assert_eq!(cache.entries(), 1);
        // Overwrites are atomic replacements, not appends.
        cache.store(key, "{\"x\":2}").unwrap();
        assert_eq!(cache.lookup(key).as_deref(), Some("{\"x\":2}"));
        assert_eq!(cache.entries(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn storing_a_result_clears_its_checkpoint() {
        let dir = tempdir("ckpt");
        let mut cache = ResultCache::open(&dir).unwrap();
        let key = 0xabcd_0123_dead_beef;
        write_atomic(&cache.checkpoint_path(key), b"state").unwrap();
        assert!(cache.checkpoint_path(key).exists());
        cache.store(key, "{}").unwrap();
        assert!(!cache.checkpoint_path(key).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seal_and_unseal_are_inverse_and_tamper_evident() {
        let sealed = ResultCache::seal("{\"pms\":24}");
        assert_eq!(ResultCache::unseal(&sealed), Some("{\"pms\":24}"));
        // Any payload byte flip invalidates the footer.
        let tampered = sealed.replace("24", "25");
        assert_eq!(ResultCache::unseal(&tampered), None);
        // So does a truncated footer or a missing one.
        assert_eq!(ResultCache::unseal(&sealed[..sealed.len() - 2]), None);
        assert_eq!(ResultCache::unseal("{\"pms\":24}"), None);
        // A payload that itself contains the footer marker still seals.
        let tricky = format!("{{\"note\":\"{}abc\"}}", "#fnv64=");
        assert_eq!(
            ResultCache::unseal(&ResultCache::seal(&tricky)),
            Some(tricky.as_str())
        );
    }

    #[test]
    fn corrupt_entries_are_quarantined_and_reported_as_misses() {
        let dir = tempdir("heal");
        let mut cache = ResultCache::open(&dir).unwrap();
        let key = 0x1122_3344_5566_7788;
        cache.store(key, "{\"ok\":true}").unwrap();

        // Tear the entry mid-file, as a crashed write or bad disk would.
        let path = cache.result_path(key);
        let sealed = fs::read_to_string(&path).unwrap();
        fs::write(&path, &sealed[..sealed.len() / 2]).unwrap();

        assert_eq!(cache.lookup(key), None, "torn entry must miss");
        assert_eq!(cache.quarantined, 1);
        assert!(!path.exists(), "entry removed from the serving path");
        assert!(
            dir.join(QUARANTINE_DIR)
                .join(path.file_name().unwrap())
                .exists(),
            "entry preserved for post-mortem"
        );
        // Recompute-and-store heals the slot.
        cache.store(key, "{\"ok\":true}").unwrap();
        assert_eq!(cache.lookup(key).as_deref(), Some("{\"ok\":true}"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_corruption_strikes_the_key_out_and_suppresses_stores() {
        let dir = tempdir("strikes");
        let mut cache = ResultCache::open(&dir).unwrap();
        let key = 0x0bad_0bad_0bad_0bad;
        let corrupt_slot = |cache: &mut ResultCache| {
            let path = cache.result_path(key);
            let sealed = fs::read_to_string(&path).unwrap();
            fs::write(&path, &sealed[..sealed.len() / 2]).unwrap();
        };

        // The recompute → store → corrupt loop runs up to the limit…
        for round in 0..QUARANTINE_STRIKE_LIMIT {
            assert!(!cache.struck_out(key), "round {round}: not out yet");
            cache.store(key, "{\"v\":1}").unwrap();
            assert!(cache.result_path(key).exists());
            corrupt_slot(&mut cache);
            assert_eq!(cache.lookup(key), None);
            assert_eq!(cache.strikes(key), round + 1);
        }

        // …then the slot is struck out: stores become no-ops (but still
        // clear checkpoints) and are counted, and lookups keep missing.
        assert!(cache.struck_out(key));
        write_atomic(&cache.checkpoint_path(key), b"state").unwrap();
        cache.store(key, "{\"v\":1}").unwrap();
        assert!(!cache.result_path(key).exists(), "store suppressed");
        assert!(!cache.checkpoint_path(key).exists(), "ckpt still cleared");
        assert_eq!(cache.suppressed_stores, 1);
        assert_eq!(cache.lookup(key), None);
        assert_eq!(
            cache.quarantined,
            u64::from(QUARANTINE_STRIKE_LIMIT),
            "no further quarantine churn once the slot is empty"
        );

        // Other keys are unaffected.
        cache.store(1, "{\"ok\":true}").unwrap();
        assert_eq!(cache.lookup(1).as_deref(), Some("{\"ok\":true}"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_unsealed_entries_are_recycled_not_served() {
        let dir = tempdir("legacy");
        let mut cache = ResultCache::open(&dir).unwrap();
        let key = 0xfeed_beef_0000_0001;
        // A pre-footer entry written by an older build.
        write_atomic(&cache.result_path(key), b"{\"old\":1}").unwrap();
        assert_eq!(cache.lookup(key), None);
        assert_eq!(cache.quarantined, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_is_oldest_first_and_deterministic() {
        let run = |dir: &Path| -> Vec<u64> {
            let mut cache = ResultCache::open(dir).unwrap();
            for key in [1u64, 2, 3, 4] {
                cache.store(key, &format!("{{\"k\":{key}}}")).unwrap();
            }
            // Touch 1 again: recency order is now 2, 3, 4, 1.
            assert!(cache.lookup(1).is_some());
            let budget = cache.entry_bytes() - 1; // forces evictions
            cache.evict_to_budget(budget / 2).unwrap();
            let mut left: Vec<u64> = [1u64, 2, 3, 4]
                .into_iter()
                .filter(|&k| cache.result_path(k).exists())
                .collect();
            left.sort_unstable();
            left
        };
        let (a, b) = (tempdir("evict-a"), tempdir("evict-b"));
        let left_a = run(&a);
        let left_b = run(&b);
        assert_eq!(left_a, left_b, "same history ⇒ identical eviction");
        assert!(
            left_a.contains(&1),
            "most recently touched key must survive: {left_a:?}"
        );
        assert!(!left_a.contains(&2), "oldest key evicts first: {left_a:?}");
        let _ = fs::remove_dir_all(&a);
        let _ = fs::remove_dir_all(&b);
    }

    #[test]
    fn eviction_survives_reopen_via_the_access_log() {
        let dir = tempdir("evict-reopen");
        {
            let mut cache = ResultCache::open(&dir).unwrap();
            for key in [10u64, 20, 30] {
                cache
                    .store(key, "{\"payload\":\"xxxxxxxxxxxxxxxx\"}")
                    .unwrap();
            }
            assert!(cache.lookup(10).is_some()); // recency: 20, 30, 10
        }
        let mut cache = ResultCache::open(&dir).unwrap();
        let one_entry = cache.entry_bytes() / 3;
        cache.evict_to_budget(one_entry).unwrap();
        assert!(cache.result_path(10).exists(), "recent key survives reopen");
        assert!(!cache.result_path(20).exists());
        assert_eq!(cache.evicted, 2);
        assert_eq!(cache.entries(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_budget_clears_everything_and_compacts_the_log() {
        let dir = tempdir("evict-zero");
        let mut cache = ResultCache::open(&dir).unwrap();
        for key in [7u64, 8] {
            cache.store(key, "{}").unwrap();
        }
        cache.evict_to_budget(0).unwrap();
        assert_eq!(cache.entries(), 0);
        assert_eq!(
            fs::read_to_string(dir.join(ACCESS_LOG)).unwrap(),
            "",
            "log compacts to the survivors"
        );
        // And the cache still works afterwards.
        cache.store(9, "{\"x\":1}").unwrap();
        assert_eq!(cache.lookup(9).as_deref(), Some("{\"x\":1}"));
        let _ = fs::remove_dir_all(&dir);
    }
}
