//! Pluggable remote execution for batch work — the seam between the
//! serve coordinator and a worker fleet.
//!
//! The server schedules a batch's cache misses either on its local
//! [`WorkerPool`](ringmesh::WorkerPool) or, when a [`RemoteRunner`] is
//! attached and has live workers, by handing the whole work vector to
//! the runner. The trait lives *here* (not in the fleet crate) so the
//! dependency points outward: `ringmesh-serve` defines the contract,
//! `ringmesh-fleet` implements it over TCP, and the CLI wires the two
//! together. The server never links the fleet.
//!
//! # Contract
//!
//! - `run_tasks` is called from the batch's session thread and may
//!   block until every task reaches a terminal [`RemoteOutcome`]. It
//!   must return outcomes **in input order**.
//! - [`RemoteEvent`]s stream through the callback from the calling
//!   thread (the runner marshals its internal concurrency); the server
//!   relays them to the client and journals lease grants.
//! - A task the runner could not finish (no workers left, cooperative
//!   stop) comes back as [`RemoteOutcome::Unrun`]; the server decides
//!   whether to fall back to the local pool or report interruption.
//! - Two *completed* attempts of one task disagreeing on the result
//!   payload is a **hard determinism violation**
//!   ([`RemoteOutcome::Divergent`]): the simulator promises one
//!   bit-exact result per content key, so divergence means a broken
//!   worker or a broken build, and the CLI surfaces it with its own
//!   exit status.

use ringmesh::StopFlag;

use crate::json::Json;

/// One unit of batch work offered to a remote runner.
#[derive(Debug, Clone)]
pub struct RemoteTask {
    /// Client-chosen job id (labels events; not part of the content).
    pub id: String,
    /// Content key of the job (canonical config + code version).
    pub key: u64,
    /// The wire-form job object, re-parseable by
    /// [`parse_job`](crate::parse_job) on the worker.
    pub spec: Json,
}

/// Dispatch-lifecycle and progress events streamed while remote tasks
/// run. `task` indexes the vector passed to
/// [`RemoteRunner::run_tasks`].
#[derive(Debug, Clone)]
pub enum RemoteEvent {
    /// The task was leased to a worker for `lease_ms` (attempt is
    /// 1-based across re-dispatches).
    Lease {
        /// Index into the task vector.
        task: usize,
        /// Coordinator-assigned worker id.
        worker: u64,
        /// 1-based dispatch attempt.
        attempt: u32,
        /// Lease duration granted, in milliseconds.
        lease_ms: u64,
    },
    /// Windowed progress relayed from the worker computing the task.
    Window {
        /// Index into the task vector.
        task: usize,
        /// Network cycle at the end of the window.
        cycle: u64,
        /// Transactions issued during the window.
        issued: u64,
        /// Transactions retired during the window.
        retired: u64,
    },
    /// The task was re-enqueued (lease expiry, worker death, or a
    /// failed attempt) and will wait `backoff_ms` before re-dispatch.
    Retry {
        /// Index into the task vector.
        task: usize,
        /// The attempt that just ended.
        attempt: u32,
        /// Why the attempt ended (`"lease-expired"`, `"worker-death"`,
        /// `"attempt-failed"`).
        reason: String,
        /// Capped exponential backoff before the next dispatch.
        backoff_ms: u64,
    },
    /// A long-tail straggler was speculatively duplicated onto another
    /// worker; first completed result wins.
    Speculate {
        /// Index into the task vector.
        task: usize,
        /// The worker running the duplicate.
        worker: u64,
    },
}

/// Terminal outcome of one remote task, in task-vector order.
#[derive(Debug, Clone, PartialEq)]
pub enum RemoteOutcome {
    /// The task completed; `payload` is the canonical result JSON whose
    /// FNV content hash was verified against the worker's claim.
    Done {
        /// Canonical serialized result payload.
        payload: String,
    },
    /// Two completed attempts returned byte-different payloads — a hard
    /// determinism violation.
    Divergent {
        /// Content hash of the first completed payload.
        first: u64,
        /// Content hash of the disagreeing duplicate.
        second: u64,
    },
    /// Every dispatch attempt failed for a task-intrinsic reason (bad
    /// config, stall) — re-dispatching cannot help.
    Failed(String),
    /// The runner could not complete the task (no live workers, stop
    /// requested, retry budget exhausted on worker deaths); the caller
    /// should fall back to local execution or report interruption.
    Unrun,
}

/// A remote batch executor the server can dispatch work through.
pub trait RemoteRunner: Send + Sync + std::fmt::Debug {
    /// Number of live, registered workers right now. The server only
    /// routes a batch remotely when this is non-zero.
    fn live_workers(&self) -> usize;

    /// Runs `tasks` to terminal outcomes, streaming [`RemoteEvent`]s
    /// through `events` from the calling thread, honoring `stop` as a
    /// cooperative abort (unfinished tasks return
    /// [`RemoteOutcome::Unrun`]). Returns one outcome per task, in
    /// input order.
    fn run_tasks(
        &self,
        tasks: Vec<RemoteTask>,
        stop: &StopFlag,
        events: &mut dyn FnMut(RemoteEvent),
    ) -> Vec<RemoteOutcome>;
}
