//! Running one sweep-point job: windowed progress, periodic
//! checkpoints, deterministic resume, cooperative interruption.
//!
//! The runner drives [`System::run_to`] in pauses aligned to the
//! ringmesh-trace sampling window ([`TraceConfig::window_cycles`]), so
//! streamed progress lines cover the same cycle spans a trace recorder
//! would summarize. Pausing at boundaries works uniformly across every
//! network model — including the slotted ring, which has no tracer
//! instrumentation — because per-window transaction counts come from
//! the workload's cumulative counters, not from trace callbacks.
//!
//! Checkpoints are a crash-safety side effect of the same loop: every
//! `checkpoint_every` cycles the full engine + network + workload state
//! is serialized next to the job's cache entry. If the server dies and
//! the job is resubmitted (or replayed from the batch journal), the
//! runner restores and continues; the determinism contract (enforced by
//! `tests/checkpoint_resume.rs`) says the resumed run
//! fingerprint-matches an uninterrupted one.
//!
//! The same window boundaries double as interruption points: a graceful
//! shutdown sets a [`StopFlag`], the runner notices at the next
//! boundary, flushes a final checkpoint, and returns
//! [`JobError::Interrupted`] — so SIGTERM loses at most one window of
//! progress and never a completed result.
//!
//! [`TraceConfig::window_cycles`]: ringmesh_trace::TraceConfig

use std::fmt;
use std::fs;
use std::path::Path;

use ringmesh::{RunResult, StopFlag, System, SystemConfig};

use crate::cache::write_atomic;

/// Progress for one sampling window of a running job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowEvent {
    /// Network cycle at the end of the window.
    pub cycle: u64,
    /// Transactions issued during the window.
    pub issued: u64,
    /// Transactions retired during the window.
    pub retired: u64,
}

/// What one job run produced.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The simulation result.
    pub result: RunResult,
    /// Final network cycle.
    pub cycles: u64,
    /// True if the run continued from an on-disk checkpoint.
    pub resumed: bool,
}

/// Why a job run did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// A graceful stop was requested; if the job had a checkpoint path,
    /// its state was flushed there so a restart resumes mid-run.
    Interrupted,
    /// The run itself failed (invalid config, stall, checkpoint I/O).
    Failed(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Interrupted => f.write_str("interrupted by shutdown; state checkpointed"),
            JobError::Failed(msg) => f.write_str(msg),
        }
    }
}

impl From<String> for JobError {
    fn from(msg: String) -> Self {
        JobError::Failed(msg)
    }
}

/// Runs `cfg` to completion, emitting a [`WindowEvent`] per sampling
/// window and (optionally) checkpointing to `ckpt` every
/// `checkpoint_every` cycles. If `ckpt` names an existing readable
/// checkpoint for this config, the run resumes from it; a stale or
/// corrupt file is ignored and the run starts fresh. The checkpoint is
/// removed once the run completes.
///
/// If `stop` is set while running, the job halts at the next window
/// boundary: with a `ckpt` path the full state is flushed there first,
/// then [`JobError::Interrupted`] is returned.
///
/// # Errors
///
/// [`JobError::Failed`] for config errors, stalls, or checkpoint I/O
/// failures; [`JobError::Interrupted`] for a cooperative stop.
pub fn run_job(
    cfg: &SystemConfig,
    window_cycles: u64,
    checkpoint_every: u64,
    ckpt: Option<&Path>,
    stop: Option<&StopFlag>,
    emit: &mut dyn FnMut(WindowEvent),
) -> Result<JobOutcome, JobError> {
    let window = window_cycles.max(1);
    let mut sys = System::new(cfg.clone()).map_err(|e| e.to_string())?;
    let mut state = sys.begin();

    let mut resumed = false;
    if let Some(path) = ckpt {
        if let Ok(bytes) = fs::read(path) {
            match sys.restore(&mut state, &bytes) {
                Ok(()) => resumed = true,
                Err(_) => {
                    // A failed restore may leave partial state behind;
                    // rebuild from scratch rather than trust it.
                    sys = System::new(cfg.clone()).map_err(|e| e.to_string())?;
                    state = sys.begin();
                }
            }
        }
    }

    let flush = |sys: &System, state: &ringmesh::RunState, path: &Path| -> Result<(), JobError> {
        let bytes = sys.checkpoint(state).map_err(|e| e.to_string())?;
        write_atomic(path, &bytes)
            .map_err(|e| JobError::Failed(format!("writing checkpoint {}: {e}", path.display())))
    };

    let mut prev = sys.workload_stats();
    let mut last_ckpt = sys.cycle();
    loop {
        let stop_at = (sys.cycle() / window + 1) * window;
        let done = sys.run_to(&mut state, stop_at).map_err(|e| e.to_string())?;
        let stats = sys.workload_stats();
        emit(WindowEvent {
            cycle: sys.cycle(),
            issued: stats.issued - prev.issued,
            retired: stats.retired - prev.retired,
        });
        prev = stats;
        if done {
            break;
        }
        if stop.is_some_and(StopFlag::is_set) {
            if let Some(path) = ckpt {
                flush(&sys, &state, path)?;
            }
            return Err(JobError::Interrupted);
        }
        if let Some(path) = ckpt {
            if checkpoint_every > 0 && sys.cycle() - last_ckpt >= checkpoint_every {
                flush(&sys, &state, path)?;
                last_ckpt = sys.cycle();
            }
        }
    }

    let outcome = JobOutcome {
        result: sys.finish(&state),
        cycles: sys.cycle(),
        resumed,
    };
    if let Some(path) = ckpt {
        let _ = fs::remove_file(path);
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use ringmesh::{NetworkSpec, SimParams};
    use ringmesh_net::CacheLineSize;

    use super::*;

    fn quick(network: NetworkSpec) -> SystemConfig {
        SystemConfig::new(network, CacheLineSize::B32)
            .with_sim(SimParams {
                warmup: 800,
                batch_cycles: 800,
                batches: 3,
            })
            .with_seed(17)
    }

    fn temppath(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "ringmesh-runner-{tag}-{}-{}.ckpt",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn windows_align_to_the_sampling_grid_and_cover_the_run() {
        let cfg = quick(NetworkSpec::ring("6".parse().unwrap()));
        let mut windows = Vec::new();
        let out = run_job(&cfg, 1_000, 0, None, None, &mut |w| windows.push(w)).unwrap();
        assert!(!out.resumed);
        assert!(!windows.is_empty());
        for w in &windows[..windows.len() - 1] {
            assert_eq!(w.cycle % 1_000, 0, "interior window ends on the grid");
        }
        assert_eq!(windows.last().unwrap().cycle, out.cycles);
        let issued: u64 = windows.iter().map(|w| w.issued).sum();
        assert_eq!(
            issued, out.result.workload.issued,
            "windows partition the run"
        );
    }

    /// The slotted ring has no tracer hooks at all; windows must still
    /// stream because they come from run_to pauses, not trace sinks.
    #[test]
    fn slotted_ring_jobs_stream_windows_too() {
        let cfg = quick(NetworkSpec::SlottedRing {
            spec: "2:2:3".parse().unwrap(),
        });
        let mut n = 0;
        let out = run_job(&cfg, 500, 0, None, None, &mut |w| {
            n += 1;
            assert!(w.cycle > 0);
        })
        .unwrap();
        assert!(n >= 4, "expected several windows, got {n}");
        assert!(out.result.workload.retired > 0);
    }

    #[test]
    fn resume_from_checkpoint_matches_uninterrupted() {
        let cfg = quick(NetworkSpec::mesh(3));
        let clean = run_job(&cfg, 1_000, 0, None, None, &mut |_| {}).unwrap();

        // Produce a mid-run checkpoint the way an interrupted server
        // would have left one on disk.
        let path = temppath("resume");
        let mut sys = System::new(cfg.clone()).unwrap();
        let mut state = sys.begin();
        assert!(!sys.run_to(&mut state, 1_200).unwrap());
        fs::write(&path, sys.checkpoint(&state).unwrap()).unwrap();

        let out = run_job(&cfg, 1_000, 0, Some(&path), None, &mut |_| {}).unwrap();
        assert!(out.resumed, "checkpoint on disk must be picked up");
        assert_eq!(
            out.result.fingerprint(),
            clean.result.fingerprint(),
            "resumed run must be bit-identical"
        );
        assert!(!path.exists(), "checkpoint is removed on completion");
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_a_fresh_run() {
        let cfg = quick(NetworkSpec::ring("2:4".parse().unwrap()));
        let clean = run_job(&cfg, 1_000, 0, None, None, &mut |_| {}).unwrap();
        let path = temppath("corrupt");
        fs::write(&path, b"not a checkpoint").unwrap();
        let out = run_job(&cfg, 1_000, 0, Some(&path), None, &mut |_| {}).unwrap();
        assert!(!out.resumed);
        assert_eq!(out.result.fingerprint(), clean.result.fingerprint());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn periodic_checkpoints_are_written_while_running() {
        let cfg = quick(NetworkSpec::ring("6".parse().unwrap()));
        let path = temppath("periodic");
        let mut saw_file = false;
        let path2 = path.clone();
        let out = run_job(&cfg, 400, 800, Some(&path), None, &mut |_| {
            saw_file |= path2.exists();
        })
        .unwrap();
        assert!(saw_file, "a checkpoint should exist mid-run");
        assert!(!path.exists(), "and be cleaned up at the end");
        assert!(out.result.workload.retired > 0);
    }

    /// A stop mid-run flushes a checkpoint and a later run resumes from
    /// it to a fingerprint identical to an uninterrupted run — the unit
    /// form of the kill-and-resume chaos invariant.
    #[test]
    fn interruption_checkpoints_and_resume_matches_clean() {
        let cfg = quick(NetworkSpec::mesh(3));
        let clean = run_job(&cfg, 1_000, 0, None, None, &mut |_| {}).unwrap();

        let path = temppath("interrupt");
        let stop = StopFlag::new();
        let mut windows = 0;
        let stop2 = stop.clone();
        let err = run_job(&cfg, 1_000, 0, Some(&path), Some(&stop), &mut |_| {
            windows += 1;
            if windows == 2 {
                stop2.set();
            }
        })
        .unwrap_err();
        assert_eq!(err, JobError::Interrupted);
        assert!(path.exists(), "interruption must flush a checkpoint");

        let out = run_job(&cfg, 1_000, 0, Some(&path), None, &mut |_| {}).unwrap();
        assert!(out.resumed);
        assert_eq!(out.result.fingerprint(), clean.result.fingerprint());
        assert!(!path.exists());
    }

    /// A stop that is already set before the run reaches its first
    /// boundary still interrupts; without a checkpoint path nothing is
    /// written anywhere.
    #[test]
    fn preset_stop_interrupts_without_checkpoint() {
        let cfg = quick(NetworkSpec::ring("6".parse().unwrap()));
        let stop = StopFlag::new();
        stop.set();
        let err = run_job(&cfg, 1_000, 0, None, Some(&stop), &mut |_| {}).unwrap_err();
        assert_eq!(err, JobError::Interrupted);
    }
}
