//! Running one sweep-point job: windowed progress, periodic
//! checkpoints, deterministic resume.
//!
//! The runner drives [`System::run_to`] in pauses aligned to the
//! ringmesh-trace sampling window ([`TraceConfig::window_cycles`]), so
//! streamed progress lines cover the same cycle spans a trace recorder
//! would summarize. Pausing at boundaries works uniformly across every
//! network model — including the slotted ring, which has no tracer
//! instrumentation — because per-window transaction counts come from
//! the workload's cumulative counters, not from trace callbacks.
//!
//! Checkpoints are a crash-safety side effect of the same loop: every
//! `checkpoint_every` cycles the full engine + network + workload state
//! is serialized next to the job's cache entry. If the server dies and
//! the job is resubmitted, the runner restores and continues; the
//! determinism contract (enforced by `tests/checkpoint_resume.rs`) says
//! the resumed run fingerprint-matches an uninterrupted one.

use std::fs;
use std::path::Path;

use ringmesh::{RunResult, System, SystemConfig};

use crate::cache::write_atomic;

/// Progress for one sampling window of a running job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowEvent {
    /// Network cycle at the end of the window.
    pub cycle: u64,
    /// Transactions issued during the window.
    pub issued: u64,
    /// Transactions retired during the window.
    pub retired: u64,
}

/// What one job run produced.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The simulation result.
    pub result: RunResult,
    /// Final network cycle.
    pub cycles: u64,
    /// True if the run continued from an on-disk checkpoint.
    pub resumed: bool,
}

/// Runs `cfg` to completion, emitting a [`WindowEvent`] per sampling
/// window and (optionally) checkpointing to `ckpt` every
/// `checkpoint_every` cycles. If `ckpt` names an existing readable
/// checkpoint for this config, the run resumes from it; a stale or
/// corrupt file is ignored and the run starts fresh. The checkpoint is
/// removed once the run completes.
///
/// # Errors
///
/// Returns a message for config errors, stalls, or checkpoint I/O
/// failures.
pub fn run_job(
    cfg: &SystemConfig,
    window_cycles: u64,
    checkpoint_every: u64,
    ckpt: Option<&Path>,
    emit: &mut dyn FnMut(WindowEvent),
) -> Result<JobOutcome, String> {
    let window = window_cycles.max(1);
    let mut sys = System::new(cfg.clone()).map_err(|e| e.to_string())?;
    let mut state = sys.begin();

    let mut resumed = false;
    if let Some(path) = ckpt {
        if let Ok(bytes) = fs::read(path) {
            match sys.restore(&mut state, &bytes) {
                Ok(()) => resumed = true,
                Err(_) => {
                    // A failed restore may leave partial state behind;
                    // rebuild from scratch rather than trust it.
                    sys = System::new(cfg.clone()).map_err(|e| e.to_string())?;
                    state = sys.begin();
                }
            }
        }
    }

    let mut prev = sys.workload_stats();
    let mut last_ckpt = sys.cycle();
    loop {
        let stop = (sys.cycle() / window + 1) * window;
        let done = sys.run_to(&mut state, stop).map_err(|e| e.to_string())?;
        let stats = sys.workload_stats();
        emit(WindowEvent {
            cycle: sys.cycle(),
            issued: stats.issued - prev.issued,
            retired: stats.retired - prev.retired,
        });
        prev = stats;
        if done {
            break;
        }
        if let Some(path) = ckpt {
            if checkpoint_every > 0 && sys.cycle() - last_ckpt >= checkpoint_every {
                let bytes = sys.checkpoint(&state).map_err(|e| e.to_string())?;
                write_atomic(path, &bytes)
                    .map_err(|e| format!("writing checkpoint {}: {e}", path.display()))?;
                last_ckpt = sys.cycle();
            }
        }
    }

    let outcome = JobOutcome {
        result: sys.finish(&state),
        cycles: sys.cycle(),
        resumed,
    };
    if let Some(path) = ckpt {
        let _ = fs::remove_file(path);
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use ringmesh::{NetworkSpec, SimParams};
    use ringmesh_net::CacheLineSize;

    use super::*;

    fn quick(network: NetworkSpec) -> SystemConfig {
        SystemConfig::new(network, CacheLineSize::B32)
            .with_sim(SimParams {
                warmup: 800,
                batch_cycles: 800,
                batches: 3,
            })
            .with_seed(17)
    }

    fn temppath(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "ringmesh-runner-{tag}-{}-{}.ckpt",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn windows_align_to_the_sampling_grid_and_cover_the_run() {
        let cfg = quick(NetworkSpec::ring("6".parse().unwrap()));
        let mut windows = Vec::new();
        let out = run_job(&cfg, 1_000, 0, None, &mut |w| windows.push(w)).unwrap();
        assert!(!out.resumed);
        assert!(!windows.is_empty());
        for w in &windows[..windows.len() - 1] {
            assert_eq!(w.cycle % 1_000, 0, "interior window ends on the grid");
        }
        assert_eq!(windows.last().unwrap().cycle, out.cycles);
        let issued: u64 = windows.iter().map(|w| w.issued).sum();
        assert_eq!(
            issued, out.result.workload.issued,
            "windows partition the run"
        );
    }

    /// The slotted ring has no tracer hooks at all; windows must still
    /// stream because they come from run_to pauses, not trace sinks.
    #[test]
    fn slotted_ring_jobs_stream_windows_too() {
        let cfg = quick(NetworkSpec::SlottedRing {
            spec: "2:2:3".parse().unwrap(),
        });
        let mut n = 0;
        let out = run_job(&cfg, 500, 0, None, &mut |w| {
            n += 1;
            assert!(w.cycle > 0);
        })
        .unwrap();
        assert!(n >= 4, "expected several windows, got {n}");
        assert!(out.result.workload.retired > 0);
    }

    #[test]
    fn resume_from_checkpoint_matches_uninterrupted() {
        let cfg = quick(NetworkSpec::mesh(3));
        let clean = run_job(&cfg, 1_000, 0, None, &mut |_| {}).unwrap();

        // Produce a mid-run checkpoint the way an interrupted server
        // would have left one on disk.
        let path = temppath("resume");
        let mut sys = System::new(cfg.clone()).unwrap();
        let mut state = sys.begin();
        assert!(!sys.run_to(&mut state, 1_200).unwrap());
        fs::write(&path, sys.checkpoint(&state).unwrap()).unwrap();

        let out = run_job(&cfg, 1_000, 0, Some(&path), &mut |_| {}).unwrap();
        assert!(out.resumed, "checkpoint on disk must be picked up");
        assert_eq!(
            out.result.fingerprint(),
            clean.result.fingerprint(),
            "resumed run must be bit-identical"
        );
        assert!(!path.exists(), "checkpoint is removed on completion");
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_a_fresh_run() {
        let cfg = quick(NetworkSpec::ring("2:4".parse().unwrap()));
        let clean = run_job(&cfg, 1_000, 0, None, &mut |_| {}).unwrap();
        let path = temppath("corrupt");
        fs::write(&path, b"not a checkpoint").unwrap();
        let out = run_job(&cfg, 1_000, 0, Some(&path), &mut |_| {}).unwrap();
        assert!(!out.resumed);
        assert_eq!(out.result.fingerprint(), clean.result.fingerprint());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn periodic_checkpoints_are_written_while_running() {
        let cfg = quick(NetworkSpec::ring("6".parse().unwrap()));
        let path = temppath("periodic");
        let mut saw_file = false;
        let path2 = path.clone();
        let out = run_job(&cfg, 400, 800, Some(&path), &mut |_| {
            saw_file |= path2.exists();
        })
        .unwrap();
        assert!(saw_file, "a checkpoint should exist mid-run");
        assert!(!path.exists(), "and be cleaned up at the end");
        assert!(out.result.workload.retired > 0);
    }
}
