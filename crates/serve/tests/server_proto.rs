//! End-to-end serve protocol: a batch submitted twice must be computed
//! once and then served entirely from the content-addressed cache with
//! byte-identical results.

use std::fs;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use ringmesh_serve::json::Json;
use ringmesh_serve::{ServeExit, ServeOptions, Server};

fn tempdir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ringmesh-proto-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &Path) -> ServeOptions {
    ServeOptions {
        cache_dir: dir.to_path_buf(),
        threads: Some(2),
        ..ServeOptions::default()
    }
}

/// Runs one session over in-memory buffers; returns parsed event lines.
fn session(server: &mut Server, script: &str) -> Vec<Json> {
    let mut out = Vec::new();
    let exit = server
        .serve(BufReader::new(script.as_bytes()), &mut out)
        .unwrap();
    assert_eq!(exit, ServeExit::Quit);
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad event line {l}: {e}")))
        .collect()
}

fn events<'a>(lines: &'a [Json], kind: &str) -> Vec<&'a Json> {
    lines
        .iter()
        .filter(|l| l.get("event").and_then(Json::as_str) == Some(kind))
        .collect()
}

const BATCH: &str = concat!(
    r#"{"op":"job","id":"ring","network":"ring","spec":"2:4","warmup":800,"batch_cycles":800,"batches":3,"cache_line":32}"#,
    "\n",
    r#"{"op":"job","id":"slotted","network":"slotted","spec":"2:2:3","warmup":800,"batch_cycles":800,"batches":3,"cache_line":32}"#,
    "\n",
    r#"{"op":"job","id":"mesh","network":"mesh","side":3,"warmup":800,"batch_cycles":800,"batches":3,"cache_line":32}"#,
    "\n",
    r#"{"op":"run"}"#,
    "\n",
    r#"{"op":"quit"}"#,
    "\n",
);

fn result_data(lines: &[Json], id: &str) -> String {
    events(lines, "result")
        .into_iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
        .unwrap_or_else(|| panic!("no result for {id}"))
        .get("data")
        .unwrap()
        .to_string()
}

#[test]
fn second_submission_is_served_from_cache_bit_for_bit() {
    let dir = tempdir("twice");
    let mut server = Server::new(opts(&dir)).unwrap();

    let first = session(&mut server, BATCH);
    let accepted = events(&first, "accepted");
    assert_eq!(accepted.len(), 3);
    assert!(accepted
        .iter()
        .all(|a| a.get("cached") == Some(&Json::Bool(false))));
    assert!(!events(&first, "window").is_empty(), "progress must stream");
    let batch1 = events(&first, "batch")[0];
    assert_eq!(batch1.get("cache_hits").and_then(Json::as_u64), Some(0));
    assert_eq!(batch1.get("cache_misses").and_then(Json::as_u64), Some(3));
    assert_eq!(batch1.get("errors").and_then(Json::as_u64), Some(0));

    // Same batch again — a fresh session, same server and cache.
    let second = session(&mut server, BATCH);
    let accepted = events(&second, "accepted");
    assert!(accepted
        .iter()
        .all(|a| a.get("cached") == Some(&Json::Bool(true))));
    assert!(events(&second, "window").is_empty(), "hits don't simulate");
    let batch2 = events(&second, "batch")[0];
    assert_eq!(batch2.get("cache_hits").and_then(Json::as_u64), Some(3));
    assert_eq!(batch2.get("cache_misses").and_then(Json::as_u64), Some(0));

    // Byte-identical payloads and an equal combined fingerprint.
    for id in ["ring", "slotted", "mesh"] {
        assert_eq!(result_data(&first, id), result_data(&second, id), "{id}");
    }
    assert_eq!(
        batch1.get("fingerprint").and_then(Json::as_str),
        batch2.get("fingerprint").and_then(Json::as_str)
    );
    assert_eq!(server.cache_counters(), (3, 3));

    // A restarted server over the same directory still hits.
    let mut fresh = Server::new(opts(&dir)).unwrap();
    let third = session(&mut fresh, BATCH);
    assert_eq!(
        events(&third, "batch")[0]
            .get("cache_hits")
            .and_then(Json::as_u64),
        Some(3)
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn verify_cache_rechecks_hits_and_reports_them() {
    let dir = tempdir("verify");
    let mut server = Server::new(ServeOptions {
        verify_fraction: 1.0,
        ..opts(&dir)
    })
    .unwrap();

    let first = session(&mut server, BATCH);
    assert_eq!(
        events(&first, "batch")[0]
            .get("verified")
            .and_then(Json::as_u64),
        Some(0),
        "misses have nothing to verify"
    );
    let second = session(&mut server, BATCH);
    let batch = events(&second, "batch")[0];
    assert_eq!(batch.get("cache_hits").and_then(Json::as_u64), Some(3));
    assert_eq!(batch.get("verified").and_then(Json::as_u64), Some(3));
    assert_eq!(batch.get("mismatches").and_then(Json::as_u64), Some(0));
    // Verified hits still serve the cached payload.
    for r in events(&second, "result") {
        assert_eq!(r.get("cached"), Some(&Json::Bool(true)));
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn verify_cache_detects_a_corrupted_entry() {
    let dir = tempdir("corrupt");
    let mut server = Server::new(ServeOptions {
        verify_fraction: 1.0,
        ..opts(&dir)
    })
    .unwrap();
    let job = r#"{"op":"job","id":"m","network":"mesh","side":3,"warmup":600,"batch_cycles":600,"batches":2,"cache_line":32}"#;
    let script = format!("{job}\n{{\"op\":\"run\"}}\n{{\"op\":\"quit\"}}\n");
    session(&mut server, &script);

    // Corrupt the single stored payload behind the server's back.
    let mut corrupted = 0;
    for shard in fs::read_dir(&dir).unwrap().flatten() {
        for f in fs::read_dir(shard.path()).unwrap().flatten() {
            if f.path().extension().is_some_and(|e| e == "json") {
                fs::write(f.path(), "{\"tampered\":true}").unwrap();
                corrupted += 1;
            }
        }
    }
    assert_eq!(corrupted, 1);

    let second = session(&mut server, &script);
    let batch = events(&second, "batch")[0];
    assert_eq!(batch.get("mismatches").and_then(Json::as_u64), Some(1));
    assert!(!events(&second, "error").is_empty());

    // The mismatch repaired the entry: a third pass verifies cleanly.
    let third = session(&mut server, &script);
    let batch = events(&third, "batch")[0];
    assert_eq!(batch.get("verified").and_then(Json::as_u64), Some(1));
    assert_eq!(batch.get("mismatches").and_then(Json::as_u64), Some(0));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_jobs_in_one_batch_simulate_once() {
    let dir = tempdir("dedup");
    let mut server = Server::new(opts(&dir)).unwrap();
    let script = concat!(
        r#"{"op":"job","id":"a","network":"mesh","side":3,"warmup":600,"batch_cycles":600,"batches":2,"cache_line":32}"#,
        "\n",
        r#"{"op":"job","id":"b","network":"mesh","side":3,"warmup":600,"batch_cycles":600,"batches":2,"cache_line":32}"#,
        "\n",
        r#"{"op":"run"}"#,
        "\n",
        r#"{"op":"quit"}"#,
        "\n",
    );
    let lines = session(&mut server, script);
    let batch = events(&lines, "batch")[0];
    assert_eq!(batch.get("jobs").and_then(Json::as_u64), Some(2));
    assert_eq!(batch.get("cache_misses").and_then(Json::as_u64), Some(1));
    assert_eq!(batch.get("cache_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(result_data(&lines, "a"), result_data(&lines, "b"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let dir = tempdir("errors");
    let mut server = Server::new(opts(&dir)).unwrap();
    let script = concat!(
        "this is not json\n",
        r#"{"op":"warp"}"#,
        "\n",
        r#"{"op":"job","id":"bad","network":"torus"}"#,
        "\n",
        r#"{"op":"stats"}"#,
        "\n",
        r#"{"op":"quit"}"#,
        "\n",
    );
    let lines = session(&mut server, script);
    assert_eq!(events(&lines, "error").len(), 3);
    let stats = events(&lines, "stats")[0];
    assert_eq!(stats.get("cache_entries").and_then(Json::as_u64), Some(0));
    assert_eq!(events(&lines, "bye").len(), 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn results_carry_percentiles_and_fingerprint() {
    let dir = tempdir("payload");
    let mut server = Server::new(opts(&dir)).unwrap();
    let script = concat!(
        r#"{"op":"job","id":"r","network":"ring","spec":"6","warmup":800,"batch_cycles":800,"batches":3,"cache_line":32}"#,
        "\n",
        r#"{"op":"run"}"#,
        "\n",
        r#"{"op":"quit"}"#,
        "\n",
    );
    let lines = session(&mut server, script);
    let data_text = result_data(&lines, "r");
    let data = Json::parse(&data_text).unwrap();
    assert_eq!(
        data.get("schema").and_then(Json::as_str),
        Some("ringmesh-serve/1")
    );
    let p = data.get("percentiles").expect("percentiles present");
    for q in ["p50", "p95", "p99"] {
        assert!(p.get(q).and_then(Json::as_f64).unwrap() > 0.0);
    }
    assert!(
        data.get("latency")
            .unwrap()
            .get("mean")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0
    );
    assert_eq!(
        data.get("fingerprint")
            .and_then(Json::as_str)
            .unwrap()
            .len(),
        16
    );
    let _ = fs::remove_dir_all(&dir);
}
