//! End-to-end serve protocol: a batch submitted twice must be computed
//! once and then served entirely from the content-addressed cache with
//! byte-identical results.

use std::fs;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use ringmesh_serve::json::Json;
use ringmesh_serve::{ResultCache, ServeExit, ServeOptions, Server};

fn tempdir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ringmesh-proto-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &Path) -> ServeOptions {
    ServeOptions {
        cache_dir: dir.to_path_buf(),
        threads: Some(2),
        ..ServeOptions::default()
    }
}

/// Runs one session over in-memory buffers; returns parsed event lines.
fn session(server: &Server, script: &str) -> Vec<Json> {
    let mut out = Vec::new();
    let exit = server
        .serve(BufReader::new(script.as_bytes()), &mut out)
        .unwrap();
    assert_eq!(exit, ServeExit::Quit);
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad event line {l}: {e}")))
        .collect()
}

fn events<'a>(lines: &'a [Json], kind: &str) -> Vec<&'a Json> {
    lines
        .iter()
        .filter(|l| l.get("event").and_then(Json::as_str) == Some(kind))
        .collect()
}

const BATCH: &str = concat!(
    r#"{"op":"job","id":"ring","network":"ring","spec":"2:4","warmup":800,"batch_cycles":800,"batches":3,"cache_line":32}"#,
    "\n",
    r#"{"op":"job","id":"slotted","network":"slotted","spec":"2:2:3","warmup":800,"batch_cycles":800,"batches":3,"cache_line":32}"#,
    "\n",
    r#"{"op":"job","id":"mesh","network":"mesh","side":3,"warmup":800,"batch_cycles":800,"batches":3,"cache_line":32}"#,
    "\n",
    r#"{"op":"run"}"#,
    "\n",
    r#"{"op":"quit"}"#,
    "\n",
);

fn result_data(lines: &[Json], id: &str) -> String {
    events(lines, "result")
        .into_iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
        .unwrap_or_else(|| panic!("no result for {id}"))
        .get("data")
        .unwrap()
        .to_string()
}

#[test]
fn second_submission_is_served_from_cache_bit_for_bit() {
    let dir = tempdir("twice");
    let server = Server::new(opts(&dir)).unwrap();

    let first = session(&server, BATCH);
    let accepted = events(&first, "accepted");
    assert_eq!(accepted.len(), 3);
    assert!(accepted
        .iter()
        .all(|a| a.get("cached") == Some(&Json::Bool(false))));
    assert!(!events(&first, "window").is_empty(), "progress must stream");
    let batch1 = events(&first, "batch")[0];
    assert_eq!(batch1.get("cache_hits").and_then(Json::as_u64), Some(0));
    assert_eq!(batch1.get("cache_misses").and_then(Json::as_u64), Some(3));
    assert_eq!(batch1.get("errors").and_then(Json::as_u64), Some(0));

    // Same batch again — a fresh session, same server and cache.
    let second = session(&server, BATCH);
    let accepted = events(&second, "accepted");
    assert!(accepted
        .iter()
        .all(|a| a.get("cached") == Some(&Json::Bool(true))));
    assert!(events(&second, "window").is_empty(), "hits don't simulate");
    let batch2 = events(&second, "batch")[0];
    assert_eq!(batch2.get("cache_hits").and_then(Json::as_u64), Some(3));
    assert_eq!(batch2.get("cache_misses").and_then(Json::as_u64), Some(0));

    // Byte-identical payloads and an equal combined fingerprint.
    for id in ["ring", "slotted", "mesh"] {
        assert_eq!(result_data(&first, id), result_data(&second, id), "{id}");
    }
    assert_eq!(
        batch1.get("fingerprint").and_then(Json::as_str),
        batch2.get("fingerprint").and_then(Json::as_str)
    );
    assert_eq!(server.cache_counters(), (3, 3));

    // A restarted server over the same directory still hits.
    let fresh = Server::new(opts(&dir)).unwrap();
    let third = session(&fresh, BATCH);
    assert_eq!(
        events(&third, "batch")[0]
            .get("cache_hits")
            .and_then(Json::as_u64),
        Some(3)
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn verify_cache_rechecks_hits_and_reports_them() {
    let dir = tempdir("verify");
    let server = Server::new(ServeOptions {
        verify_fraction: 1.0,
        ..opts(&dir)
    })
    .unwrap();

    let first = session(&server, BATCH);
    assert_eq!(
        events(&first, "batch")[0]
            .get("verified")
            .and_then(Json::as_u64),
        Some(0),
        "misses have nothing to verify"
    );
    let second = session(&server, BATCH);
    let batch = events(&second, "batch")[0];
    assert_eq!(batch.get("cache_hits").and_then(Json::as_u64), Some(3));
    assert_eq!(batch.get("verified").and_then(Json::as_u64), Some(3));
    assert_eq!(batch.get("mismatches").and_then(Json::as_u64), Some(0));
    // Verified hits still serve the cached payload.
    for r in events(&second, "result") {
        assert_eq!(r.get("cached"), Some(&Json::Bool(true)));
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn verify_cache_detects_a_corrupted_entry() {
    let dir = tempdir("corrupt");
    let server = Server::new(ServeOptions {
        verify_fraction: 1.0,
        ..opts(&dir)
    })
    .unwrap();
    let job = r#"{"op":"job","id":"m","network":"mesh","side":3,"warmup":600,"batch_cycles":600,"batches":2,"cache_line":32}"#;
    let script = format!("{job}\n{{\"op\":\"run\"}}\n{{\"op\":\"quit\"}}\n");
    session(&server, &script);

    // Swap the single stored payload for a *validly sealed* wrong one
    // behind the server's back. The integrity footer checks out, so
    // only the verify re-run can catch it (a broken footer would be
    // quarantined on read instead — see the quarantine test).
    let mut corrupted = 0;
    for shard in fs::read_dir(&dir).unwrap().flatten() {
        if !shard.path().is_dir() {
            continue; // access.log / journal.wal live at the cache root
        }
        for f in fs::read_dir(shard.path()).unwrap().flatten() {
            if f.path().extension().is_some_and(|e| e == "json") {
                fs::write(f.path(), ResultCache::seal("{\"tampered\":true}")).unwrap();
                corrupted += 1;
            }
        }
    }
    assert_eq!(corrupted, 1);

    let second = session(&server, &script);
    let batch = events(&second, "batch")[0];
    assert_eq!(batch.get("mismatches").and_then(Json::as_u64), Some(1));
    assert!(!events(&second, "error").is_empty());

    // The mismatch repaired the entry: a third pass verifies cleanly.
    let third = session(&server, &script);
    let batch = events(&third, "batch")[0];
    assert_eq!(batch.get("verified").and_then(Json::as_u64), Some(1));
    assert_eq!(batch.get("mismatches").and_then(Json::as_u64), Some(0));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_jobs_in_one_batch_simulate_once() {
    let dir = tempdir("dedup");
    let server = Server::new(opts(&dir)).unwrap();
    let script = concat!(
        r#"{"op":"job","id":"a","network":"mesh","side":3,"warmup":600,"batch_cycles":600,"batches":2,"cache_line":32}"#,
        "\n",
        r#"{"op":"job","id":"b","network":"mesh","side":3,"warmup":600,"batch_cycles":600,"batches":2,"cache_line":32}"#,
        "\n",
        r#"{"op":"run"}"#,
        "\n",
        r#"{"op":"quit"}"#,
        "\n",
    );
    let lines = session(&server, script);
    let batch = events(&lines, "batch")[0];
    assert_eq!(batch.get("jobs").and_then(Json::as_u64), Some(2));
    assert_eq!(batch.get("cache_misses").and_then(Json::as_u64), Some(1));
    assert_eq!(batch.get("cache_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(result_data(&lines, "a"), result_data(&lines, "b"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let dir = tempdir("errors");
    let server = Server::new(opts(&dir)).unwrap();
    let script = concat!(
        "this is not json\n",
        r#"{"op":"warp"}"#,
        "\n",
        r#"{"op":"job","id":"bad","network":"torus"}"#,
        "\n",
        r#"{"op":"stats"}"#,
        "\n",
        r#"{"op":"quit"}"#,
        "\n",
    );
    let lines = session(&server, script);
    assert_eq!(events(&lines, "error").len(), 3);
    let stats = events(&lines, "stats")[0];
    assert_eq!(stats.get("cache_entries").and_then(Json::as_u64), Some(0));
    assert_eq!(events(&lines, "bye").len(), 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn oversized_lines_draw_a_typed_error_and_the_session_survives() {
    let dir = tempdir("oversized");
    let server = Server::new(opts(&dir)).unwrap();
    let huge = "x".repeat(ringmesh_serve::MAX_LINE_BYTES + 64);
    let script = format!("{huge}\n{{\"op\":\"stats\"}}\n{{\"op\":\"quit\"}}\n");
    let lines = session(&server, &script);
    let errors = events(&lines, "error");
    assert_eq!(errors.len(), 1);
    assert!(errors[0]
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("byte limit"));
    assert!(!events(&lines, "stats").is_empty(), "session kept serving");
    assert_eq!(events(&lines, "bye").len(), 1);
    assert_eq!(server.protocol_errors(), 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_footer_entries_are_quarantined_and_recomputed() {
    let dir = tempdir("quarantine");
    let server = Server::new(opts(&dir)).unwrap();
    let job = r#"{"op":"job","id":"m","network":"mesh","side":3,"warmup":600,"batch_cycles":600,"batches":2,"cache_line":32}"#;
    let script = format!("{job}\n{{\"op\":\"run\"}}\n{{\"op\":\"quit\"}}\n");
    let first = session(&server, &script);
    let data_first = result_data(&first, "m");

    // Tear the entry: a footer-less file fails integrity verification.
    let mut torn = 0;
    for shard in fs::read_dir(&dir).unwrap().flatten() {
        if !shard.path().is_dir() || shard.file_name() == "quarantine" {
            continue;
        }
        for f in fs::read_dir(shard.path()).unwrap().flatten() {
            if f.path().extension().is_some_and(|e| e == "json") {
                fs::write(f.path(), "{\"torn\":").unwrap();
                torn += 1;
            }
        }
    }
    assert_eq!(torn, 1);

    // The hit misses, the entry is quarantined, the job transparently
    // recomputes — and the healed payload is byte-identical.
    let second = session(&server, &script);
    let batch = events(&second, "batch")[0];
    assert_eq!(batch.get("cache_misses").and_then(Json::as_u64), Some(1));
    assert_eq!(batch.get("cache_hits").and_then(Json::as_u64), Some(0));
    assert_eq!(result_data(&second, "m"), data_first);
    assert!(
        fs::read_dir(dir.join("quarantine")).unwrap().count() >= 1,
        "failed entry preserved for post-mortem"
    );

    let third = session(&server, &script);
    assert_eq!(
        events(&third, "batch")[0]
            .get("cache_hits")
            .and_then(Json::as_u64),
        Some(1),
        "healed entry serves again"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn saturated_batch_gate_sheds_with_a_typed_busy_event() {
    let dir = tempdir("busy");
    let server = Server::new(ServeOptions {
        max_batches: 1,
        ..opts(&dir)
    })
    .unwrap();
    let guard = server.hold_batch_slot().expect("slot free");
    let job = r#"{"op":"job","id":"m","network":"mesh","side":3,"warmup":600,"batch_cycles":600,"batches":2,"cache_line":32}"#;
    let script = format!("{job}\n{{\"op\":\"run\"}}\n{{\"op\":\"quit\"}}\n");
    let lines = session(&server, &script);
    let busy = events(&lines, "busy");
    assert_eq!(busy.len(), 1, "saturated gate must shed the run");
    assert_eq!(busy[0].get("scope").and_then(Json::as_str), Some("batches"));
    assert_eq!(busy[0].get("retry"), Some(&Json::Bool(true)));
    assert!(events(&lines, "batch").is_empty(), "no batch ran");
    assert_eq!(server.protocol_errors(), 0, "busy is not a client error");

    drop(guard);
    let lines = session(&server, &script);
    assert_eq!(events(&lines, "batch").len(), 1, "freed slot admits runs");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stop_flag_ends_sessions_with_a_graceful_bye() {
    let dir = tempdir("stop");
    let server = Server::new(opts(&dir)).unwrap();
    server.stop_handle().set();
    let mut out = Vec::new();
    let exit = server
        .serve(BufReader::new(BATCH.as_bytes()), &mut out)
        .unwrap();
    assert_eq!(exit, ServeExit::Terminated);
    let text = String::from_utf8(out).unwrap();
    let bye = Json::parse(text.lines().next().unwrap()).unwrap();
    assert_eq!(bye.get("event").and_then(Json::as_str), Some("bye"));
    assert_eq!(bye.get("reason").and_then(Json::as_str), Some("shutdown"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn journaled_jobs_from_a_dead_server_recover_at_startup() {
    use ringmesh_serve::Journal;

    let dir = tempdir("recover");
    let job = r#"{"op":"job","id":"m","network":"mesh","side":3,"warmup":600,"batch_cycles":600,"batches":2,"cache_line":32}"#;
    let spec = ringmesh_serve::parse_job(&Json::parse(job).unwrap(), "m").unwrap();
    let key = ResultCache::key(&spec.cfg);

    // A server journals the batch, then dies before simulating it.
    {
        fs::create_dir_all(&dir).unwrap();
        let (mut journal, recovery) = Journal::open(&dir).unwrap();
        assert!(recovery.is_none());
        journal
            .begin_batch(&[(key, Json::parse(job).unwrap())])
            .unwrap();
    }

    // The next startup completes the promised work before serving.
    let server = Server::new(opts(&dir)).unwrap();
    assert_eq!(server.recovered_jobs(), 1);
    let script = format!("{job}\n{{\"op\":\"run\"}}\n{{\"op\":\"quit\"}}\n");
    let lines = session(&server, &script);
    let batch = events(&lines, "batch")[0];
    assert_eq!(
        batch.get("cache_hits").and_then(Json::as_u64),
        Some(1),
        "recovered result is already cached"
    );

    // And the journal is clean: a further restart recovers nothing.
    let fresh = Server::new(opts(&dir)).unwrap();
    assert_eq!(fresh.recovered_jobs(), 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn results_carry_percentiles_and_fingerprint() {
    let dir = tempdir("payload");
    let server = Server::new(opts(&dir)).unwrap();
    let script = concat!(
        r#"{"op":"job","id":"r","network":"ring","spec":"6","warmup":800,"batch_cycles":800,"batches":3,"cache_line":32}"#,
        "\n",
        r#"{"op":"run"}"#,
        "\n",
        r#"{"op":"quit"}"#,
        "\n",
    );
    let lines = session(&server, script);
    let data_text = result_data(&lines, "r");
    let data = Json::parse(&data_text).unwrap();
    assert_eq!(
        data.get("schema").and_then(Json::as_str),
        Some("ringmesh-serve/1")
    );
    let p = data.get("percentiles").expect("percentiles present");
    for q in ["p50", "p95", "p99"] {
        assert!(p.get(q).and_then(Json::as_f64).unwrap() > 0.0);
    }
    assert!(
        data.get("latency")
            .unwrap()
            .get("mean")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0
    );
    assert_eq!(
        data.get("fingerprint")
            .and_then(Json::as_str)
            .unwrap()
            .len(),
        16
    );
    let _ = fs::remove_dir_all(&dir);
}
