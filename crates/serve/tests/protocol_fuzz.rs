//! Hand-rolled protocol fuzzing: no input a client can send — and no
//! corruption a disk can inflict — may panic the server, wedge a
//! session, or produce an unparseable event line.
//!
//! The corpus is deterministic (a seeded xorshift generator, no
//! `rand`), so a failure reproduces bit-for-bit from the seed printed
//! in the assertion message.

use std::fs;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use ringmesh_serve::json::Json;
use ringmesh_serve::{Journal, ResultCache, ServeExit, ServeOptions, Server};

fn tempdir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ringmesh-fuzz-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &Path) -> ServeOptions {
    ServeOptions {
        cache_dir: dir.to_path_buf(),
        threads: Some(2),
        ..ServeOptions::default()
    }
}

/// Feeds raw bytes to one session; the server must terminate the
/// session cleanly (EOF ⇒ `Quit`) and every output line must parse as
/// an event object.
fn fuzz_session(server: &Server, input: &[u8], label: &str) -> Vec<Json> {
    let mut out = Vec::new();
    let exit = server
        .serve(BufReader::new(input), &mut out)
        .unwrap_or_else(|e| panic!("{label}: transport error {e}"));
    assert_eq!(exit, ServeExit::Quit, "{label}: session must end at EOF");
    String::from_utf8(out)
        .unwrap_or_else(|_| panic!("{label}: server wrote invalid UTF-8"))
        .lines()
        .map(|l| {
            let v = Json::parse(l).unwrap_or_else(|e| panic!("{label}: bad event line {l}: {e}"));
            assert!(
                v.get("event").and_then(Json::as_str).is_some(),
                "{label}: event line without an event field: {l}"
            );
            v
        })
        .collect()
}

/// Tiny deterministic generator (xorshift64*): the corpus depends only
/// on the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const VALID_JOB: &str = r#"{"op":"job","id":"ok","network":"mesh","side":3,"warmup":600,"batch_cycles":600,"batches":2,"cache_line":32}"#;

#[test]
fn garbage_truncated_and_duplicated_lines_never_panic_or_wedge() {
    let dir = tempdir("garbage");
    let server = Server::new(opts(&dir)).unwrap();

    // Deterministic mutations of protocol-shaped text.
    let seeds: [&str; 6] = [
        VALID_JOB,
        r#"{"op":"run"}"#,
        r#"{"op":"stats"}"#,
        r#"{"op":"job","network":"ring","spec":"2:4"}"#,
        r#"{"event":"result","data":{}}"#,
        "[1,[2,[3,[4]]]]",
    ];
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    let mut script = Vec::new();
    for round in 0..200 {
        let base = seeds[rng.below(seeds.len())].as_bytes();
        match round % 5 {
            // Truncated at a random byte.
            0 => script.extend_from_slice(&base[..rng.below(base.len().max(1))]),
            // Duplicated (same line twice, one newline).
            1 => {
                script.extend_from_slice(base);
                script.extend_from_slice(base);
            }
            // Interleaved halves of two different lines.
            2 => {
                let other = seeds[rng.below(seeds.len())].as_bytes();
                script.extend_from_slice(&base[..base.len() / 2]);
                script.extend_from_slice(&other[other.len() / 2..]);
            }
            // Random bytes, newline-free garbage.
            3 => {
                for _ in 0..rng.below(64) {
                    let b = (rng.next() % 256) as u8;
                    if b != b'\n' {
                        script.push(b);
                    }
                }
            }
            // A byte-flipped valid line.
            _ => {
                let mut copy = base.to_vec();
                let at = rng.below(copy.len());
                copy[at] ^= 1 << rng.below(8);
                if copy[at] == b'\n' {
                    copy[at] = b'?';
                }
                script.extend_from_slice(&copy);
            }
        }
        script.push(b'\n');
    }
    let lines = fuzz_session(&server, &script, "garbage corpus");
    assert!(
        !lines.is_empty(),
        "malformed lines must draw typed error events, not silence"
    );
    // Still alive and well afterwards: a clean batch runs to completion.
    let clean = format!("{VALID_JOB}\n{{\"op\":\"run\"}}\n{{\"op\":\"quit\"}}\n");
    let after = fuzz_session(&server, clean.as_bytes(), "post-garbage batch");
    assert!(after
        .iter()
        .any(|l| l.get("event").and_then(Json::as_str) == Some("batch")));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn malformed_topology_specs_draw_typed_errors_not_panics() {
    let dir = tempdir("topology");
    let server = Server::new(opts(&dir)).unwrap();

    // Hand-picked near-misses plus deterministic mutations of valid
    // specs: every one must answer with a typed error event naming the
    // problem, and the session must stay usable.
    let mut specs: Vec<String> = [
        "",
        ":",
        "ring",
        "ring:",
        "ring:0",
        "ring:2:",
        "ringx:2",
        "ring3x:2:3",
        "mesh",
        "mesh:",
        "mesh:0",
        "mesh:-3",
        "mesh:3:5flit",
        "mesh:3:cl:extra",
        "hybrid",
        "hybrid:",
        "hybrid:4",
        "hybrid:4x",
        "hybrid:4x4",
        "hybrid:4x5:4",
        "hybrid:0x0:4",
        "hybrid:4x4:0",
        "hybrid:4x4:4:9",
        "torus:4",
        "slotted",
        "slotted:0:0",
        "MESH:3",
        "mesh:3 ",
        "hybrid:4×4:4",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rng = Rng(0x5eed_70b0);
    for base in ["ring:2:3:4", "mesh:12:cl", "hybrid:4x4:4", "slotted:2:2:3"] {
        for _ in 0..8 {
            let mut b = base.as_bytes().to_vec();
            let at = rng.below(b.len());
            b[at] = (rng.next() % 26) as u8 + b'a';
            if let Ok(s) = String::from_utf8(b) {
                if s.parse::<ringmesh::NetworkSpec>().is_err() {
                    specs.push(s);
                }
            }
        }
    }
    let mut script = String::new();
    for s in &specs {
        let esc = s.replace('\\', "\\\\").replace('"', "\\\"");
        script.push_str(&format!("{{\"op\":\"job\",\"topology\":\"{esc}\"}}\n"));
    }
    let lines = fuzz_session(&server, script.as_bytes(), "topology corpus");
    assert_eq!(lines.len(), specs.len(), "one typed answer per bad spec");
    for l in &lines {
        assert_eq!(l.get("event").and_then(Json::as_str), Some("error"));
    }
    // Still alive: a valid hybrid job keyed by its topology spec runs.
    let clean = "{\"op\":\"job\",\"id\":\"h\",\"topology\":\"hybrid:2x2:2\",\"cache_line\":32,\
                 \"warmup\":600,\"batch_cycles\":600,\"batches\":2}\n{\"op\":\"run\"}\n{\"op\":\"quit\"}\n";
    let after = fuzz_session(&server, clean.as_bytes(), "post-corpus hybrid");
    assert!(after
        .iter()
        .any(|l| l.get("event").and_then(Json::as_str) == Some("result")));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn deep_nesting_and_pathological_json_are_rejected_typed() {
    let dir = tempdir("nesting");
    let server = Server::new(opts(&dir)).unwrap();
    let mut script = String::new();
    // 1000 levels of nesting (the parser caps recursion), unbalanced
    // braces, bare values, huge numbers, NUL bytes in strings.
    script.push_str(&"[".repeat(1000));
    script.push_str(&"]".repeat(1000));
    script.push('\n');
    script.push_str(&"{".repeat(500));
    script.push('\n');
    script.push_str("1e999999\n");
    script.push_str("\"\\u0000\\uDEAD\"\n");
    script.push_str("{\"op\":\"job\",\"network\":1e308,\"side\":-0}\n");
    let lines = fuzz_session(&server, script.as_bytes(), "pathological json");
    for l in &lines {
        assert_eq!(l.get("event").and_then(Json::as_str), Some("error"));
    }
    assert!(!lines.is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn oversized_lines_in_the_middle_of_a_stream_do_not_desync_it() {
    let dir = tempdir("desync");
    let server = Server::new(opts(&dir)).unwrap();
    // A 2 MiB line split across many buffered reads, with real requests
    // on both sides; the reader must discard exactly through its
    // newline and resume at the next line.
    let mut script = Vec::new();
    script.extend_from_slice(b"{\"op\":\"stats\"}\n");
    script.extend_from_slice(&vec![b'A'; 2 << 20]);
    script.push(b'\n');
    script.extend_from_slice(b"{\"op\":\"stats\"}\n");
    let lines = fuzz_session(&server, &script, "oversized middle");
    let stats = lines
        .iter()
        .filter(|l| l.get("event").and_then(Json::as_str) == Some("stats"))
        .count();
    let errors = lines
        .iter()
        .filter(|l| l.get("event").and_then(Json::as_str) == Some("error"))
        .count();
    assert_eq!((stats, errors), (2, 1));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_cache_files_of_every_shape_heal_instead_of_poisoning() {
    let dir = tempdir("torn-cache");
    let server = Server::new(opts(&dir)).unwrap();
    let script = format!("{VALID_JOB}\n{{\"op\":\"run\"}}\n{{\"op\":\"quit\"}}\n");
    let first = fuzz_session(&server, script.as_bytes(), "seed batch");
    let payload = first
        .iter()
        .find(|l| l.get("event").and_then(Json::as_str) == Some("result"))
        .and_then(|l| l.get("data"))
        .expect("seed result")
        .to_string();
    drop(server);

    let entry = {
        let mut found = None;
        for shard in fs::read_dir(&dir).unwrap().flatten() {
            if !shard.path().is_dir() || shard.file_name() == "quarantine" {
                continue;
            }
            for f in fs::read_dir(shard.path()).unwrap().flatten() {
                if f.path().extension().is_some_and(|e| e == "json") {
                    found = Some(f.path());
                }
            }
        }
        found.expect("one stored entry")
    };
    let sealed = fs::read(&entry).unwrap();

    // Every torn shape must verify-fail on read and recompute to the
    // same bytes: truncations at interesting offsets, bit flips in the
    // payload, bit flips in the footer, empty files, raw garbage.
    let mut corruptions: Vec<(String, Vec<u8>)> = Vec::new();
    for cut in [0, 1, sealed.len() / 2, sealed.len() - 2] {
        corruptions.push((format!("truncated@{cut}"), sealed[..cut].to_vec()));
    }
    for flip in [8, sealed.len() / 3, sealed.len() - 5] {
        let mut c = sealed.clone();
        c[flip] ^= 0x10;
        corruptions.push((format!("bitflip@{flip}"), c));
    }
    corruptions.push(("garbage".into(), b"!!not json at all!!".to_vec()));

    for (label, bytes) in corruptions {
        fs::write(&entry, &bytes).unwrap();
        let server = Server::new(opts(&dir)).unwrap();
        let lines = fuzz_session(&server, script.as_bytes(), &label);
        let healed = lines
            .iter()
            .find(|l| l.get("event").and_then(Json::as_str) == Some("result"))
            .and_then(|l| l.get("data"))
            .unwrap_or_else(|| panic!("{label}: no result event"))
            .to_string();
        assert_eq!(healed, payload, "{label}: healed payload must be identical");
        // The healed entry is sealed and verifiable again.
        let resealed = fs::read_to_string(&entry).unwrap();
        assert!(
            ResultCache::unseal(&resealed).is_some(),
            "{label}: entry not resealed"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_journals_of_every_shape_open_and_serve() {
    let dir = tempdir("torn-journal");
    {
        let server = Server::new(opts(&dir)).unwrap();
        let script = format!("{VALID_JOB}\n{{\"op\":\"run\"}}\n{{\"op\":\"quit\"}}\n");
        fuzz_session(&server, script.as_bytes(), "seed journal");
    }
    // A settled journal truncates to empty, so there is nothing left to
    // tear; journal an in-flight batch the way a SIGKILL mid-batch
    // would leave one.
    {
        let (mut journal, recovery) = Journal::open(&dir).unwrap();
        assert!(recovery.is_none(), "seed batch must have settled");
        let spec = Json::parse(VALID_JOB).unwrap();
        journal
            .begin_batch(&[(0xdead_beef_0000_0001, spec)])
            .unwrap();
    }
    let wal = dir.join("journal.wal");
    let text = fs::read(&wal).unwrap();
    assert!(!text.is_empty(), "in-flight batch must persist records");
    let mut rng = Rng(42);
    for round in 0..12 {
        let mut torn = text.clone();
        match round % 3 {
            0 => torn.truncate(rng.below(torn.len().max(1))),
            1 => {
                let at = rng.below(torn.len());
                torn[at] ^= 0x20;
            }
            _ => torn.extend_from_slice(b"{\"rec\":\"job\",\"ba"),
        }
        fs::write(&wal, &torn).unwrap();
        // Opening must never fail or panic; whatever survives replay is
        // either recovered or dropped with a stderr note.
        let server = Server::new(opts(&dir)).unwrap();
        let lines = fuzz_session(&server, b"{\"op\":\"stats\"}\n", &format!("round {round}"));
        assert!(lines
            .iter()
            .any(|l| l.get("event").and_then(Json::as_str) == Some("stats")));
    }
    let _ = fs::remove_dir_all(&dir);
}
