//! Per-link / per-station utilization accumulators.
//!
//! A [`Heatmap`] is a dense 2-D grid of event counts with labelled
//! axes. Networks register one at tracer-attach time, sized off their
//! topology (ring level × station-side for hierarchical rings, row ×
//! column for meshes), and bump cells on every link transfer. The grid
//! renders either as an ASCII shade plot for terminals or as CSV for
//! spreadsheets.

/// Handle returned by `Tracer::add_heatmap`, used to address the map on
/// subsequent bumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeatmapId(pub(crate) usize);

/// Shade ramp from cold to hot, used by the ASCII renderer.
const SHADES: &[u8] = b" .:-=+*#%@";

/// A labelled 2-D grid of u64 accumulators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heatmap {
    title: String,
    row_axis: String,
    col_axis: String,
    rows: usize,
    cols: usize,
    cells: Vec<u64>,
}

impl Heatmap {
    /// Creates an all-zero grid. Axis names label what the row/column
    /// indices mean (e.g. "level", "station-side").
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(title: &str, row_axis: &str, col_axis: &str, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "heatmap dimensions must be positive");
        Heatmap {
            title: title.to_string(),
            row_axis: row_axis.to_string(),
            col_axis: col_axis.to_string(),
            rows,
            cols,
            cells: vec![0; rows * cols],
        }
    }

    /// Grid title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// (rows, cols) dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Adds `n` to cell (row, col).
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of bounds.
    pub fn bump(&mut self, row: usize, col: usize, n: u64) {
        assert!(
            row < self.rows && col < self.cols,
            "heatmap cell ({row},{col}) out of bounds"
        );
        self.cells[row * self.cols + col] += n;
    }

    /// Reads cell (row, col).
    pub fn get(&self, row: usize, col: usize) -> u64 {
        assert!(
            row < self.rows && col < self.cols,
            "heatmap cell ({row},{col}) out of bounds"
        );
        self.cells[row * self.cols + col]
    }

    /// Sum over all cells.
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// Largest single cell.
    pub fn max(&self) -> u64 {
        self.cells.iter().copied().max().unwrap_or(0)
    }

    /// Renders the grid as an ASCII shade plot: one character per cell,
    /// linearly scaled against the hottest cell, with a legend.
    ///
    /// ```text
    /// ring link flits (rows: level, cols: station-side)
    ///   0 | ::::----
    ///   1 | ==@@
    ///   scale: ' '=0 .. '@'=412 flits/cell
    /// ```
    pub fn to_ascii(&self) -> String {
        let max = self.max();
        let mut out = format!(
            "{} (rows: {}, cols: {})\n",
            self.title, self.row_axis, self.col_axis
        );
        for r in 0..self.rows {
            out.push_str(&format!("{r:>4} | "));
            for c in 0..self.cols {
                let v = self.cells[r * self.cols + c];
                let shade = if max == 0 {
                    SHADES[0]
                } else {
                    // Nonzero cells never render as blank: floor the
                    // shade index at 1 so light traffic stays visible.
                    let idx = (v * (SHADES.len() as u64 - 1)).div_ceil(max) as usize;
                    SHADES[idx.min(SHADES.len() - 1)]
                };
                out.push(shade as char);
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "     scale: ' '=0 .. '{}'={} per cell\n",
            SHADES[SHADES.len() - 1] as char,
            max
        ));
        out
    }

    /// Renders the grid as CSV: a header of column indices, then one
    /// line per row, the row index first.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(&self.row_axis);
        for c in 0..self.cols {
            out.push_str(&format!(",{c}"));
        }
        out.push('\n');
        for r in 0..self.rows {
            out.push_str(&r.to_string());
            for c in 0..self.cols {
                out.push_str(&format!(",{}", self.cells[r * self.cols + c]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get_round_trip() {
        let mut h = Heatmap::new("t", "r", "c", 2, 3);
        h.bump(1, 2, 5);
        h.bump(1, 2, 2);
        h.bump(0, 0, 1);
        assert_eq!(h.get(1, 2), 7);
        assert_eq!(h.get(0, 0), 1);
        assert_eq!(h.get(0, 1), 0);
        assert_eq!(h.total(), 8);
        assert_eq!(h.max(), 7);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bump_out_of_bounds_panics() {
        let mut h = Heatmap::new("t", "r", "c", 2, 2);
        h.bump(2, 0, 1);
    }

    #[test]
    fn ascii_render_scales_to_hottest_cell() {
        let mut h = Heatmap::new("links", "level", "side", 2, 4);
        h.bump(0, 0, 100);
        h.bump(1, 3, 1);
        let art = h.to_ascii();
        assert!(art.starts_with("links (rows: level, cols: side)"));
        // Hottest cell renders with the top shade; the light one must
        // not disappear into a blank.
        assert!(art.contains('@'), "{art}");
        let row1 = art.lines().nth(2).unwrap();
        assert_eq!(row1.chars().last().unwrap(), '.', "{art}");
        assert!(art.contains("'@'=100"), "{art}");
    }

    #[test]
    fn ascii_render_of_empty_map_is_all_blank() {
        let h = Heatmap::new("links", "level", "side", 1, 3);
        let art = h.to_ascii();
        assert!(art.lines().nth(1).unwrap().ends_with("|    "), "{art:?}");
    }

    #[test]
    fn csv_has_header_and_row_indices() {
        let mut h = Heatmap::new("links", "level", "side", 2, 2);
        h.bump(0, 1, 3);
        let csv = h.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines, vec!["level,0,1", "0,0,3", "1,0,0"]);
    }
}
