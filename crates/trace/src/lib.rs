//! Cycle-level observability for the `ringmesh` simulator.
//!
//! The simulator's headline numbers (latency, throughput) say *what*
//! happened; this crate exists to show *where* and *why*: which links
//! saturate on a hierarchical ring versus a mesh, where flits spend
//! their blocked cycles, how deep the inter-ring interface queues run.
//! It provides:
//!
//! - **Typed counters and gauges** ([`Counter`], [`Gauge`]) accumulated
//!   per sampling window, summarized with mean ± 95% CI via
//!   `ringmesh-stats` so trace numbers carry the same statistical
//!   discipline as the paper's batch means.
//! - **Utilization heatmaps** ([`Heatmap`]) — per-link flit counts over
//!   ring level × station-side or mesh row × column, rendered as ASCII
//!   shade plots or CSV.
//! - **A flit-lifecycle event stream** ([`FlitEvent`]: inject, per-hop,
//!   eject) with bounded memory (ring buffer plus transaction
//!   sampling), exportable as Chrome-trace JSON loadable in Perfetto.
//!
//! The emit side is [`Tracer`]: a registry of [`TraceSink`]s that
//! defaults to empty. Instrumented code holds a `Tracer` and calls
//! `count`/`gauge`/`event`; every method starts with an inlined
//! enabled-check, so an un-traced simulation pays a predictable
//! never-taken branch at worst — hot loops guard a whole block with
//! [`Tracer::is_enabled`] and pay nothing per flit. Components that
//! publish periodic state implement [`Probe`].
//!
//! # Example
//!
//! ```
//! use ringmesh_trace::{Counter, Heatmap, TraceConfig, Tracer};
//!
//! let mut t = Tracer::recording(TraceConfig { window_cycles: 100, ..Default::default() });
//! let links = t.add_heatmap(Heatmap::new("links", "level", "side", 2, 4)).unwrap();
//! for cycle in 0..200 {
//!     t.cycle(cycle);
//!     t.count(Counter::FlitsForwarded, 3);
//!     t.heatmap(links, (cycle % 2) as usize, 0, 1);
//! }
//! let report = t.finish().unwrap();
//! assert_eq!(report.counters[Counter::FlitsForwarded as usize].total, 600);
//! assert_eq!(report.heatmaps[0].total(), 200);
//! println!("{}", report.to_text());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod heatmap;
mod metric;
mod recorder;
mod report;
mod sink;
mod tracer;

pub use event::{EventKind, FlitEvent, TraceLoc};
pub use heatmap::{Heatmap, HeatmapId};
pub use metric::{Counter, Gauge};
pub use recorder::{Recorder, TraceConfig};
pub use report::{CounterReport, GaugeReport, TraceReport};
pub use sink::{NopSink, Probe, TraceSink};
pub use tracer::Tracer;
