//! Flit-lifecycle events and the spatial locations they refer to.

use std::fmt;

/// A spatial location in the simulated machine, compact enough to copy
/// into every event. Rendered labels (for heatmap axes and Chrome-trace
/// track names) are produced lazily at export time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLoc {
    /// A processing module (NIC attach point on rings, local port on
    /// meshes).
    Pm {
        /// Processing-module index.
        pm: u32,
    },
    /// A ring station, identified by the ring it sits on and its global
    /// station index.
    RingStation {
        /// Ring index within the topology.
        ring: u32,
        /// Global station index.
        station: u32,
    },
    /// A mesh router at grid position (row, col).
    MeshNode {
        /// Grid row.
        row: u32,
        /// Grid column.
        col: u32,
    },
}

impl fmt::Display for TraceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceLoc::Pm { pm } => write!(f, "pm{pm}"),
            TraceLoc::RingStation { ring, station } => write!(f, "ring{ring}/st{station}"),
            TraceLoc::MeshNode { row, col } => write!(f, "mesh({row},{col})"),
        }
    }
}

/// What happened to the packet at [`FlitEvent::at`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The packet entered the network. Carries enough metadata to give
    /// the Chrome-trace span a readable name.
    Inject {
        /// Source processing module.
        src: u32,
        /// Destination processing module.
        dst: u32,
        /// Packet length in flits.
        flits: u32,
    },
    /// The packet's head flit traversed a link into `at`.
    Hop,
    /// The packet was fully reassembled and ejected at `at`.
    Eject,
}

/// One record in the flit-lifecycle stream.
///
/// Events are recorded only for *sampled* transactions (see
/// `TraceConfig::sample_every`) and held in a bounded ring buffer, so
/// memory stays O(capacity) no matter how long the run is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlitEvent {
    /// Transaction id of the packet (raw u64 form).
    pub txn: u64,
    /// Simulation cycle at which the event occurred.
    pub cycle: u64,
    /// Where it occurred.
    pub at: TraceLoc,
    /// What occurred.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locations_render_compactly() {
        assert_eq!(TraceLoc::Pm { pm: 3 }.to_string(), "pm3");
        assert_eq!(
            TraceLoc::RingStation {
                ring: 2,
                station: 17
            }
            .to_string(),
            "ring2/st17"
        );
        assert_eq!(
            TraceLoc::MeshNode { row: 1, col: 4 }.to_string(),
            "mesh(1,4)"
        );
    }

    #[test]
    fn events_are_small_enough_to_copy_freely() {
        // The event stream copies these per hop; keep them word-sized,
        // not heap-backed.
        assert!(std::mem::size_of::<FlitEvent>() <= 48);
    }
}
