//! The finalized trace: per-counter summaries, heatmaps, events, and
//! exporters (text, CSV via [`ringmesh_stats::Table`], Chrome-trace
//! JSON).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ringmesh_stats::{Summary, Table};

use crate::event::{EventKind, FlitEvent, TraceLoc};
use crate::heatmap::Heatmap;
use crate::metric::{Counter, Gauge};

/// One counter's final numbers.
#[derive(Debug, Clone)]
pub struct CounterReport {
    /// Which counter.
    pub counter: Counter,
    /// Run total.
    pub total: u64,
    /// Per-window totals (mean ± CI across sampling windows).
    pub per_window: Summary,
}

/// One gauge's final numbers.
#[derive(Debug, Clone)]
pub struct GaugeReport {
    /// Which gauge.
    pub gauge: Gauge,
    /// Number of readings taken over the whole run.
    pub samples: u64,
    /// Mean over every reading taken.
    pub mean: f64,
    /// Per-window means (mean ± CI across sampling windows).
    pub per_window: Summary,
}

/// Everything a recording tracer collected, ready to render.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Cycles observed (first to last `cycle()` call, inclusive).
    pub cycles: u64,
    /// Sampling window length the run used.
    pub window_cycles: u64,
    /// Transaction sampling interval the run used.
    pub sample_every: u64,
    /// Counter summaries, indexed by `Counter as usize`.
    pub counters: Vec<CounterReport>,
    /// Gauge summaries, indexed by `Gauge as usize`.
    pub gauges: Vec<GaugeReport>,
    /// Registered heatmaps, in registration order.
    pub heatmaps: Vec<Heatmap>,
    /// Sampled lifecycle events, oldest first.
    pub events: Vec<FlitEvent>,
    /// Events discarded because the ring buffer was full.
    pub events_dropped: u64,
}

impl TraceReport {
    /// Counter summaries as a [`Table`] (render with `to_markdown` or
    /// `to_csv`). Counters that never fired are omitted.
    pub fn counter_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "trace counters ({} cycles, window {})",
                self.cycles, self.window_cycles
            ),
            &["counter", "total", "per-window mean", "ci95"],
        );
        for c in &self.counters {
            if c.total == 0 {
                continue;
            }
            t.push_row(vec![
                c.counter.name().to_string(),
                c.total.to_string(),
                format!("{:.2}", c.per_window.mean),
                format!("{:.2}", c.per_window.ci95),
            ]);
        }
        t
    }

    /// Gauge summaries as a [`Table`]. Gauges never sampled are omitted.
    pub fn gauge_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "trace gauges ({} cycles, window {})",
                self.cycles, self.window_cycles
            ),
            &["gauge", "mean", "per-window mean", "ci95"],
        );
        for g in &self.gauges {
            if g.samples == 0 {
                continue;
            }
            t.push_row(vec![
                g.gauge.name().to_string(),
                format!("{:.3}", g.mean),
                format!("{:.3}", g.per_window.mean),
                format!("{:.3}", g.per_window.ci95),
            ]);
        }
        t
    }

    /// Full human-readable rendering: counter and gauge tables, ASCII
    /// heatmaps, and an event-stream footer.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.counter_table().to_markdown());
        out.push('\n');
        out.push_str(&self.gauge_table().to_markdown());
        for map in &self.heatmaps {
            out.push('\n');
            out.push_str(&map.to_ascii());
        }
        let _ = writeln!(
            out,
            "\nevents: {} recorded ({} dropped), sampling 1 in {} transactions",
            self.events.len(),
            self.events_dropped,
            self.sample_every
        );
        out
    }

    /// Exports the sampled event stream in the Chrome trace-event JSON
    /// format (load in Perfetto / `chrome://tracing`).
    ///
    /// Layout: process "packets" holds one async span per sampled
    /// transaction (inject → eject); process "locations" holds one
    /// track per network location with a 1-cycle slice for every hop or
    /// ejection there. Timestamps are in microseconds with one
    /// simulated cycle mapped to 1 µs.
    pub fn chrome_trace_json(&self) -> String {
        const PID_PACKETS: u32 = 1;
        const PID_LOCS: u32 = 2;

        // Stable small thread ids per location, discovery order.
        let mut tids: BTreeMap<TraceLoc, u32> = BTreeMap::new();
        for ev in &self.events {
            let next = tids.len() as u32 + 1;
            tids.entry(ev.at).or_insert(next);
        }

        let mut parts: Vec<String> = Vec::with_capacity(self.events.len() + tids.len() + 2);
        parts.push(format!(
            r#"{{"ph":"M","pid":{PID_PACKETS},"name":"process_name","args":{{"name":"packets"}}}}"#
        ));
        parts.push(format!(
            r#"{{"ph":"M","pid":{PID_LOCS},"name":"process_name","args":{{"name":"locations"}}}}"#
        ));
        for (loc, tid) in &tids {
            parts.push(format!(
                r#"{{"ph":"M","pid":{PID_LOCS},"tid":{tid},"name":"thread_name","args":{{"name":"{}"}}}}"#,
                json_escape(&loc.to_string())
            ));
        }

        for ev in &self.events {
            let tid = tids[&ev.at];
            match ev.kind {
                EventKind::Inject { src, dst, flits } => {
                    // Async span start on the packets process; the pair
                    // is keyed by (cat, id, name) — use the txn for all.
                    let name = format!("txn{} pm{src}->pm{dst} ({flits} flits)", ev.txn);
                    parts.push(format!(
                        r#"{{"ph":"b","cat":"packet","id":{},"pid":{PID_PACKETS},"tid":1,"ts":{},"name":"{}"}}"#,
                        ev.txn,
                        ev.cycle,
                        json_escape(&name)
                    ));
                    parts.push(slice(
                        PID_LOCS,
                        tid,
                        ev.cycle,
                        &format!("inject txn{}", ev.txn),
                    ));
                }
                EventKind::Hop => {
                    parts.push(slice(PID_LOCS, tid, ev.cycle, &format!("txn{}", ev.txn)));
                }
                EventKind::Eject => {
                    parts.push(format!(
                        r#"{{"ph":"e","cat":"packet","id":{},"pid":{PID_PACKETS},"tid":1,"ts":{},"name":"txn{}"}}"#,
                        ev.txn, ev.cycle, ev.txn
                    ));
                    parts.push(slice(
                        PID_LOCS,
                        tid,
                        ev.cycle,
                        &format!("eject txn{}", ev.txn),
                    ));
                }
            }
        }

        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
            parts.join(",\n")
        )
    }
}

/// A 1-cycle complete ("X") slice on a location track.
fn slice(pid: u32, tid: u32, ts: u64, name: &str) -> String {
    format!(
        r#"{{"ph":"X","pid":{pid},"tid":{tid},"ts":{ts},"dur":1,"name":"{}"}}"#,
        json_escape(name)
    )
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, TraceConfig};
    use crate::sink::TraceSink;

    fn sample_report() -> TraceReport {
        let mut r = Recorder::new(TraceConfig {
            window_cycles: 5,
            ..Default::default()
        });
        let mut map = Heatmap::new("links", "level", "side", 1, 2);
        map.bump(0, 0, 0); // registered pre-populated maps keep their counts
        let id = r.add_heatmap(map);
        for cycle in 0..10u64 {
            r.on_cycle(cycle);
            r.on_count(Counter::FlitsForwarded, 2);
            r.on_gauge(Gauge::InFlightPackets, 1.5);
            r.on_heatmap(id, 0, (cycle % 2) as usize, 1);
        }
        r.on_event(FlitEvent {
            txn: 4,
            cycle: 0,
            at: TraceLoc::Pm { pm: 0 },
            kind: EventKind::Inject {
                src: 0,
                dst: 3,
                flits: 6,
            },
        });
        r.on_event(FlitEvent {
            txn: 4,
            cycle: 2,
            at: TraceLoc::RingStation {
                ring: 1,
                station: 2,
            },
            kind: EventKind::Hop,
        });
        r.on_event(FlitEvent {
            txn: 4,
            cycle: 5,
            at: TraceLoc::Pm { pm: 3 },
            kind: EventKind::Eject,
        });
        r.finish()
    }

    #[test]
    fn text_report_includes_tables_heatmap_and_event_footer() {
        let text = sample_report().to_text();
        assert!(text.contains("flits_forwarded"), "{text}");
        assert!(text.contains("in_flight_packets"), "{text}");
        assert!(text.contains("links (rows: level, cols: side)"), "{text}");
        assert!(text.contains("events: 3 recorded (0 dropped)"), "{text}");
    }

    #[test]
    fn counter_table_omits_silent_counters() {
        let table = sample_report().counter_table();
        let md = table.to_markdown();
        assert!(md.contains("flits_forwarded"));
        assert!(!md.contains("iri_crossings"), "{md}");
    }

    #[test]
    fn chrome_trace_pairs_async_span_and_places_hops_on_location_tracks() {
        let json = sample_report().chrome_trace_json();
        assert!(json.contains(r#""ph":"b","cat":"packet","id":4"#), "{json}");
        assert!(json.contains(r#""ph":"e","cat":"packet","id":4"#), "{json}");
        assert!(json.contains(r#""name":"ring1/st2""#), "{json}");
        assert!(
            json.contains(r#""name":"txn4 pm0->pm3 (6 flits)""#),
            "{json}"
        );
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let json = sample_report().chrome_trace_json();
        minijson::parse(&json).expect("export must be syntactically valid JSON");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    /// A tiny recursive-descent JSON syntax checker, test-only: the
    /// exporter hand-writes JSON (no serde available offline), so we
    /// verify well-formedness the hard way.
    mod minijson {
        pub fn parse(s: &str) -> Result<(), String> {
            let b = s.as_bytes();
            let mut i = 0;
            value(b, &mut i)?;
            skip_ws(b, &mut i);
            if i != b.len() {
                return Err(format!("trailing bytes at {i}"));
            }
            Ok(())
        }

        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
                *i += 1;
            }
        }

        fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
            skip_ws(b, i);
            match b.get(*i) {
                Some(b'{') => object(b, i),
                Some(b'[') => array(b, i),
                Some(b'"') => string(b, i),
                Some(b't') => lit(b, i, b"true"),
                Some(b'f') => lit(b, i, b"false"),
                Some(b'n') => lit(b, i, b"null"),
                Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
                other => Err(format!("unexpected {other:?} at {i}")),
            }
        }

        fn lit(b: &[u8], i: &mut usize, word: &[u8]) -> Result<(), String> {
            if b[*i..].starts_with(word) {
                *i += word.len();
                Ok(())
            } else {
                Err(format!("bad literal at {i}"))
            }
        }

        fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
            let start = *i;
            if b.get(*i) == Some(&b'-') {
                *i += 1;
            }
            while *i < b.len()
                && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            if *i == start {
                Err(format!("empty number at {start}"))
            } else {
                Ok(())
            }
        }

        fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1; // opening quote
            while *i < b.len() {
                match b[*i] {
                    b'"' => {
                        *i += 1;
                        return Ok(());
                    }
                    b'\\' => *i += 2,
                    0x00..=0x1f => return Err(format!("raw control byte in string at {i}")),
                    _ => *i += 1,
                }
            }
            Err("unterminated string".into())
        }

        fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at {i}"));
                }
                *i += 1;
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?} at {i}")),
                }
            }
        }

        fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?} at {i}")),
                }
            }
        }
    }
}
