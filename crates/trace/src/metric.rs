//! Typed metric identifiers.
//!
//! Counters and gauges are closed enums rather than string keys: every
//! emit site names a variant, so a typo is a compile error and the
//! recorder can store readings in flat arrays indexed by discriminant
//! instead of hashing names on the hot path.

/// A monotonically increasing count of discrete simulation events.
///
/// Counters are accumulated per sampling window (see
/// `TraceConfig::window_cycles`), which lets the report show both the
/// run total and the across-window mean with a confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Flits that traversed a network link this cycle (ring
    /// station-to-station hops and mesh router-to-router hops).
    FlitsForwarded,
    /// Packets accepted into the network from a processing module.
    PacketsInjected,
    /// Packets fully reassembled and handed back to a processing module.
    PacketsDelivered,
    /// Cycles in which a flit was ready on an output link but the
    /// downstream stage's registered stop/go signal denied the transfer.
    BlockedCycles,
    /// Flits that crossed between ring levels through an inter-ring
    /// interface (either direction).
    IriCrossings,
    /// Memory transactions issued by processors this window.
    TxnsIssued,
    /// Memory transactions retired (response fully received).
    TxnsRetired,
    /// Retired transactions whose target was the processor's own memory.
    TxnsLocalRetired,
    /// Cycles a processor sat ready to issue but the network refused
    /// the injection (send-queue backpressure).
    IssueBlocked,
    /// Packets dropped by fault injection (corrupted, unreachable, or
    /// sunk at a dead component).
    PacketsDropped,
    /// Transaction retry attempts injected after a timeout.
    TxnsRetried,
    /// Transactions abandoned after exhausting their retry budget.
    TxnsFailed,
}

impl Counter {
    /// Every counter, in display order.
    pub const ALL: [Counter; 12] = [
        Counter::FlitsForwarded,
        Counter::PacketsInjected,
        Counter::PacketsDelivered,
        Counter::BlockedCycles,
        Counter::IriCrossings,
        Counter::TxnsIssued,
        Counter::TxnsRetired,
        Counter::TxnsLocalRetired,
        Counter::IssueBlocked,
        Counter::PacketsDropped,
        Counter::TxnsRetried,
        Counter::TxnsFailed,
    ];

    /// Stable snake_case name used in reports and CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            Counter::FlitsForwarded => "flits_forwarded",
            Counter::PacketsInjected => "packets_injected",
            Counter::PacketsDelivered => "packets_delivered",
            Counter::BlockedCycles => "blocked_cycles",
            Counter::IriCrossings => "iri_crossings",
            Counter::TxnsIssued => "txns_issued",
            Counter::TxnsRetired => "txns_retired",
            Counter::TxnsLocalRetired => "txns_local_retired",
            Counter::IssueBlocked => "issue_blocked",
            Counter::PacketsDropped => "packets_dropped",
            Counter::TxnsRetried => "txns_retried",
            Counter::TxnsFailed => "txns_failed",
        }
    }
}

/// A sampled instantaneous reading (occupancy, backlog), averaged per
/// sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// Flits resident in ring-station transit buffers.
    RingBufferOccupancy,
    /// Flits queued in inter-ring interface up/down queues.
    IriQueueOccupancy,
    /// Flits resident in mesh router input buffers.
    MeshInputOccupancy,
    /// Packets somewhere in the network (injected, not yet delivered).
    InFlightPackets,
    /// Outstanding transactions across all processors.
    OutstandingTxns,
}

impl Gauge {
    /// Every gauge, in display order.
    pub const ALL: [Gauge; 5] = [
        Gauge::RingBufferOccupancy,
        Gauge::IriQueueOccupancy,
        Gauge::MeshInputOccupancy,
        Gauge::InFlightPackets,
        Gauge::OutstandingTxns,
    ];

    /// Stable snake_case name used in reports and CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::RingBufferOccupancy => "ring_buffer_occupancy",
            Gauge::IriQueueOccupancy => "iri_queue_occupancy",
            Gauge::MeshInputOccupancy => "mesh_input_occupancy",
            Gauge::InFlightPackets => "in_flight_packets",
            Gauge::OutstandingTxns => "outstanding_txns",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique() {
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }

    #[test]
    fn gauge_names_are_unique() {
        let mut names: Vec<_> = Gauge::ALL.iter().map(|g| g.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Gauge::ALL.len());
    }

    #[test]
    fn discriminants_are_dense() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i);
        }
    }
}
