//! The sink and probe abstractions.

use crate::event::FlitEvent;
use crate::heatmap::HeatmapId;
use crate::metric::{Counter, Gauge};
use crate::tracer::Tracer;

/// Receives trace emissions.
///
/// Every method has a no-op default, so a sink implements only what it
/// cares about; a `TraceSink` with nothing overridden is a valid "drop
/// everything" sink. The standard in-memory implementation is
/// [`crate::Recorder`]; custom sinks (a live TUI, a socket writer) can
/// be registered alongside it via `Tracer::attach`.
pub trait TraceSink: std::fmt::Debug {
    /// A new simulation cycle is beginning.
    fn on_cycle(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// `n` more occurrences of counter `c`.
    fn on_count(&mut self, c: Counter, n: u64) {
        let _ = (c, n);
    }

    /// An instantaneous reading of gauge `g`.
    fn on_gauge(&mut self, g: Gauge, value: f64) {
        let _ = (g, value);
    }

    /// `n` more events in cell (row, col) of heatmap `id`.
    fn on_heatmap(&mut self, id: HeatmapId, row: usize, col: usize, n: u64) {
        let _ = (id, row, col, n);
    }

    /// A flit-lifecycle event for a sampled transaction.
    fn on_event(&mut self, ev: FlitEvent) {
        let _ = ev;
    }
}

/// A sink that drops everything — the registry's explicit no-op
/// default. Instrumented code paths attached to a `NopSink` compile to
/// a branch on the (empty) registry and nothing else.
#[derive(Debug, Default, Clone, Copy)]
pub struct NopSink;

impl TraceSink for NopSink {}

/// Implemented by simulation components that can deposit their current
/// state into a tracer on demand.
///
/// Networks and workloads implement this to publish gauges (buffer
/// occupancies, in-flight counts); the owner calls [`Probe::probe`]
/// once per cycle while tracing is enabled, and never when it is off,
/// so un-traced runs pay nothing.
pub trait Probe {
    /// Deposit current readings into `t`.
    fn probe(&self, t: &mut Tracer);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceLoc};

    #[test]
    fn nop_sink_accepts_everything() {
        let mut s = NopSink;
        s.on_cycle(1);
        s.on_count(Counter::FlitsForwarded, 3);
        s.on_gauge(Gauge::InFlightPackets, 2.0);
        s.on_heatmap(HeatmapId(0), 0, 0, 1);
        s.on_event(FlitEvent {
            txn: 0,
            cycle: 0,
            at: TraceLoc::Pm { pm: 0 },
            kind: EventKind::Hop,
        });
    }
}
