//! The tracer handle threaded through the simulator.

use crate::event::{EventKind, FlitEvent, TraceLoc};
use crate::heatmap::{Heatmap, HeatmapId};
use crate::metric::{Counter, Gauge};
use crate::recorder::{Recorder, TraceConfig};
use crate::report::TraceReport;
use crate::sink::TraceSink;

/// The emit-side handle instrumented code holds.
///
/// A `Tracer` is a small registry of sinks. The default,
/// [`Tracer::off`], has no sinks at all: every emit method starts with
/// an inlined `is_enabled` check, so un-traced simulations pay one
/// predictable branch per *call site that is reached*, and call sites
/// guarded by an outer `is_enabled()` pay nothing. A recording tracer
/// ([`Tracer::recording`]) owns a [`Recorder`] that can later be
/// finalized into a [`TraceReport`]; additional custom sinks can be
/// attached alongside it and receive the same emissions.
#[derive(Debug, Default)]
pub struct Tracer {
    recorder: Option<Box<Recorder>>,
    sinks: Vec<Box<dyn TraceSink>>,
}

impl Tracer {
    /// A disabled tracer: no sinks, every emit a no-op.
    pub fn off() -> Tracer {
        Tracer::default()
    }

    /// A tracer recording into an in-memory [`Recorder`].
    pub fn recording(cfg: TraceConfig) -> Tracer {
        Tracer {
            recorder: Some(Box::new(Recorder::new(cfg))),
            sinks: Vec::new(),
        }
    }

    /// Attaches an extra sink; it receives every emission alongside the
    /// recorder (if any). Attaching a sink enables the tracer.
    pub fn attach(&mut self, sink: Box<dyn TraceSink>) {
        self.sinks.push(sink);
    }

    /// Whether any sink is listening. Emit sites with per-flit loops
    /// should check this once and skip the whole block when false.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some() || !self.sinks.is_empty()
    }

    /// Registers a heatmap with the recorder and returns its handle,
    /// or `None` when no recorder is listening (custom sinks receive
    /// bumps by id regardless; ids are assigned by the recorder, so a
    /// recorder is required to use heatmaps).
    pub fn add_heatmap(&mut self, map: Heatmap) -> Option<HeatmapId> {
        self.recorder.as_mut().map(|r| r.add_heatmap(map))
    }

    /// Whether lifecycle events for `txn` should be recorded. False
    /// whenever the tracer is off, so callers can skip the work of
    /// building events entirely.
    #[inline]
    pub fn samples_txn(&self, txn: u64) -> bool {
        match &self.recorder {
            Some(r) => r.samples_txn(txn),
            None => !self.sinks.is_empty(),
        }
    }

    /// Announces the start of a simulation cycle (drives window
    /// rollover in the recorder).
    #[inline]
    pub fn cycle(&mut self, cycle: u64) {
        if !self.is_enabled() {
            return;
        }
        if let Some(r) = &mut self.recorder {
            r.on_cycle(cycle);
        }
        for s in &mut self.sinks {
            s.on_cycle(cycle);
        }
    }

    /// Adds `n` occurrences to counter `c`.
    #[inline]
    pub fn count(&mut self, c: Counter, n: u64) {
        if !self.is_enabled() {
            return;
        }
        if let Some(r) = &mut self.recorder {
            r.on_count(c, n);
        }
        for s in &mut self.sinks {
            s.on_count(c, n);
        }
    }

    /// Records an instantaneous reading of gauge `g`.
    #[inline]
    pub fn gauge(&mut self, g: Gauge, value: f64) {
        if !self.is_enabled() {
            return;
        }
        if let Some(r) = &mut self.recorder {
            r.on_gauge(g, value);
        }
        for s in &mut self.sinks {
            s.on_gauge(g, value);
        }
    }

    /// Adds `n` events to cell (row, col) of heatmap `id`.
    #[inline]
    pub fn heatmap(&mut self, id: HeatmapId, row: usize, col: usize, n: u64) {
        if !self.is_enabled() {
            return;
        }
        if let Some(r) = &mut self.recorder {
            r.on_heatmap(id, row, col, n);
        }
        for s in &mut self.sinks {
            s.on_heatmap(id, row, col, n);
        }
    }

    /// Records a lifecycle event if its transaction is sampled.
    #[inline]
    pub fn event(&mut self, txn: u64, cycle: u64, at: TraceLoc, kind: EventKind) {
        if !self.samples_txn(txn) {
            return;
        }
        let ev = FlitEvent {
            txn,
            cycle,
            at,
            kind,
        };
        if let Some(r) = &mut self.recorder {
            r.on_event(ev);
        }
        for s in &mut self.sinks {
            s.on_event(ev);
        }
    }

    /// Finalizes the recorder (if any) into a report. Custom sinks are
    /// dropped; they are expected to have streamed their output.
    pub fn finish(self) -> Option<TraceReport> {
        self.recorder.map(|r| r.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn off_tracer_is_disabled_and_reports_nothing() {
        let mut t = Tracer::off();
        assert!(!t.is_enabled());
        assert!(!t.samples_txn(0));
        t.count(Counter::FlitsForwarded, 5);
        t.gauge(Gauge::InFlightPackets, 1.0);
        t.cycle(3);
        assert!(t.finish().is_none());
    }

    #[test]
    fn recording_tracer_round_trips_counts() {
        let mut t = Tracer::recording(TraceConfig::default());
        assert!(t.is_enabled());
        t.cycle(0);
        t.count(Counter::PacketsInjected, 2);
        t.count(Counter::PacketsInjected, 3);
        let rep = t.finish().expect("recorder present");
        assert_eq!(rep.counters[Counter::PacketsInjected as usize].total, 5);
    }

    #[test]
    fn unsampled_txns_produce_no_events() {
        let mut t = Tracer::recording(TraceConfig {
            sample_every: 2,
            ..Default::default()
        });
        t.event(0, 1, TraceLoc::Pm { pm: 0 }, EventKind::Hop);
        t.event(1, 1, TraceLoc::Pm { pm: 0 }, EventKind::Hop);
        t.event(2, 1, TraceLoc::Pm { pm: 0 }, EventKind::Hop);
        let rep = t.finish().unwrap();
        assert_eq!(rep.events.len(), 2);
        assert!(rep.events.iter().all(|e| e.txn % 2 == 0));
    }

    #[derive(Debug)]
    struct CountingSink(Rc<Cell<u64>>);
    impl TraceSink for CountingSink {
        fn on_count(&mut self, _c: Counter, n: u64) {
            self.0.set(self.0.get() + n);
        }
    }

    #[test]
    fn attached_sinks_see_emissions_alongside_recorder() {
        let seen = Rc::new(Cell::new(0));
        let mut t = Tracer::recording(TraceConfig::default());
        t.attach(Box::new(CountingSink(seen.clone())));
        t.count(Counter::FlitsForwarded, 7);
        assert_eq!(seen.get(), 7);
        let rep = t.finish().unwrap();
        assert_eq!(rep.counters[Counter::FlitsForwarded as usize].total, 7);
    }

    #[test]
    fn custom_sink_alone_enables_tracer_but_yields_no_report() {
        let seen = Rc::new(Cell::new(0));
        let mut t = Tracer::off();
        t.attach(Box::new(CountingSink(seen.clone())));
        assert!(t.is_enabled());
        t.count(Counter::FlitsForwarded, 1);
        assert_eq!(seen.get(), 1);
        assert!(t.finish().is_none());
    }

    #[test]
    fn heatmap_requires_recorder() {
        let mut off = Tracer::off();
        assert!(off.add_heatmap(Heatmap::new("t", "r", "c", 1, 1)).is_none());
        let mut rec = Tracer::recording(TraceConfig::default());
        let id = rec.add_heatmap(Heatmap::new("t", "r", "c", 1, 1)).unwrap();
        rec.heatmap(id, 0, 0, 3);
        assert_eq!(rec.finish().unwrap().heatmaps[0].get(0, 0), 3);
    }
}
