//! The standard in-memory sink: windowed metrics, heatmaps and a
//! bounded flit-event buffer, finalized into a [`TraceReport`].

use std::collections::VecDeque;

use crate::event::{EventKind, FlitEvent};
use crate::heatmap::{Heatmap, HeatmapId};
use crate::metric::{Counter, Gauge};
use crate::report::{CounterReport, GaugeReport, TraceReport};
use crate::sink::TraceSink;

/// Knobs for a recording tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Counter/gauge sampling window, in cycles. Counters report their
    /// per-window totals (mean ± CI across windows) alongside the run
    /// total; gauges report per-window time averages. Usually set to
    /// the batch length so trace windows line up with batch means.
    pub window_cycles: u64,
    /// Record lifecycle events for one transaction in every
    /// `sample_every` (transaction id modulo). 1 traces everything;
    /// larger values bound Chrome-trace size on long runs.
    pub sample_every: u64,
    /// Maximum lifecycle events held; older events are dropped (and
    /// counted) once the buffer is full.
    pub event_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            window_cycles: 1000,
            sample_every: 1,
            event_capacity: 1 << 16,
        }
    }
}

impl TraceConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` or `sample_every` is zero.
    fn validate(&self) {
        assert!(self.window_cycles > 0, "trace window must be positive");
        assert!(self.sample_every > 0, "sample_every must be positive");
    }
}

/// One counter's accumulation state: the running total plus the
/// per-window series.
#[derive(Debug, Clone, Default)]
struct CounterCell {
    total: u64,
    in_window: u64,
    windows: Vec<f64>,
}

/// One gauge's accumulation state: readings are averaged within each
/// window.
#[derive(Debug, Clone, Default)]
struct GaugeCell {
    sum: f64,
    samples: u64,
    in_window_sum: f64,
    in_window_samples: u64,
    windows: Vec<f64>,
}

/// Collects everything the tracer emits. Implements [`TraceSink`]; the
/// registry drives it like any other sink, but it is also the only sink
/// the tracer knows how to turn into a [`TraceReport`].
#[derive(Debug, Clone)]
pub struct Recorder {
    cfg: TraceConfig,
    counters: Vec<CounterCell>,
    gauges: Vec<GaugeCell>,
    heatmaps: Vec<Heatmap>,
    events: VecDeque<FlitEvent>,
    events_dropped: u64,
    first_cycle: Option<u64>,
    last_cycle: u64,
    /// Index of the window currently accumulating.
    window: u64,
}

impl Recorder {
    /// Creates an empty recorder.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero window or sampling
    /// interval).
    pub fn new(cfg: TraceConfig) -> Self {
        cfg.validate();
        Recorder {
            cfg,
            counters: vec![CounterCell::default(); Counter::ALL.len()],
            gauges: vec![GaugeCell::default(); Gauge::ALL.len()],
            heatmaps: Vec::new(),
            events: VecDeque::new(),
            events_dropped: 0,
            first_cycle: None,
            last_cycle: 0,
            window: 0,
        }
    }

    /// The configuration this recorder was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Registers a heatmap and returns its handle.
    pub fn add_heatmap(&mut self, map: Heatmap) -> HeatmapId {
        self.heatmaps.push(map);
        HeatmapId(self.heatmaps.len() - 1)
    }

    /// Whether events for `txn` are sampled under this configuration.
    pub fn samples_txn(&self, txn: u64) -> bool {
        txn.is_multiple_of(self.cfg.sample_every)
    }

    /// Closes the current window on every metric.
    fn roll_window(&mut self) {
        for c in &mut self.counters {
            c.windows.push(c.in_window as f64);
            c.in_window = 0;
        }
        for g in &mut self.gauges {
            let mean = if g.in_window_samples == 0 {
                0.0
            } else {
                g.in_window_sum / g.in_window_samples as f64
            };
            g.windows.push(mean);
            g.in_window_sum = 0.0;
            g.in_window_samples = 0;
        }
    }

    /// Finalizes into a report. Cycles observed since the last window
    /// boundary form a final, possibly short, window.
    pub fn finish(mut self) -> TraceReport {
        let any_partial = self.counters.iter().any(|c| c.in_window > 0)
            || self.gauges.iter().any(|g| g.in_window_samples > 0);
        if any_partial {
            self.roll_window();
        }
        let cycles = match self.first_cycle {
            Some(first) => self.last_cycle - first + 1,
            None => 0,
        };
        let counters = Counter::ALL
            .iter()
            .map(|&c| {
                let cell = &self.counters[c as usize];
                CounterReport {
                    counter: c,
                    total: cell.total,
                    per_window: ringmesh_stats::Summary::of(&cell.windows),
                }
            })
            .collect();
        let gauges = Gauge::ALL
            .iter()
            .map(|&g| {
                let cell = &self.gauges[g as usize];
                GaugeReport {
                    gauge: g,
                    samples: cell.samples,
                    mean: if cell.samples == 0 {
                        0.0
                    } else {
                        cell.sum / cell.samples as f64
                    },
                    per_window: ringmesh_stats::Summary::of(&cell.windows),
                }
            })
            .collect();
        TraceReport {
            cycles,
            window_cycles: self.cfg.window_cycles,
            sample_every: self.cfg.sample_every,
            counters,
            gauges,
            heatmaps: self.heatmaps,
            events: self.events.into_iter().collect(),
            events_dropped: self.events_dropped,
        }
    }
}

impl TraceSink for Recorder {
    fn on_cycle(&mut self, cycle: u64) {
        if self.first_cycle.is_none() {
            self.first_cycle = Some(cycle);
        }
        self.last_cycle = cycle;
        let first = self.first_cycle.unwrap();
        let window = (cycle - first) / self.cfg.window_cycles;
        // Roll once per boundary crossed; a jump over several windows
        // (possible if the owner skips cycles) emits the skipped
        // windows as zeros, keeping window counts aligned with time.
        while self.window < window {
            self.roll_window();
            self.window += 1;
        }
    }

    fn on_count(&mut self, c: Counter, n: u64) {
        let cell = &mut self.counters[c as usize];
        cell.total += n;
        cell.in_window += n;
    }

    fn on_gauge(&mut self, g: Gauge, value: f64) {
        let cell = &mut self.gauges[g as usize];
        cell.sum += value;
        cell.samples += 1;
        cell.in_window_sum += value;
        cell.in_window_samples += 1;
    }

    fn on_heatmap(&mut self, id: HeatmapId, row: usize, col: usize, n: u64) {
        self.heatmaps[id.0].bump(row, col, n);
    }

    fn on_event(&mut self, ev: FlitEvent) {
        debug_assert!(
            matches!(
                ev.kind,
                EventKind::Inject { .. } | EventKind::Hop | EventKind::Eject
            ),
            "unknown event kind"
        );
        if self.events.len() == self.cfg.event_capacity {
            self.events.pop_front();
            self.events_dropped += 1;
        }
        if self.cfg.event_capacity > 0 {
            self.events.push_back(ev);
        } else {
            self.events_dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceLoc;

    fn ev(txn: u64, cycle: u64) -> FlitEvent {
        FlitEvent {
            txn,
            cycle,
            at: TraceLoc::Pm { pm: 0 },
            kind: EventKind::Hop,
        }
    }

    #[test]
    fn counters_split_into_windows() {
        let mut r = Recorder::new(TraceConfig {
            window_cycles: 10,
            ..Default::default()
        });
        for cycle in 0..30 {
            r.on_cycle(cycle);
            // 1 per cycle in the first window, 3 per cycle afterwards.
            let n = if cycle < 10 { 1 } else { 3 };
            r.on_count(Counter::FlitsForwarded, n);
        }
        let rep = r.finish();
        let c = &rep.counters[Counter::FlitsForwarded as usize];
        assert_eq!(c.total, 10 + 30 + 30);
        assert_eq!(c.per_window.n, 3);
        assert_eq!(c.per_window.min, 10.0);
        assert_eq!(c.per_window.max, 30.0);
    }

    #[test]
    fn windows_are_relative_to_first_observed_cycle() {
        // A tracer attached after warm-up starts windows at the attach
        // cycle, not at absolute zero.
        let mut r = Recorder::new(TraceConfig {
            window_cycles: 100,
            ..Default::default()
        });
        for cycle in 1000..1200 {
            r.on_cycle(cycle);
            r.on_count(Counter::TxnsIssued, 1);
        }
        let rep = r.finish();
        assert_eq!(rep.cycles, 200);
        let c = &rep.counters[Counter::TxnsIssued as usize];
        assert_eq!(c.per_window.n, 2);
        assert_eq!(c.per_window.mean, 100.0);
    }

    #[test]
    fn skipped_windows_report_as_zero() {
        let mut r = Recorder::new(TraceConfig {
            window_cycles: 10,
            ..Default::default()
        });
        r.on_cycle(0);
        r.on_count(Counter::PacketsInjected, 4);
        r.on_cycle(35); // jumps over windows 1 and 2
        r.on_count(Counter::PacketsInjected, 6);
        let rep = r.finish();
        let c = &rep.counters[Counter::PacketsInjected as usize];
        assert_eq!(c.per_window.n, 4);
        assert_eq!(c.per_window.min, 0.0);
        assert_eq!(c.total, 10);
    }

    #[test]
    fn gauges_average_within_windows() {
        let mut r = Recorder::new(TraceConfig {
            window_cycles: 2,
            ..Default::default()
        });
        for (cycle, v) in [(0u64, 1.0), (1, 3.0), (2, 10.0), (3, 20.0)] {
            r.on_cycle(cycle);
            r.on_gauge(Gauge::InFlightPackets, v);
        }
        let rep = r.finish();
        let g = &rep.gauges[Gauge::InFlightPackets as usize];
        assert_eq!(g.per_window.n, 2);
        assert_eq!(g.per_window.min, 2.0);
        assert_eq!(g.per_window.max, 15.0);
        assert_eq!(g.mean, 8.5);
    }

    #[test]
    fn event_buffer_is_bounded_and_counts_drops() {
        let mut r = Recorder::new(TraceConfig {
            event_capacity: 3,
            ..Default::default()
        });
        for i in 0..5 {
            r.on_event(ev(i, i));
        }
        let rep = r.finish();
        assert_eq!(rep.events.len(), 3);
        assert_eq!(rep.events_dropped, 2);
        // Oldest dropped first: survivors are txns 2, 3, 4.
        assert_eq!(
            rep.events.iter().map(|e| e.txn).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn sampling_predicate_uses_modulo() {
        let r = Recorder::new(TraceConfig {
            sample_every: 4,
            ..Default::default()
        });
        assert!(r.samples_txn(0));
        assert!(!r.samples_txn(1));
        assert!(r.samples_txn(8));
    }

    #[test]
    fn heatmap_registration_round_trips() {
        let mut r = Recorder::new(TraceConfig::default());
        let id = r.add_heatmap(Heatmap::new("links", "r", "c", 2, 2));
        r.on_heatmap(id, 1, 0, 7);
        let rep = r.finish();
        assert_eq!(rep.heatmaps[0].get(1, 0), 7);
    }

    #[test]
    #[should_panic(expected = "trace window must be positive")]
    fn zero_window_rejected() {
        Recorder::new(TraceConfig {
            window_cycles: 0,
            ..Default::default()
        });
    }
}
