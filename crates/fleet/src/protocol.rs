//! The coordinator ↔ worker wire protocol: line-delimited JSON over
//! TCP, one message per line, using the same hand-rolled [`Json`] type
//! as the serve protocol (the workspace takes no external
//! dependencies).
//!
//! A connection opens with a handshake — the worker sends `register`
//! carrying its code-version hash, the coordinator answers `welcome`
//! (assigning a worker id and the heartbeat cadence) or `refused`
//! (typed, with the expected and offered hashes) — and then becomes a
//! full-duplex message stream: the coordinator pushes `dispatch` /
//! `cancel` / `bye`, the worker pushes `heartbeat` / `window` / `done`
//! / `fail`.
//!
//! Every `done` carries the FNV-1a content hash of its canonical
//! payload; the coordinator recomputes the hash on receipt, so a
//! corrupted line degrades into a retried attempt rather than a wrong
//! cached result, and byte-divergent duplicate results are detectable
//! without shipping payloads twice.

use ringmesh_serve::json::{obj, Json};
use ringmesh_serve::CODE_VERSION;
use ringmesh_snap::{hex64, parse_hex64, Fingerprint};

/// The code-version hash exchanged at registration: an FNV-1a digest of
/// the crate version every result key is already scoped by. Coordinator
/// and worker must match exactly — a mixed-version fleet could produce
/// byte-divergent results for one content key.
pub fn code_hash() -> u64 {
    Fingerprint::of(CODE_VERSION.as_bytes())
}

/// A message from a worker to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerMsg {
    /// Handshake: the worker offers its code hash and thread capacity.
    Register {
        /// FNV-1a hash of the worker's code version ([`code_hash`]).
        code: u64,
        /// Concurrent dispatches the worker will run.
        threads: u32,
    },
    /// Liveness signal, sent on the cadence the `welcome` prescribed.
    Heartbeat,
    /// Windowed progress for one running dispatch.
    Window {
        /// Dispatch id being reported on.
        task: String,
        /// Network cycle at the end of the window.
        cycle: u64,
        /// Transactions issued during the window.
        issued: u64,
        /// Transactions retired during the window.
        retired: u64,
    },
    /// A dispatch completed; `payload` is the canonical result text and
    /// `hash` its FNV-1a content hash as computed by the worker.
    Done {
        /// Dispatch id that completed.
        task: String,
        /// Content key the worker computed from the parsed spec.
        key: u64,
        /// FNV-1a hash of `payload` as the worker serialized it.
        hash: u64,
        /// Canonical result payload (serialized JSON).
        payload: String,
    },
    /// A dispatch failed for a task-intrinsic reason.
    Fail {
        /// Dispatch id that failed.
        task: String,
        /// Human-readable cause.
        reason: String,
    },
}

impl WorkerMsg {
    /// Serializes to one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            WorkerMsg::Register { code, threads } => obj(vec![
                ("op", Json::Str("register".into())),
                ("code", Json::Str(hex64(*code))),
                ("threads", Json::Num(f64::from(*threads))),
            ])
            .to_string(),
            WorkerMsg::Heartbeat => obj(vec![("op", Json::Str("heartbeat".into()))]).to_string(),
            WorkerMsg::Window {
                task,
                cycle,
                issued,
                retired,
            } => obj(vec![
                ("op", Json::Str("window".into())),
                ("task", Json::Str(task.clone())),
                ("cycle", Json::Num(*cycle as f64)),
                ("issued", Json::Num(*issued as f64)),
                ("retired", Json::Num(*retired as f64)),
            ])
            .to_string(),
            WorkerMsg::Done {
                task,
                key,
                hash,
                payload,
            } => {
                let head = obj(vec![
                    ("op", Json::Str("done".into())),
                    ("task", Json::Str(task.clone())),
                    ("key", Json::Str(hex64(*key))),
                    ("hash", Json::Str(hex64(*hash))),
                ])
                .to_string();
                // Splice the payload verbatim: it is already serialized
                // JSON and must survive the trip byte-identically.
                format!("{},\"data\":{}}}", &head[..head.len() - 1], payload)
            }
            WorkerMsg::Fail { task, reason } => obj(vec![
                ("op", Json::Str("fail".into())),
                ("task", Json::Str(task.clone())),
                ("reason", Json::Str(reason.clone())),
            ])
            .to_string(),
        }
    }

    /// Parses one protocol line. `None` means the line is not a valid
    /// worker message (the peer is broken; drop the connection).
    pub fn decode(line: &str) -> Option<WorkerMsg> {
        let v = Json::parse(line).ok()?;
        match v.get("op")?.as_str()? {
            "register" => Some(WorkerMsg::Register {
                code: parse_hex64(v.get("code")?.as_str()?)?,
                threads: u32::try_from(v.get("threads")?.as_u64()?).ok()?,
            }),
            "heartbeat" => Some(WorkerMsg::Heartbeat),
            "window" => Some(WorkerMsg::Window {
                task: v.get("task")?.as_str()?.to_string(),
                cycle: v.get("cycle")?.as_u64()?,
                issued: v.get("issued")?.as_u64()?,
                retired: v.get("retired")?.as_u64()?,
            }),
            "done" => Some(WorkerMsg::Done {
                task: v.get("task")?.as_str()?.to_string(),
                key: parse_hex64(v.get("key")?.as_str()?)?,
                hash: parse_hex64(v.get("hash")?.as_str()?)?,
                // Re-serializing through the deterministic writer
                // reproduces the worker's exact bytes; the hash check
                // on receipt guards the round trip.
                payload: v.get("data")?.to_string(),
            }),
            "fail" => Some(WorkerMsg::Fail {
                task: v.get("task")?.as_str()?.to_string(),
                reason: v.get("reason")?.as_str()?.to_string(),
            }),
            _ => None,
        }
    }
}

/// A message from the coordinator to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordMsg {
    /// Registration accepted: the worker's id and heartbeat cadence.
    Welcome {
        /// Coordinator-assigned worker id.
        worker: u64,
        /// How often the worker must send [`WorkerMsg::Heartbeat`].
        heartbeat_ms: u64,
    },
    /// Registration refused — typed, so the worker can report exactly
    /// why (today always a code-version mismatch).
    Refused {
        /// Machine-readable reason (`"code-version-mismatch"`).
        reason: String,
        /// The coordinator's code hash.
        expect: u64,
        /// The hash the worker offered.
        got: u64,
    },
    /// Run one job: `spec` is the wire-form job object, `key` the
    /// content key the worker must independently reproduce from it.
    Dispatch {
        /// Dispatch id (unique per attempt; echoed on every reply).
        task: String,
        /// Expected content key of the parsed spec.
        key: u64,
        /// Lease granted, in milliseconds (informational for the
        /// worker; enforcement is coordinator-side).
        lease_ms: u64,
        /// Progress-window length in cycles.
        window: u64,
        /// The job object, re-parseable by `parse_job`.
        spec: Json,
    },
    /// Abandon a dispatch (its result is no longer wanted).
    Cancel {
        /// Dispatch id to abandon.
        task: String,
    },
    /// Orderly goodbye; the worker should exit.
    Bye,
}

impl CoordMsg {
    /// Serializes to one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            CoordMsg::Welcome {
                worker,
                heartbeat_ms,
            } => obj(vec![
                ("ev", Json::Str("welcome".into())),
                ("worker", Json::Num(*worker as f64)),
                ("heartbeat_ms", Json::Num(*heartbeat_ms as f64)),
            ])
            .to_string(),
            CoordMsg::Refused {
                reason,
                expect,
                got,
            } => obj(vec![
                ("ev", Json::Str("refused".into())),
                ("reason", Json::Str(reason.clone())),
                ("expect", Json::Str(hex64(*expect))),
                ("got", Json::Str(hex64(*got))),
            ])
            .to_string(),
            CoordMsg::Dispatch {
                task,
                key,
                lease_ms,
                window,
                spec,
            } => obj(vec![
                ("ev", Json::Str("dispatch".into())),
                ("task", Json::Str(task.clone())),
                ("key", Json::Str(hex64(*key))),
                ("lease_ms", Json::Num(*lease_ms as f64)),
                ("window", Json::Num(*window as f64)),
                ("spec", spec.clone()),
            ])
            .to_string(),
            CoordMsg::Cancel { task } => obj(vec![
                ("ev", Json::Str("cancel".into())),
                ("task", Json::Str(task.clone())),
            ])
            .to_string(),
            CoordMsg::Bye => obj(vec![("ev", Json::Str("bye".into()))]).to_string(),
        }
    }

    /// Parses one protocol line. `None` means the line is not a valid
    /// coordinator message.
    pub fn decode(line: &str) -> Option<CoordMsg> {
        let v = Json::parse(line).ok()?;
        match v.get("ev")?.as_str()? {
            "welcome" => Some(CoordMsg::Welcome {
                worker: v.get("worker")?.as_u64()?,
                heartbeat_ms: v.get("heartbeat_ms")?.as_u64()?,
            }),
            "refused" => Some(CoordMsg::Refused {
                reason: v.get("reason")?.as_str()?.to_string(),
                expect: parse_hex64(v.get("expect")?.as_str()?)?,
                got: parse_hex64(v.get("got")?.as_str()?)?,
            }),
            "dispatch" => Some(CoordMsg::Dispatch {
                task: v.get("task")?.as_str()?.to_string(),
                key: parse_hex64(v.get("key")?.as_str()?)?,
                lease_ms: v.get("lease_ms")?.as_u64()?,
                window: v.get("window")?.as_u64()?,
                spec: v.get("spec")?.clone(),
            }),
            "cancel" => Some(CoordMsg::Cancel {
                task: v.get("task")?.as_str()?.to_string(),
            }),
            "bye" => Some(CoordMsg::Bye),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_messages_round_trip() {
        let msgs = [
            WorkerMsg::Register {
                code: code_hash(),
                threads: 4,
            },
            WorkerMsg::Heartbeat,
            WorkerMsg::Window {
                task: "3:1".into(),
                cycle: 4000,
                issued: 120,
                retired: 118,
            },
            WorkerMsg::Fail {
                task: "0:2".into(),
                reason: "bad spec".into(),
            },
        ];
        for m in msgs {
            assert_eq!(WorkerMsg::decode(&m.encode()), Some(m));
        }
    }

    #[test]
    fn done_payload_survives_the_wire_byte_identically() {
        let payload = r#"{"schema":"ringmesh-serve/1","pms":24,"latency":{"mean":3.5}}"#;
        let m = WorkerMsg::Done {
            task: "1:1".into(),
            key: 0xabcd,
            hash: Fingerprint::of(payload.as_bytes()),
            payload: payload.into(),
        };
        let Some(WorkerMsg::Done {
            hash,
            payload: back,
            ..
        }) = WorkerMsg::decode(&m.encode())
        else {
            panic!("done failed to decode")
        };
        assert_eq!(back, payload);
        assert_eq!(Fingerprint::of(back.as_bytes()), hash);
    }

    #[test]
    fn coordinator_messages_round_trip() {
        let spec = Json::parse(r#"{"op":"job","network":"mesh","side":3}"#).unwrap();
        let msgs = [
            CoordMsg::Welcome {
                worker: 2,
                heartbeat_ms: 2000,
            },
            CoordMsg::Refused {
                reason: "code-version-mismatch".into(),
                expect: 1,
                got: 2,
            },
            CoordMsg::Dispatch {
                task: "0:1".into(),
                key: 77,
                lease_ms: 30_000,
                window: 4000,
                spec,
            },
            CoordMsg::Cancel { task: "0:1".into() },
            CoordMsg::Bye,
        ];
        for m in msgs {
            assert_eq!(CoordMsg::decode(&m.encode()), Some(m));
        }
    }

    #[test]
    fn garbage_lines_decode_to_none() {
        for line in ["", "{", "[]", r#"{"op":"nope"}"#, r#"{"ev":7}"#] {
            assert_eq!(WorkerMsg::decode(line), None, "{line}");
            assert_eq!(CoordMsg::decode(line), None, "{line}");
        }
    }
}
