//! The fleet coordinator: a TCP registry of remote workers and a
//! lease-based dispatcher implementing [`RemoteRunner`] for the serve
//! layer.
//!
//! # Dispatch discipline
//!
//! Every attempt to run a task is a **lease**: a time-bounded claim on
//! one worker, renewed implicitly by progress. The dispatcher reacts to
//! exactly three kinds of trouble, all through the same re-enqueue
//! path:
//!
//! - **Worker death** — socket EOF or a missed-heartbeat window. All
//!   leases on the dead worker re-enqueue with capped exponential
//!   backoff ([`Backoff`]).
//! - **Lease expiry with a live worker** — the long-tail straggler
//!   case. The task is speculatively duplicated onto another worker
//!   (once); the original keeps running and the first completed result
//!   wins.
//! - **Reported failure** — the worker ran the job and it failed
//!   intrinsically. One retry on (ideally) another worker; a second
//!   failure is accepted as the task's deterministic outcome.
//!
//! Duplicate completions are deduplicated by FNV content hash. Equal
//! hashes are the expected case (the simulator is deterministic);
//! byte-different payloads for one content key are a **hard determinism
//! violation** surfaced as [`RemoteOutcome::Divergent`] — that means a
//! broken worker or a mixed build, and silently picking one answer
//! would poison the content-addressed cache forever.
//!
//! The coordinator never trusts a worker's claims: every `done` is
//! re-hashed on receipt, and the worker's independently computed
//! content key must match the dispatched one.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use ringmesh::StopFlag;
use ringmesh_engine::{Backoff, Lease};
use ringmesh_serve::{RemoteEvent, RemoteOutcome, RemoteRunner, RemoteTask};
use ringmesh_snap::{hex64, Fingerprint};

use crate::protocol::{code_hash, CoordMsg, WorkerMsg};

/// How often the dispatch loop wakes when no worker messages arrive.
const DISPATCH_TICK: Duration = Duration::from_millis(25);

/// How often a blocked worker-socket read wakes to poll the stop flag.
const READ_TICK: Duration = Duration::from_millis(250);

/// A worker misses its heartbeat window after this many cadences.
const HEARTBEAT_GRACE: u32 = 3;

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Lease duration granted per dispatch, in milliseconds. A task
    /// still running at expiry (with a live worker) is speculated, not
    /// killed.
    pub lease_ms: u64,
    /// Heartbeat cadence prescribed to workers, in milliseconds; a
    /// worker silent for [`HEARTBEAT_GRACE`] cadences is declared dead.
    pub heartbeat_ms: u64,
    /// Most dispatch attempts per task before the coordinator hands the
    /// task back unrun (the server then falls back to local execution).
    pub max_attempts: u32,
    /// Base re-dispatch backoff, in milliseconds (doubles per attempt).
    pub backoff_base_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Progress-window length (cycles) workers report at.
    pub window_cycles: u64,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            lease_ms: 30_000,
            heartbeat_ms: 2_000,
            max_attempts: 4,
            backoff_base_ms: 250,
            backoff_cap_ms: 5_000,
            window_cycles: 4_000,
        }
    }
}

/// One registered, live worker as the coordinator sees it.
#[derive(Debug)]
struct WorkerHandle {
    /// Write half (reads happen on the per-connection reader thread).
    stream: TcpStream,
    /// Last message of any kind (heartbeats included).
    last_seen: Instant,
    /// Concurrent dispatches the worker advertised.
    threads: u32,
    /// Dispatches currently leased to this worker.
    in_flight: u32,
}

/// A worker-origin event forwarded from a reader thread to the
/// dispatch loop.
#[derive(Debug)]
enum Msg {
    /// A protocol message from a registered worker.
    From(u64, WorkerMsg),
    /// The worker's connection ended (EOF, error, or eviction).
    Died(u64),
    /// A new worker registered (wakes the dispatcher to use it).
    Joined,
}

/// Shared coordinator state: the worker registry plus the bus to
/// whichever batch is currently dispatching.
#[derive(Debug)]
struct Inner {
    opts: FleetOptions,
    workers: Mutex<HashMap<u64, WorkerHandle>>,
    next_worker: AtomicU64,
    /// Live only while a batch runs; reader threads forward into it.
    bus: Mutex<Option<Sender<Msg>>>,
    /// Coordinator-wide shutdown (set on drop).
    stop: StopFlag,
}

impl Inner {
    fn workers_lock(&self) -> MutexGuard<'_, HashMap<u64, WorkerHandle>> {
        self.workers.lock().expect("worker registry poisoned")
    }

    /// Forwards a message to the running batch, if any.
    fn publish(&self, msg: Msg) {
        if let Some(tx) = &*self.bus.lock().expect("bus poisoned") {
            let _ = tx.send(msg);
        }
    }

    /// Sends one message to a worker; on failure the worker is evicted
    /// (its reader thread will also notice the dead socket).
    fn send_to(&self, worker: u64, msg: &CoordMsg) -> bool {
        let mut workers = self.workers_lock();
        let Some(handle) = workers.get_mut(&worker) else {
            return false;
        };
        let ok = writeln!(&handle.stream, "{}", msg.encode())
            .and_then(|()| (&handle.stream).flush())
            .is_ok();
        if !ok {
            let _ = handle.stream.shutdown(Shutdown::Both);
            workers.remove(&worker);
            drop(workers);
            self.publish(Msg::Died(worker));
        }
        ok
    }

    /// Evicts workers that have missed their heartbeat window,
    /// reporting each as dead to the running batch.
    fn evict_silent_workers(&self) {
        let deadline = Duration::from_millis(self.opts.heartbeat_ms) * HEARTBEAT_GRACE;
        let dead: Vec<u64> = {
            let mut workers = self.workers_lock();
            let ids: Vec<u64> = workers
                .iter()
                .filter(|(_, h)| h.last_seen.elapsed() > deadline)
                .map(|(&id, _)| id)
                .collect();
            for id in &ids {
                if let Some(h) = workers.remove(id) {
                    let _ = h.stream.shutdown(Shutdown::Both);
                }
            }
            ids
        };
        for id in dead {
            eprintln!("ringmesh fleet: worker {id} missed heartbeats; evicted");
            self.publish(Msg::Died(id));
        }
    }
}

/// A TCP worker fleet implementing [`RemoteRunner`].
///
/// Binding spawns an accept thread; each accepted connection gets a
/// reader thread that performs the registration handshake (refusing
/// code-version mismatches with a typed [`CoordMsg::Refused`]) and then
/// forwards worker messages to the active batch. Dropping the pool
/// stops the accept loop, says [`CoordMsg::Bye`] to every worker, and
/// closes the sockets.
#[derive(Debug)]
pub struct FleetPool {
    inner: Arc<Inner>,
    addr: std::net::SocketAddr,
    /// One fleet batch at a time; a second concurrent batch is handed
    /// back unrun and the server falls back to its local pool.
    batch: Mutex<()>,
}

impl FleetPool {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts accepting workers.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, opts: FleetOptions) -> io::Result<FleetPool> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        eprintln!("ringmesh fleet: listening on {addr}");
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            opts,
            workers: Mutex::new(HashMap::new()),
            next_worker: AtomicU64::new(0),
            bus: Mutex::new(None),
            stop: StopFlag::new(),
        });
        let accept_inner = Arc::clone(&inner);
        std::thread::spawn(move || accept_loop(&listener, &accept_inner));
        Ok(FleetPool {
            inner,
            addr,
            batch: Mutex::new(()),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

impl Drop for FleetPool {
    fn drop(&mut self) {
        self.inner.stop.set();
        let mut workers = self.inner.workers_lock();
        for (_, h) in workers.drain() {
            let _ = writeln!(&h.stream, "{}", CoordMsg::Bye.encode());
            let _ = h.stream.shutdown(Shutdown::Both);
        }
    }
}

/// Accepts connections until the pool is dropped, spawning one reader
/// thread per connection.
fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        if inner.stop.is_set() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(inner);
                std::thread::spawn(move || {
                    if let Err(e) = serve_worker(stream, &inner) {
                        eprintln!("ringmesh fleet: worker connection: {e}");
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(DISPATCH_TICK);
            }
            Err(e) => {
                eprintln!("ringmesh fleet: accept: {e}");
                return;
            }
        }
    }
}

/// Handshakes and then pumps one worker connection: registration,
/// liveness bookkeeping, message forwarding, death reporting.
fn serve_worker(stream: TcpStream, inner: &Arc<Inner>) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);

    // Handshake: the first line must be a `register` with our exact
    // code hash; anything else draws a typed refusal and a close.
    let mut line = String::new();
    let (code, threads) = loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // gave up before registering
            Ok(_) => match WorkerMsg::decode(line.trim_end()) {
                Some(WorkerMsg::Register { code, threads }) => break (code, threads),
                _ => {
                    let _ = writeln!(
                        &stream,
                        "{}",
                        CoordMsg::Refused {
                            reason: "expected register".into(),
                            expect: code_hash(),
                            got: 0,
                        }
                        .encode()
                    );
                    return Ok(());
                }
            },
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if inner.stop.is_set() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    };
    if code != code_hash() {
        writeln!(
            &stream,
            "{}",
            CoordMsg::Refused {
                reason: "code-version-mismatch".into(),
                expect: code_hash(),
                got: code,
            }
            .encode()
        )?;
        eprintln!(
            "ringmesh fleet: refused worker with code hash {} (want {})",
            hex64(code),
            hex64(code_hash())
        );
        return Ok(());
    }

    let id = inner.next_worker.fetch_add(1, Ordering::SeqCst);
    writeln!(
        &stream,
        "{}",
        CoordMsg::Welcome {
            worker: id,
            heartbeat_ms: inner.opts.heartbeat_ms,
        }
        .encode()
    )?;
    inner.workers_lock().insert(
        id,
        WorkerHandle {
            stream: stream.try_clone()?,
            last_seen: Instant::now(),
            threads: threads.max(1),
            in_flight: 0,
        },
    );
    eprintln!("ringmesh fleet: worker {id} registered ({threads} threads)");
    inner.publish(Msg::Joined);

    // Pump messages until EOF, error, stop, or eviction.
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let still_registered = {
                    let mut workers = inner.workers_lock();
                    workers.get_mut(&id).map(|h| h.last_seen = Instant::now())
                };
                if still_registered.is_none() {
                    return Ok(()); // evicted; Died already published
                }
                match WorkerMsg::decode(line.trim_end()) {
                    Some(WorkerMsg::Heartbeat) => {}
                    Some(msg) => inner.publish(Msg::From(id, msg)),
                    None => break, // broken peer; treat as death
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if inner.stop.is_set() {
                    return Ok(());
                }
                if inner.workers_lock().get(&id).is_none() {
                    return Ok(()); // evicted while idle
                }
            }
            Err(_) => break,
        }
    }
    if inner.workers_lock().remove(&id).is_some() {
        eprintln!("ringmesh fleet: worker {id} disconnected");
        inner.publish(Msg::Died(id));
    }
    Ok(())
}

/// One outstanding lease: which worker, which dispatch id, until when.
#[derive(Debug)]
struct LeaseRec {
    worker: u64,
    dispatch: String,
    lease: Lease,
}

/// Dispatch-side state of one task.
#[derive(Debug)]
struct TaskState {
    outcome: Option<RemoteOutcome>,
    /// Content hash of the first accepted payload (for dedupe).
    first_hash: Option<u64>,
    /// Dispatch attempts started (1-based on the wire).
    attempts: u32,
    /// Intrinsic failures reported by workers.
    fails: u32,
    /// Waiting to be (re-)dispatched.
    queued: bool,
    /// Earliest next dispatch (backoff gate).
    next_try: Instant,
    /// Outstanding leases (two during speculation).
    leases: Vec<LeaseRec>,
    /// A straggler is only speculated once.
    speculated: bool,
}

impl TaskState {
    fn terminal(&self) -> bool {
        self.outcome.is_some()
    }
}

impl RemoteRunner for FleetPool {
    fn live_workers(&self) -> usize {
        self.inner.evict_silent_workers();
        self.inner.workers_lock().len()
    }

    fn run_tasks(
        &self,
        tasks: Vec<RemoteTask>,
        stop: &StopFlag,
        events: &mut dyn FnMut(RemoteEvent),
    ) -> Vec<RemoteOutcome> {
        // One fleet batch at a time; a concurrent second batch is
        // handed back unrun (the server falls back to its local pool).
        let Ok(_guard) = self.batch.try_lock() else {
            return tasks.iter().map(|_| RemoteOutcome::Unrun).collect();
        };
        let (tx, rx) = mpsc::channel();
        *self.inner.bus.lock().expect("bus poisoned") = Some(tx);
        let outcomes = Dispatcher {
            inner: &self.inner,
            tasks: &tasks,
            events,
            states: tasks
                .iter()
                .map(|_| TaskState {
                    outcome: None,
                    first_hash: None,
                    attempts: 0,
                    fails: 0,
                    queued: true,
                    next_try: Instant::now(),
                    leases: Vec::new(),
                    speculated: false,
                })
                .collect(),
            dispatch_to_task: HashMap::new(),
            backoff: Backoff::new(
                Duration::from_millis(self.inner.opts.backoff_base_ms),
                Duration::from_millis(self.inner.opts.backoff_cap_ms),
            ),
        }
        .run(&rx, stop);
        *self.inner.bus.lock().expect("bus poisoned") = None;
        outcomes
    }
}

/// The per-batch dispatch loop, factored out of `run_tasks` for
/// readable helpers over the shared task-state table.
struct Dispatcher<'a> {
    inner: &'a Arc<Inner>,
    tasks: &'a [RemoteTask],
    events: &'a mut dyn FnMut(RemoteEvent),
    states: Vec<TaskState>,
    /// Dispatch id → task index, kept for the whole batch so results
    /// from superseded attempts still reach the dedupe check.
    dispatch_to_task: HashMap<String, usize>,
    backoff: Backoff,
}

impl Dispatcher<'_> {
    fn run(mut self, rx: &Receiver<Msg>, stop: &StopFlag) -> Vec<RemoteOutcome> {
        loop {
            if self.states.iter().all(TaskState::terminal) {
                break;
            }
            if stop.is_set() || self.inner.stop.is_set() {
                break;
            }
            // Drain worker messages (blocking briefly on the first).
            match rx.recv_timeout(DISPATCH_TICK) {
                Ok(msg) => {
                    self.handle(msg);
                    while let Ok(more) = rx.try_recv() {
                        self.handle(more);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            self.inner.evict_silent_workers();
            self.sweep_leases();
            self.dispatch_queued();
            // A fleet with no workers and nothing in flight cannot make
            // progress: hand every unfinished task back to the server.
            if self.inner.workers_lock().is_empty()
                && self.states.iter().all(|s| s.leases.is_empty())
            {
                break;
            }
        }
        // Final drain: a duplicate completion racing the batch's last
        // result must still reach the divergence check.
        while let Ok(msg) = rx.try_recv() {
            self.handle(msg);
        }
        // Cancel whatever is still leased and hand back the outcomes
        // (unfinished tasks as Unrun — the server decides what's next).
        for state in &self.states {
            for lease in &state.leases {
                self.inner.send_to(
                    lease.worker,
                    &CoordMsg::Cancel {
                        task: lease.dispatch.clone(),
                    },
                );
            }
        }
        self.states
            .into_iter()
            .map(|s| s.outcome.unwrap_or(RemoteOutcome::Unrun))
            .collect()
    }

    fn handle(&mut self, msg: Msg) {
        match msg {
            Msg::Joined => {}
            Msg::Died(worker) => {
                for ti in 0..self.states.len() {
                    let lost = {
                        let state = &mut self.states[ti];
                        let (dead, alive): (Vec<LeaseRec>, Vec<LeaseRec>) =
                            std::mem::take(&mut state.leases)
                                .into_iter()
                                .partition(|l| l.worker == worker);
                        state.leases = alive;
                        !dead.is_empty()
                    };
                    if lost && !self.states[ti].terminal() {
                        self.requeue(ti, "worker-death");
                    }
                }
            }
            Msg::From(
                worker,
                WorkerMsg::Window {
                    task,
                    cycle,
                    issued,
                    retired,
                },
            ) => {
                let _ = worker;
                if let Some(&ti) = self.dispatch_to_task.get(&task) {
                    if !self.states[ti].terminal() {
                        (self.events)(RemoteEvent::Window {
                            task: ti,
                            cycle,
                            issued,
                            retired,
                        });
                    }
                }
            }
            Msg::From(
                worker,
                WorkerMsg::Done {
                    task,
                    key,
                    hash,
                    payload,
                },
            ) => self.handle_done(worker, &task, key, hash, payload),
            Msg::From(worker, WorkerMsg::Fail { task, reason }) => {
                let Some(&ti) = self.dispatch_to_task.get(&task) else {
                    return;
                };
                self.release_lease(ti, &task, worker);
                if self.states[ti].terminal() {
                    return;
                }
                self.states[ti].fails += 1;
                if self.states[ti].fails >= 2 {
                    // Two independent attempts agree the task itself is
                    // broken; accept that as its deterministic outcome.
                    self.states[ti].outcome = Some(RemoteOutcome::Failed(reason));
                    self.cancel_other_leases(ti);
                } else {
                    self.requeue(ti, "attempt-failed");
                }
            }
            Msg::From(_, WorkerMsg::Register { .. } | WorkerMsg::Heartbeat) => {}
        }
    }

    /// First result wins; a byte-divergent duplicate is a hard
    /// determinism violation. Claims are verified, never trusted: the
    /// payload is re-hashed and the worker's independently computed
    /// content key must match the dispatched one.
    fn handle_done(&mut self, worker: u64, task: &str, key: u64, hash: u64, payload: String) {
        let Some(&ti) = self.dispatch_to_task.get(task) else {
            return;
        };
        self.release_lease(ti, task, worker);
        let computed = Fingerprint::of(payload.as_bytes());
        if computed != hash || key != self.tasks[ti].key {
            // A corrupted line or a confused worker; the attempt is
            // worthless but the task is not — retry it.
            if !self.states[ti].terminal() {
                self.requeue(ti, "attempt-failed");
            }
            return;
        }
        match self.states[ti].first_hash {
            None => {
                self.states[ti].first_hash = Some(hash);
                self.states[ti].outcome = Some(RemoteOutcome::Done { payload });
                self.cancel_other_leases(ti);
            }
            Some(first) if first == hash => {} // duplicate agrees: dedupe
            Some(first) => {
                eprintln!(
                    "ringmesh fleet: determinism violation on key {}: {} vs {}",
                    hex64(self.tasks[ti].key),
                    hex64(first),
                    hex64(hash)
                );
                self.states[ti].outcome = Some(RemoteOutcome::Divergent {
                    first,
                    second: hash,
                });
            }
        }
    }

    /// Removes one lease record (if present) and returns the worker's
    /// in-flight slot.
    fn release_lease(&mut self, ti: usize, dispatch: &str, worker: u64) {
        let state = &mut self.states[ti];
        let before = state.leases.len();
        state.leases.retain(|l| l.dispatch != dispatch);
        if state.leases.len() < before {
            if let Some(h) = self.inner.workers_lock().get_mut(&worker) {
                h.in_flight = h.in_flight.saturating_sub(1);
            }
        }
    }

    /// Cancels every remaining lease of a task that just went terminal.
    fn cancel_other_leases(&mut self, ti: usize) {
        let leases = std::mem::take(&mut self.states[ti].leases);
        for l in leases {
            if let Some(h) = self.inner.workers_lock().get_mut(&l.worker) {
                h.in_flight = h.in_flight.saturating_sub(1);
            }
            self.inner
                .send_to(l.worker, &CoordMsg::Cancel { task: l.dispatch });
        }
    }

    /// Re-enqueues a non-terminal task with capped exponential backoff,
    /// or hands it back unrun once the attempt budget is spent.
    fn requeue(&mut self, ti: usize, reason: &str) {
        let max = self.inner.opts.max_attempts;
        let state = &mut self.states[ti];
        if state.queued || state.terminal() {
            return;
        }
        if state.attempts >= max {
            // Budget spent; leave it unfinished for the server's local
            // fallback rather than thrashing the fleet forever.
            state.outcome = Some(RemoteOutcome::Unrun);
            return;
        }
        let delay = self.backoff.delay_for(state.attempts.saturating_sub(1));
        state.queued = true;
        state.next_try = Instant::now() + delay;
        let attempt = state.attempts;
        (self.events)(RemoteEvent::Retry {
            task: ti,
            attempt,
            reason: reason.to_string(),
            backoff_ms: delay.as_millis() as u64,
        });
    }

    /// Expired leases on live workers mean stragglers: speculate each
    /// such task once onto a different worker, then renew so the sweep
    /// does not re-trigger every tick.
    fn sweep_leases(&mut self) {
        for ti in 0..self.states.len() {
            if self.states[ti].terminal() {
                continue;
            }
            let expired: Vec<(u64, String)> = self.states[ti]
                .leases
                .iter()
                .filter(|l| l.lease.expired())
                .map(|l| (l.worker, l.dispatch.clone()))
                .collect();
            if expired.is_empty() {
                continue;
            }
            let exclude: Vec<u64> = self.states[ti].leases.iter().map(|l| l.worker).collect();
            if !self.states[ti].speculated {
                if let Some(worker) = self.pick_worker(&exclude) {
                    self.states[ti].speculated = true;
                    (self.events)(RemoteEvent::Speculate { task: ti, worker });
                    self.dispatch_to(ti, worker);
                }
            }
            for lease in &mut self.states[ti].leases {
                if expired.iter().any(|(_, d)| *d == lease.dispatch) {
                    lease.lease.renew();
                }
            }
        }
    }

    /// Starts every queued task whose backoff has elapsed, while any
    /// worker has a free slot.
    fn dispatch_queued(&mut self) {
        let now = Instant::now();
        for ti in 0..self.states.len() {
            if !self.states[ti].queued || self.states[ti].next_try > now {
                continue;
            }
            // Prefer a worker that has not yet failed this task — on a
            // retry that means a different machine when one exists.
            let tried: Vec<u64> = self.states[ti].leases.iter().map(|l| l.worker).collect();
            let Some(worker) = self.pick_worker(&tried).or_else(|| self.pick_worker(&[])) else {
                continue; // no capacity yet; stay queued
            };
            self.states[ti].queued = false;
            self.dispatch_to(ti, worker);
        }
    }

    /// Leases task `ti` to `worker`: sends the dispatch, records the
    /// lease, emits the event. A send failure feeds back through the
    /// death path (the task re-queues).
    fn dispatch_to(&mut self, ti: usize, worker: u64) {
        let state = &mut self.states[ti];
        state.attempts += 1;
        let attempt = state.attempts;
        let dispatch = format!("{ti}:{attempt}");
        let lease_ms = self.inner.opts.lease_ms;
        let msg = CoordMsg::Dispatch {
            task: dispatch.clone(),
            key: self.tasks[ti].key,
            lease_ms,
            window: self.inner.opts.window_cycles,
            spec: self.tasks[ti].spec.clone(),
        };
        self.dispatch_to_task.insert(dispatch.clone(), ti);
        if let Some(h) = self.inner.workers_lock().get_mut(&worker) {
            h.in_flight += 1;
        }
        self.states[ti].leases.push(LeaseRec {
            worker,
            dispatch,
            lease: Lease::new(Duration::from_millis(lease_ms)),
        });
        if self.inner.send_to(worker, &msg) {
            (self.events)(RemoteEvent::Lease {
                task: ti,
                worker,
                attempt,
                lease_ms,
            });
        }
        // On send failure, send_to already evicted the worker and
        // published Died; the next handle() pass re-queues the task.
    }

    /// The live worker with the most free capacity (ties to the lowest
    /// id, for determinism), excluding `exclude`; `None` when every
    /// worker is saturated or excluded.
    fn pick_worker(&self, exclude: &[u64]) -> Option<u64> {
        self.inner
            .workers_lock()
            .iter()
            .filter(|(id, h)| !exclude.contains(id) && h.in_flight < h.threads)
            .map(|(&id, h)| (h.in_flight, id))
            .min()
            .map(|(_, id)| id)
    }
}
