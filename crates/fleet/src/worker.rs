//! The remote worker: connects to a coordinator, registers with its
//! code-version hash, and runs dispatched jobs until told goodbye.
//!
//! A worker is deliberately **stateless**: it writes no checkpoints and
//! owns no cache. Crash recovery is entirely the coordinator's job —
//! a worker that dies mid-job simply never completes its lease, and the
//! coordinator re-dispatches elsewhere. That keeps the byte-identical
//! recovery argument in exactly one place (the coordinator's merge in
//! job-submission order) instead of spreading it across machines.
//!
//! Every completed job is answered with the canonical
//! [`result_payload`] text plus its FNV-1a content hash, and the worker
//! independently recomputes the content key from the dispatched spec —
//! a coordinator/worker disagreement on either is surfaced, never
//! papered over.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ringmesh::StopFlag;
use ringmesh_serve::{parse_job, result_payload, run_job, JobError, ResultCache};
use ringmesh_snap::{hex64, Fingerprint};

use crate::protocol::{code_hash, CoordMsg, WorkerMsg};

/// How often a blocked coordinator-socket read wakes to poll the stop
/// flag.
const READ_TICK: Duration = Duration::from_millis(250);

/// Worker tuning knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Concurrent dispatches to accept (advertised at registration).
    pub threads: u32,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions { threads: 1 }
    }
}

/// How a worker session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerExit {
    /// The coordinator said goodbye (or closed the connection) after a
    /// normal session.
    Done,
    /// Registration was refused — typed, with both code hashes, so the
    /// operator can see exactly which build is out of date.
    Refused {
        /// Machine-readable refusal reason from the coordinator.
        reason: String,
        /// The coordinator's code hash.
        expect: u64,
        /// This worker's code hash.
        got: u64,
    },
    /// The local stop flag was set (SIGTERM in the CLI).
    Stopped,
}

/// Connects to a coordinator at `addr`, registers, and serves
/// dispatches until the coordinator says goodbye, the connection drops,
/// or `stop` is set.
///
/// # Errors
///
/// Propagates connect and transport errors. A refused registration is
/// **not** an error — it returns [`WorkerExit::Refused`] so the CLI can
/// exit with a typed status.
pub fn run_worker(addr: &str, opts: &WorkerOptions, stop: &StopFlag) -> io::Result<WorkerExit> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TICK))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(stream.try_clone()?));

    send(
        &writer,
        &WorkerMsg::Register {
            code: code_hash(),
            threads: opts.threads.max(1),
        },
    )?;
    let (worker_id, heartbeat_ms) = match read_msg(&mut reader, stop)? {
        Some(CoordMsg::Welcome {
            worker,
            heartbeat_ms,
        }) => (worker, heartbeat_ms),
        Some(CoordMsg::Refused {
            reason,
            expect,
            got,
        }) => {
            eprintln!(
                "ringmesh worker: registration refused ({reason}): \
                 coordinator has code {} but this build is {}",
                hex64(expect),
                hex64(got)
            );
            return Ok(WorkerExit::Refused {
                reason,
                expect,
                got,
            });
        }
        Some(_) | None => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "coordinator did not answer the registration",
            ))
        }
    };
    eprintln!("ringmesh worker: registered as worker {worker_id} with {addr}");

    // Per-dispatch cancellation flags, so a `cancel` (or shutdown)
    // interrupts the simulation at its next window instead of wasting
    // the rest of the run.
    let cancels: Mutex<HashMap<String, StopFlag>> = Mutex::new(HashMap::new());
    // Set once the read loop decides to exit, so the heartbeat pump
    // (and any dispatch threads) stop and the scope can join them.
    let session_over = StopFlag::new();
    let exit = std::thread::scope(|s| -> io::Result<WorkerExit> {
        // Heartbeat pump: liveness only, no payload.
        let hb_writer = Arc::clone(&writer);
        let hb_stop = stop.clone();
        let hb_over = session_over.clone();
        s.spawn(move || {
            let cadence = Duration::from_millis(heartbeat_ms.max(100));
            while !hb_stop.is_set() && !hb_over.is_set() {
                std::thread::sleep(cadence / 2);
                if send(&hb_writer, &WorkerMsg::Heartbeat).is_err() {
                    return; // connection gone; the read loop will exit
                }
            }
        });

        let exit = loop {
            if stop.is_set() {
                break WorkerExit::Stopped;
            }
            match read_msg(&mut reader, stop)? {
                None => break WorkerExit::Done, // EOF: coordinator gone
                Some(CoordMsg::Bye) => break WorkerExit::Done,
                Some(CoordMsg::Cancel { task }) => {
                    if let Some(flag) = cancels.lock().expect("cancel map").get(&task) {
                        flag.set();
                    }
                }
                Some(CoordMsg::Dispatch {
                    task,
                    key,
                    lease_ms: _,
                    window,
                    spec,
                }) => {
                    let task_stop = StopFlag::new();
                    cancels
                        .lock()
                        .expect("cancel map")
                        .insert(task.clone(), task_stop.clone());
                    let writer = Arc::clone(&writer);
                    let global_stop = stop.clone();
                    s.spawn(move || {
                        run_dispatch(&writer, &task, key, window, &spec, &task_stop, &global_stop);
                    });
                }
                Some(CoordMsg::Welcome { .. } | CoordMsg::Refused { .. }) => {
                    // Out-of-order handshake replay; ignore.
                }
            }
        };
        // Interrupt any still-running dispatches before the scope joins
        // them; their results are no longer deliverable anyway.
        session_over.set();
        for flag in cancels.lock().expect("cancel map").values() {
            flag.set();
        }
        Ok(exit)
    })?;
    Ok(exit)
}

/// Runs one dispatched job and reports `done` / `fail` (or nothing, if
/// canceled mid-run). Never panics the worker: every failure path turns
/// into a typed `fail` message.
fn run_dispatch(
    writer: &Arc<Mutex<TcpStream>>,
    task: &str,
    key: u64,
    window: u64,
    spec: &ringmesh_serve::json::Json,
    task_stop: &StopFlag,
    global_stop: &StopFlag,
) {
    let fail = |reason: String| {
        let _ = send(
            writer,
            &WorkerMsg::Fail {
                task: task.to_string(),
                reason,
            },
        );
    };
    let spec = match parse_job(spec, task) {
        Ok(s) => s,
        Err(e) => return fail(format!("bad spec: {e}")),
    };
    // The key must reproduce from the spec alone: a mismatch means the
    // coordinator and worker disagree on canonicalization (mixed builds
    // slipping past the hash check) and the result must not be trusted.
    let computed = ResultCache::key(&spec.cfg);
    if computed != key {
        return fail(format!(
            "content-key mismatch: dispatched {} but spec canonicalizes to {}",
            hex64(key),
            hex64(computed)
        ));
    }
    // Stateless on purpose: no checkpoint path. Either of two stops
    // interrupts at the next window — a cancel for this dispatch, or
    // worker shutdown.
    let merged = StopFlag::new();
    let outcome = {
        let mut on_window = |w: ringmesh_serve::WindowEvent| {
            if task_stop.is_set() || global_stop.is_set() {
                merged.set();
            }
            let _ = send(
                writer,
                &WorkerMsg::Window {
                    task: task.to_string(),
                    cycle: w.cycle,
                    issued: w.issued,
                    retired: w.retired,
                },
            );
        };
        run_job(
            &spec.cfg,
            window.max(1),
            0,
            None,
            Some(&merged),
            &mut on_window,
        )
    };
    match outcome {
        Ok(o) => {
            let payload = result_payload(&spec.cfg, &o.result, key);
            let hash = Fingerprint::of(payload.as_bytes());
            let _ = send(
                writer,
                &WorkerMsg::Done {
                    task: task.to_string(),
                    key,
                    hash,
                    payload,
                },
            );
        }
        Err(JobError::Interrupted) => {} // canceled; nothing to report
        Err(JobError::Failed(e)) => fail(e),
    }
}

/// Writes one message line under the shared writer lock.
fn send(writer: &Arc<Mutex<TcpStream>>, msg: &WorkerMsg) -> io::Result<()> {
    let stream = writer.lock().expect("writer poisoned");
    writeln!(&*stream, "{}", msg.encode())
}

/// Reads one coordinator message, polling `stop` through read
/// timeouts. `None` is EOF; an undecodable line is a transport error.
fn read_msg<R: BufRead>(reader: &mut R, stop: &StopFlag) -> io::Result<Option<CoordMsg>> {
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(None),
            Ok(_) => {
                return CoordMsg::decode(line.trim_end()).map(Some).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad coordinator message")
                })
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.is_set() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
}
