//! `ringmesh-fleet` — a fault-tolerant distributed sweep fleet.
//!
//! Extends [`ringmesh-serve`](ringmesh_serve) beyond one machine: a
//! coordinator ([`FleetPool`]) accepts TCP connections from remote
//! workers ([`run_worker`]) and dispatches the cache misses of each
//! batch to them under **time-bounded leases**, keeping the serve
//! layer's determinism contract intact across worker crashes:
//!
//! - **Line-JSON protocol over `std::net`** ([`WorkerMsg`],
//!   [`CoordMsg`]) — no external dependencies; one message per line,
//!   self-describing, forward-skippable.
//! - **Code-version handshake** — a worker registers with the FNV hash
//!   of the coordinator's [`CODE_VERSION`](ringmesh_serve::CODE_VERSION)
//!   contract ([`code_hash`]); a mismatched build is refused with a
//!   typed message naming both hashes, because a fleet of mixed builds
//!   could silently produce non-reproducible sweeps.
//! - **Leases, heartbeats, re-dispatch** — every dispatch carries a
//!   deadline and is journaled by the serve layer; a missed heartbeat
//!   or expired lease re-enqueues the job (on another worker, or the
//!   local pool as a fallback) under capped exponential backoff.
//! - **Straggler speculation with first-result-wins** — a job whose
//!   lease expires while its worker still breathes is speculatively
//!   dispatched a second time; duplicate results deduplicate by
//!   content hash, and **byte-divergent** duplicates are reported as a
//!   hard determinism violation rather than silently picking one.
//! - **Byte-identical merges** — the serve layer emits results in job
//!   submission order, so a batch's output (and its batch fingerprint)
//!   is identical whether it ran on zero, one, or ten workers, and
//!   regardless of which of them died mid-flight. A chaos test pins
//!   this by `kill -9`ing workers mid-batch and diffing against a
//!   single-process control run.
//!
//! The coordinator plugs into the server through the
//! [`RemoteRunner`](ringmesh_serve::RemoteRunner) trait, so
//! `ringmesh-serve` stays free of any networking beyond its own client
//! sockets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coordinator;
mod protocol;
mod worker;

pub use coordinator::{FleetOptions, FleetPool};
pub use protocol::{code_hash, CoordMsg, WorkerMsg};
pub use worker::{run_worker, WorkerExit, WorkerOptions};
