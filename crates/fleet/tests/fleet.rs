//! End-to-end fleet tests over real sockets: registration policy,
//! dispatch-and-complete against a genuine worker, worker-death
//! re-dispatch, and the divergent-duplicate determinism check.
//!
//! Fake workers speak the wire protocol directly so failure modes
//! (dying mid-lease, double-completing a dispatch) can be scripted
//! exactly; the dispatch-and-complete test uses the real
//! [`run_worker`] loop.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use ringmesh::StopFlag;
use ringmesh_fleet::{
    code_hash, run_worker, CoordMsg, FleetOptions, FleetPool, WorkerExit, WorkerMsg, WorkerOptions,
};
use ringmesh_serve::json::Json;
use ringmesh_serve::{
    parse_job, result_payload, run_job, RemoteEvent, RemoteOutcome, RemoteRunner, RemoteTask,
    ResultCache,
};
use ringmesh_snap::Fingerprint;

/// A small real job (mesh 3×3, two short batches) used wherever a
/// dispatch must actually simulate.
const JOB: &str = r#"{"op":"job","id":"t0","network":"mesh","side":3,"warmup":400,"batch_cycles":400,"batches":2,"cache_line":32}"#;

/// Quick-reacting options so death/backoff paths run in test time.
fn test_opts() -> FleetOptions {
    FleetOptions {
        lease_ms: 30_000,
        heartbeat_ms: 500,
        max_attempts: 4,
        backoff_base_ms: 10,
        backoff_cap_ms: 100,
        window_cycles: 200,
    }
}

/// Builds the `RemoteTask` plus the payload a correct run must produce,
/// computed in-process exactly as the serve layer would.
fn task_and_expected(id: &str) -> (RemoteTask, String) {
    let spec = Json::parse(JOB).expect("job spec parses");
    let job = parse_job(&spec, id).expect("job spec is valid");
    let key = ResultCache::key(&job.cfg);
    let out = run_job(&job.cfg, 200, 0, None, None, &mut |_| {}).expect("local control run");
    let payload = result_payload(&job.cfg, &out.result, key);
    (
        RemoteTask {
            id: id.to_string(),
            key,
            spec,
        },
        payload,
    )
}

/// A scripted worker speaking the wire protocol directly.
struct FakeWorker {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl FakeWorker {
    /// Connects and registers, returning after the coordinator answers.
    fn register(addr: std::net::SocketAddr, code: u64, threads: u32) -> (FakeWorker, CoordMsg) {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut w = FakeWorker { stream, reader };
        w.send(&WorkerMsg::Register { code, threads });
        let answer = w.read_msg();
        (w, answer)
    }

    fn send(&mut self, msg: &WorkerMsg) {
        writeln!(self.stream, "{}", msg.encode()).expect("write to coordinator");
    }

    fn read_msg(&mut self) -> CoordMsg {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => panic!("coordinator closed the connection unexpectedly"),
            Ok(_) => CoordMsg::decode(line.trim_end())
                .unwrap_or_else(|| panic!("undecodable coordinator line: {line:?}")),
            Err(e) => panic!("read from coordinator: {e}"),
        }
    }

    /// Reads until a dispatch arrives, returning its id and key.
    fn await_dispatch(&mut self) -> (String, u64) {
        loop {
            if let CoordMsg::Dispatch { task, key, .. } = self.read_msg() {
                return (task, key);
            }
        }
    }
}

/// Spins until the pool sees `n` live workers (registration is async).
fn await_workers(pool: &FleetPool, n: usize) {
    for _ in 0..400 {
        if pool.live_workers() >= n {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("workers never registered");
}

#[test]
fn mismatched_code_hash_is_refused_with_both_hashes() {
    let pool = FleetPool::bind("127.0.0.1:0", test_opts()).expect("bind");
    let bogus = 0xdead_beef_0bad_cafe_u64;
    let (_w, answer) = FakeWorker::register(pool.local_addr(), bogus, 1);
    match answer {
        CoordMsg::Refused {
            reason,
            expect,
            got,
        } => {
            assert_eq!(reason, "code-version-mismatch");
            assert_eq!(expect, code_hash());
            assert_eq!(got, bogus);
        }
        other => panic!("expected refusal, got {other:?}"),
    }
    assert_eq!(pool.live_workers(), 0, "refused worker must not register");
}

#[test]
fn real_worker_runs_a_dispatch_and_the_payload_is_byte_identical_to_local() {
    let pool = FleetPool::bind("127.0.0.1:0", test_opts()).expect("bind");
    let addr = pool.local_addr().to_string();
    let stop = StopFlag::new();
    let worker_stop = stop.clone();
    let worker = thread::spawn(move || {
        run_worker(&addr, &WorkerOptions { threads: 1 }, &worker_stop).expect("worker transport")
    });
    await_workers(&pool, 1);

    let (task, expected) = task_and_expected("t0");
    let mut events = Vec::new();
    let outcomes = pool.run_tasks(vec![task], &StopFlag::new(), &mut |e| events.push(e));

    match &outcomes[..] {
        [RemoteOutcome::Done { payload }] => assert_eq!(
            payload, &expected,
            "remote payload must be byte-identical to the local control run"
        ),
        other => panic!("expected one Done outcome, got {other:?}"),
    }
    assert!(
        events
            .iter()
            .any(|e| matches!(e, RemoteEvent::Lease { task: 0, .. })),
        "a lease event must precede the result"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, RemoteEvent::Window { task: 0, .. })),
        "windowed progress must stream through the coordinator"
    );

    drop(pool); // says bye; the worker loop exits cleanly
    assert_eq!(worker.join().expect("worker thread"), WorkerExit::Done);
    stop.set();
}

#[test]
fn killed_worker_re_dispatches_to_a_survivor_with_a_typed_retry() {
    let pool = FleetPool::bind("127.0.0.1:0", test_opts()).expect("bind");
    let addr = pool.local_addr();

    // The doomed worker registers first (lower id wins the idle
    // tie-break, so it receives the dispatch), then dies holding it.
    let (mut doomed, answer) = FakeWorker::register(addr, code_hash(), 1);
    assert!(matches!(answer, CoordMsg::Welcome { worker: 0, .. }));
    let (died_tx, died_rx) = mpsc::channel();
    let killer = thread::spawn(move || {
        let (dispatch, _key) = doomed.await_dispatch();
        drop(doomed); // kill -9 equivalent: vanish mid-lease
        died_tx.send(dispatch).expect("report death");
    });

    let stop = StopFlag::new();
    let survivor_stop = stop.clone();
    let addr_str = addr.to_string();
    let survivor = thread::spawn(move || {
        run_worker(&addr_str, &WorkerOptions { threads: 1 }, &survivor_stop)
            .expect("worker transport")
    });
    await_workers(&pool, 2);

    let (task, expected) = task_and_expected("t0");
    let mut events = Vec::new();
    let outcomes = pool.run_tasks(vec![task], &StopFlag::new(), &mut |e| events.push(e));

    let first_dispatch = died_rx.recv().expect("doomed worker saw the dispatch");
    assert_eq!(first_dispatch, "0:1", "attempt 1 goes to the doomed worker");
    killer.join().expect("killer thread");
    match &outcomes[..] {
        [RemoteOutcome::Done { payload }] => assert_eq!(
            payload, &expected,
            "the re-dispatched result must match the local control run"
        ),
        other => panic!("expected recovery to Done, got {other:?}"),
    }
    assert!(
        events.iter().any(|e| matches!(
            e,
            RemoteEvent::Retry { task: 0, reason, .. } if reason == "worker-death"
        )),
        "the re-enqueue must be visible as a typed worker-death retry: {events:?}"
    );
    let leases = events
        .iter()
        .filter(|e| matches!(e, RemoteEvent::Lease { .. }))
        .count();
    assert!(leases >= 2, "death must cost a second lease: {events:?}");

    drop(pool);
    assert_eq!(survivor.join().expect("survivor thread"), WorkerExit::Done);
    stop.set();
}

#[test]
fn byte_divergent_duplicate_results_are_a_determinism_violation() {
    let pool = FleetPool::bind("127.0.0.1:0", test_opts()).expect("bind");
    let (mut liar, answer) = FakeWorker::register(pool.local_addr(), code_hash(), 2);
    assert!(matches!(answer, CoordMsg::Welcome { .. }));

    // Two tasks: the liar double-completes the second with divergent
    // (but individually well-formed) payloads, then completes the first
    // so the batch is still live while the duplicate is processed.
    let spec = Json::parse(JOB).expect("job spec parses");
    let tasks: Vec<RemoteTask> = (0..2)
        .map(|i| RemoteTask {
            id: format!("t{i}"),
            key: 0x1000 + i,
            spec: spec.clone(),
        })
        .collect();

    let liar_thread = thread::spawn(move || {
        let mut dispatches = Vec::new();
        while dispatches.len() < 2 {
            dispatches.push(liar.await_dispatch());
        }
        let done = |task: &str, key: u64, payload: &str| WorkerMsg::Done {
            task: task.to_string(),
            key,
            hash: Fingerprint::of(payload.as_bytes()),
            payload: payload.to_string(),
        };
        let (second, second_key) = dispatches
            .iter()
            .find(|(d, _)| d.starts_with("1:"))
            .expect("task 1 dispatched")
            .clone();
        let (first, first_key) = dispatches
            .iter()
            .find(|(d, _)| d.starts_with("0:"))
            .expect("task 0 dispatched")
            .clone();
        liar.send(&done(&second, second_key, r#"{"answer":1}"#));
        liar.send(&done(&second, second_key, r#"{"answer":2}"#));
        liar.send(&done(&first, first_key, r#"{"answer":3}"#));
        liar // keep the socket open until the batch settles
    });

    let mut events = Vec::new();
    let outcomes = pool.run_tasks(tasks, &StopFlag::new(), &mut |e| events.push(e));

    assert!(
        matches!(&outcomes[0], RemoteOutcome::Done { payload } if payload == r#"{"answer":3}"#),
        "task 0 completes normally: {:?}",
        outcomes[0]
    );
    let a = Fingerprint::of(br#"{"answer":1}"#);
    let b = Fingerprint::of(br#"{"answer":2}"#);
    match &outcomes[1] {
        RemoteOutcome::Divergent { first, second } => {
            assert_eq!((*first, *second), (a, b), "both hashes must be reported");
        }
        other => panic!("byte-divergent duplicate must be Divergent, got {other:?}"),
    }
    drop(liar_thread.join().expect("liar thread"));
    drop(pool);
}
