//! Summary statistics with small-sample confidence intervals.

use std::fmt;

/// Critical values of Student's t distribution at 97.5% (two-sided 95%
/// CI) for 1..=30 degrees of freedom; larger samples use the normal
/// approximation 1.96.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

fn t_crit(df: usize) -> f64 {
    match df {
        0 => f64::INFINITY,
        d if d <= 30 => T_975[d - 1],
        _ => 1.96,
    }
}

/// Mean, spread and a 95% confidence half-width for a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 if n < 2).
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval for the mean
    /// (infinite if n < 2).
    pub ci95: f64,
    /// Smallest observation (0 for an empty sample).
    pub min: f64,
    /// Largest observation (0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics for `values`.
    ///
    /// # Example
    ///
    /// ```
    /// use ringmesh_stats::Summary;
    ///
    /// let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
    /// assert_eq!(s.mean, 5.0);
    /// assert!((s.std_dev - 2.138).abs() < 1e-3);
    /// ```
    pub fn of(values: &[f64]) -> Summary {
        let n = values.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                ci95: f64::INFINITY,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if n < 2 {
            return Summary {
                n,
                mean,
                std_dev: 0.0,
                ci95: f64::INFINITY,
                min,
                max,
            };
        }
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let std_dev = var.sqrt();
        let ci95 = t_crit(n - 1) * std_dev / (n as f64).sqrt();
        Summary {
            n,
            mean,
            std_dev,
            ci95,
            min,
            max,
        }
    }

    /// Relative CI half-width (`ci95 / mean`); infinite when the mean is
    /// zero or the sample too small. Useful for run-length control.
    pub fn relative_ci(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            f64::INFINITY
        } else {
            self.ci95 / self.mean.abs()
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ± {:.2} (n={})", self.mean, self.ci95, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert!(s.ci95.is_infinite());
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert!(s.ci95.is_infinite());
        assert_eq!((s.min, s.max), (42.0, 42.0));
    }

    #[test]
    fn constant_sample_has_zero_ci() {
        let s = Summary::of(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_values() {
        // Two observations: mean 3, sd sqrt(2), CI = 12.706*sqrt(2)/sqrt(2).
        let s = Summary::of(&[2.0, 4.0]);
        assert_eq!(s.mean, 3.0);
        assert!((s.std_dev - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!((s.ci95 - 12.706).abs() < 1e-9);
    }

    #[test]
    fn min_max_tracked() {
        let s = Summary::of(&[3.0, -1.0, 7.0]);
        assert_eq!((s.min, s.max), (-1.0, 7.0));
    }

    #[test]
    fn large_sample_uses_normal_approx() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = Summary::of(&vals);
        let expected = 1.96 * s.std_dev / 10.0;
        assert!((s.ci95 - expected).abs() < 1e-9);
    }

    #[test]
    fn relative_ci() {
        let s = Summary::of(&[10.0, 10.0, 10.0, 10.0]);
        assert_eq!(s.relative_ci(), 0.0);
        let z = Summary::of(&[0.0, 0.0]);
        assert!(z.relative_ci().is_infinite());
    }
}
