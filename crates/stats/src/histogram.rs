//! A fixed-memory latency histogram with log-spaced buckets, for
//! percentile reporting (mean latency alone hides the convoy/tail
//! behaviour that distinguishes switching disciplines).

use ringmesh_snap::{SnapError, SnapReader, SnapWriter, SnapshotState};

/// Histogram over non-negative values with logarithmically spaced
/// buckets: 16 sub-buckets per octave, covering `[1, 2^40)` with a
/// relative resolution of about 4.5%.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
}

const SUB: usize = 16;
const OCTAVES: usize = 40;

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; SUB * OCTAVES],
            total: 0,
            underflow: 0,
        }
    }

    /// Bucket index for `value`, or `None` for anything below 1 (sub-
    /// unit, zero, negative, NaN) — those belong in the underflow
    /// count. Without the guard a value in (0, 1) has a negative
    /// octave whose `as usize` cast saturates to 0, silently landing
    /// it in a genuine low bucket instead.
    fn bucket(value: f64) -> Option<usize> {
        if value.is_nan() || value < 1.0 {
            return None;
        }
        // value in [2^o, 2^(o+1)) maps to octave o, sub-bucket by the
        // fractional part of log2.
        let log = value.log2();
        let octave = log.floor();
        let sub = ((log - octave) * SUB as f64) as usize;
        let idx = octave as usize * SUB + sub.min(SUB - 1);
        Some(idx.min(SUB * OCTAVES - 1))
    }

    /// Representative (geometric-mean) value of bucket `idx`.
    fn bucket_value(idx: usize) -> f64 {
        let octave = (idx / SUB) as f64;
        let sub = (idx % SUB) as f64;
        2f64.powf(octave + (sub + 0.5) / SUB as f64)
    }

    /// Records one observation. Values below 1 count as 1.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        match Self::bucket(value) {
            Some(idx) => self.counts[idx] += 1,
            None => self.underflow += 1,
        }
    }

    /// Number of recorded observations.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The value at quantile `q ∈ [0, 1]` (to bucket resolution);
    /// `None` on an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if self.total == 0 {
            return None;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(1.0);
        }
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_value(idx));
            }
        }
        Some(Self::bucket_value(SUB * OCTAVES - 1))
    }

    /// Convenience: the median, 95th and 99th percentiles.
    pub fn p50_p95_p99(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl SnapshotState for Histogram {
    fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.counts.len());
        for &c in &self.counts {
            w.u64(c);
        }
        w.u64(self.total);
        w.u64(self.underflow);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        if n != self.counts.len() {
            return Err(SnapError::Mismatch(format!(
                "histogram has {n} buckets, expected {}",
                self.counts.len()
            )));
        }
        for c in &mut self.counts {
            *c = r.u64()?;
        }
        self.total = r.u64()?;
        self.underflow = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn single_value_is_every_quantile() {
        let mut h = Histogram::new();
        h.record(100.0);
        for q in [0.01, 0.5, 0.99] {
            let v = h.quantile(q).unwrap();
            assert!((v / 100.0 - 1.0).abs() < 0.05, "q={q}: {v}");
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.record(f64::from(i));
        }
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        assert!((p50 / 5_000.0 - 1.0).abs() < 0.06, "p50={p50}");
        assert!((p95 / 9_500.0 - 1.0).abs() < 0.06, "p95={p95}");
    }

    #[test]
    fn bucket_resolution_is_within_5_percent() {
        let mut h = Histogram::new();
        h.record(123.0);
        let v = h.quantile(0.5).unwrap();
        assert!((v / 123.0 - 1.0).abs() < 0.05, "{v}");
    }

    #[test]
    fn tiny_values_clamp_to_one() {
        let mut h = Histogram::new();
        h.record(0.25);
        assert_eq!(h.quantile(0.5), Some(1.0));
    }

    #[test]
    fn subunit_values_never_reach_a_real_bucket() {
        // (0,1) has a negative log2 octave; an unguarded `as usize`
        // cast would saturate it to octave 0 and count the value as if
        // it were in [1, 2).
        assert_eq!(Histogram::bucket(0.5), None);
        assert_eq!(Histogram::bucket(0.999), None);
        assert_eq!(Histogram::bucket(0.0), None);
        assert_eq!(Histogram::bucket(-3.0), None);
        assert_eq!(Histogram::bucket(f64::NAN), None);
        assert_eq!(Histogram::bucket(1.0), Some(0));
    }

    #[test]
    fn subunit_observations_count_as_underflow() {
        let mut h = Histogram::new();
        for _ in 0..9 {
            h.record(0.6);
        }
        h.record(64.0);
        // Nine of ten observations are underflow: the median must be
        // the underflow representative (1.0), not a (0,1)-misbucketed
        // value, and the tail must still see the real observation.
        assert_eq!(h.quantile(0.5), Some(1.0));
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 / 64.0 - 1.0).abs() < 0.05, "p99={p99}");
    }

    #[test]
    fn monotone_in_q() {
        let mut h = Histogram::new();
        for i in 1..1000 {
            h.record(f64::from(i * i % 977 + 1));
        }
        let mut last = 0.0;
        for q in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let v = h.quantile(q).unwrap();
            assert!(v >= last);
            last = v;
        }
    }
}
