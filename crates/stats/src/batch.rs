//! The batch means method of output analysis.

use ringmesh_snap::{SnapError, SnapReader, SnapWriter, SnapshotState};

use crate::Summary;

/// Batch-means collector for a steady-state simulation measure.
///
/// Simulated time is divided into a warm-up interval (the paper's
/// discarded first batch) followed by `batches` batches of
/// `batch_cycles` cycles each. Observations recorded during warm-up are
/// dropped; each batch contributes the mean of its observations, and
/// [`summary`](BatchMeans::summary) reports statistics *across* batch
/// means, which are approximately independent for long enough batches.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    warmup: u64,
    batch_cycles: u64,
    batches: usize,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl BatchMeans {
    /// Creates a collector with a `warmup`-cycle discarded prefix
    /// followed by `batches` batches of `batch_cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `batch_cycles` or `batches` is zero.
    pub fn new(warmup: u64, batch_cycles: u64, batches: usize) -> Self {
        assert!(batch_cycles > 0, "batch length must be positive");
        assert!(batches > 0, "need at least one batch");
        BatchMeans {
            warmup,
            batch_cycles,
            batches,
            sums: vec![0.0; batches],
            counts: vec![0; batches],
        }
    }

    /// End of the measurement horizon: `warmup + batches × batch_cycles`.
    pub fn horizon(&self) -> u64 {
        self.warmup + self.batch_cycles * self.batches as u64
    }

    /// Warm-up length in cycles.
    pub fn warmup(&self) -> u64 {
        self.warmup
    }

    /// Records an observation with timestamp `now` (e.g. a completed
    /// transaction's latency). Observations before the warm-up ends or
    /// after the horizon are ignored.
    pub fn record(&mut self, now: u64, value: f64) {
        if now < self.warmup {
            return;
        }
        let idx = ((now - self.warmup) / self.batch_cycles) as usize;
        if idx < self.batches {
            self.sums[idx] += value;
            self.counts[idx] += 1;
        }
    }

    /// Whether the measurement horizon has elapsed at time `now`.
    pub fn is_complete(&self, now: u64) -> bool {
        now >= self.horizon()
    }

    /// Per-batch means, skipping batches with no observations.
    pub fn batch_means(&self) -> Vec<f64> {
        self.sums
            .iter()
            .zip(&self.counts)
            .filter(|&(_, &c)| c > 0)
            .map(|(&s, &c)| s / c as f64)
            .collect()
    }

    /// Total number of observations recorded inside the horizon.
    pub fn observations(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean observation rate per cycle over the measurement horizon
    /// (e.g. completed transactions per cycle — system throughput).
    pub fn rate_per_cycle(&self) -> f64 {
        self.observations() as f64 / (self.batch_cycles * self.batches as u64) as f64
    }

    /// Summary across batch means.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.batch_means())
    }
}

impl SnapshotState for BatchMeans {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.warmup);
        w.u64(self.batch_cycles);
        w.usize(self.batches);
        for &s in &self.sums {
            w.f64(s);
        }
        for &c in &self.counts {
            w.u64(c);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let (warmup, batch_cycles, batches) = (r.u64()?, r.u64()?, r.usize()?);
        if (warmup, batch_cycles, batches) != (self.warmup, self.batch_cycles, self.batches) {
            return Err(SnapError::Mismatch(format!(
                "batch-means plan {warmup}/{batch_cycles}x{batches} vs {}/{}x{}",
                self.warmup, self.batch_cycles, self.batches
            )));
        }
        for s in &mut self.sums {
            *s = r.f64()?;
        }
        for c in &mut self.counts {
            *c = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_discarded() {
        let mut bm = BatchMeans::new(100, 100, 2);
        bm.record(50, 1000.0); // warm-up, dropped
        bm.record(150, 10.0);
        bm.record(250, 20.0);
        assert_eq!(bm.batch_means(), vec![10.0, 20.0]);
        assert_eq!(bm.observations(), 2);
    }

    #[test]
    fn batch_boundaries() {
        let mut bm = BatchMeans::new(0, 10, 3);
        bm.record(0, 1.0); // batch 0
        bm.record(9, 3.0); // batch 0
        bm.record(10, 5.0); // batch 1
        bm.record(29, 7.0); // batch 2
        bm.record(30, 100.0); // beyond horizon, dropped
        assert_eq!(bm.batch_means(), vec![2.0, 5.0, 7.0]);
    }

    #[test]
    fn boundary_observations_land_in_the_right_batch() {
        // With a non-zero warm-up, the fencepost cycles: the last
        // warm-up cycle drops, the first measured cycle opens batch 0,
        // each batch is closed-open, and the horizon cycle drops.
        let mut bm = BatchMeans::new(100, 50, 2);
        bm.record(99, 1.0); // last warm-up cycle: dropped
        bm.record(100, 2.0); // first measured cycle: batch 0
        bm.record(149, 4.0); // last cycle of batch 0
        bm.record(150, 8.0); // first cycle of batch 1
        bm.record(199, 16.0); // last measured cycle
        bm.record(200, 32.0); // horizon: dropped
        assert_eq!(bm.batch_means(), vec![3.0, 12.0]);
        assert_eq!(bm.observations(), 4);
        assert!(!bm.is_complete(199));
        assert!(bm.is_complete(200));
    }

    #[test]
    fn empty_batches_are_skipped_in_summary() {
        let mut bm = BatchMeans::new(0, 10, 3);
        bm.record(5, 4.0);
        bm.record(25, 8.0); // batch 1 gets nothing
        assert_eq!(bm.batch_means(), vec![4.0, 8.0]);
        let s = bm.summary();
        assert_eq!(s.n, 2);
        assert!((s.mean - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batches_skipped() {
        let mut bm = BatchMeans::new(0, 10, 3);
        bm.record(25, 4.0); // only batch 2
        assert_eq!(bm.batch_means(), vec![4.0]);
        let s = bm.summary();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 4.0);
    }

    #[test]
    fn horizon_and_completion() {
        let bm = BatchMeans::new(100, 50, 4);
        assert_eq!(bm.horizon(), 300);
        assert!(!bm.is_complete(299));
        assert!(bm.is_complete(300));
    }

    #[test]
    fn throughput_rate() {
        let mut bm = BatchMeans::new(0, 100, 2);
        for t in 0..200 {
            if t % 4 == 0 {
                bm.record(t, 1.0);
            }
        }
        assert!((bm.rate_per_cycle() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summary_across_batches() {
        let mut bm = BatchMeans::new(0, 10, 4);
        for (i, v) in [10.0, 12.0, 8.0, 10.0].iter().enumerate() {
            bm.record(i as u64 * 10, *v);
        }
        let s = bm.summary();
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 10.0);
    }
}
