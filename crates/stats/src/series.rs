//! Series and table containers used by the benchmark harness to print
//! paper-style figures and tables.

use std::fmt;

/// One labelled curve of `(x, y)` points — e.g. "Ring, T=4" latency as a
/// function of node count.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label, matching the paper's legend text where possible.
    pub label: String,
    /// `(x, y)` points in ascending `x` order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Linear interpolation of `y` at `x`; `None` outside the series'
    /// x-range or for an empty series.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        let pts = &self.points;
        if pts.is_empty() || x < pts[0].0 || x > pts[pts.len() - 1].0 {
            return None;
        }
        if pts.len() == 1 {
            // The range check above admitted x only if it equals the
            // lone point's x; windows(2) below would yield nothing.
            return Some(pts[0].1);
        }
        for w in pts.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if x >= x0 && x <= x1 {
                if (x1 - x0).abs() < f64::EPSILON {
                    return Some(y0);
                }
                return Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0));
            }
        }
        None
    }

    /// The first `x` at which this series' `y` exceeds `other`'s,
    /// determined by linear interpolation over the overlapping x-range —
    /// used to locate the ring/mesh *cross-over points* of §5.
    ///
    /// Returns `None` if the ordering never flips in the overlap.
    pub fn crossover_with(&self, other: &Series) -> Option<f64> {
        let lo = self.points.first()?.0.max(other.points.first()?.0);
        let hi = self.points.last()?.0.min(other.points.last()?.0);
        if lo >= hi {
            return None;
        }
        // Sample the overlap densely on the union of both x-grids.
        let mut xs: Vec<f64> = self
            .points
            .iter()
            .chain(&other.points)
            .map(|&(x, _)| x)
            .filter(|&x| (lo..=hi).contains(&x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();
        let diff = |x: f64| Some(self.interpolate(x)? - other.interpolate(x)?);
        let mut prev: Option<(f64, f64)> = None;
        for &x in &xs {
            let d = diff(x)?;
            if let Some((px, pd)) = prev {
                if pd <= 0.0 && d > 0.0 {
                    // Linear root between px and x.
                    let t = if (d - pd).abs() < f64::EPSILON {
                        0.0
                    } else {
                        -pd / (d - pd)
                    };
                    return Some(px + t * (x - px));
                }
            }
            prev = Some((x, d));
        }
        None
    }
}

/// A printable table with a title, column headers and string cells;
/// renders as aligned plain text (and as Markdown via
/// [`Table::to_markdown`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title, printed above the header row.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each must have `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} != column count {}",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders the table as RFC-4180-style CSV (cells containing commas
    /// or quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn cell(c: &str) -> String {
            if c.contains([',', '"', '\n']) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| cell(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Builds a table from series: one `x` column plus one column per
    /// series, rows on the union of x-grids (blank where a series has no
    /// point at that x).
    pub fn from_series(title: impl Into<String>, x_label: &str, series: &[Series]) -> Table {
        let mut xs: Vec<f64> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut cols = vec![x_label.to_string()];
        cols.extend(series.iter().map(|s| s.label.clone()));
        let mut table = Table {
            title: title.into(),
            columns: cols,
            rows: Vec::new(),
        };
        for &x in &xs {
            let mut row = vec![format_num(x)];
            for s in series {
                let cell = s
                    .points
                    .iter()
                    .find(|&&(px, _)| (px - x).abs() < 1e-9)
                    .map(|&(_, y)| format!("{y:.1}"))
                    .unwrap_or_default();
                row.push(cell);
            }
            table.rows.push(row);
        }
        table
    }
}

fn format_num(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "{}", self.title)?;
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
            .collect();
        writeln!(f, "  {}", header.join("  "))?;
        writeln!(
            f,
            "  {}",
            w.iter()
                .map(|&x| "-".repeat(x))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect();
            writeln!(f, "  {}", cells.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_basics() {
        let mut s = Series::new("a");
        s.push(0.0, 0.0);
        s.push(10.0, 100.0);
        assert_eq!(s.interpolate(5.0), Some(50.0));
        assert_eq!(s.interpolate(0.0), Some(0.0));
        assert_eq!(s.interpolate(10.0), Some(100.0));
        assert_eq!(s.interpolate(-1.0), None);
        assert_eq!(s.interpolate(11.0), None);
    }

    #[test]
    fn empty_series_interpolates_none() {
        let s = Series::new("empty");
        assert_eq!(s.interpolate(1.0), None);
    }

    #[test]
    fn single_point_series_interpolates_only_at_its_x() {
        let mut s = Series::new("pt");
        s.push(5.0, 42.0);
        assert_eq!(s.interpolate(5.0), Some(42.0));
        assert_eq!(s.interpolate(4.999), None);
        assert_eq!(s.interpolate(5.001), None);
    }

    #[test]
    fn duplicate_x_step_returns_the_earlier_y() {
        // A vertical step (two points sharing x) must not divide by
        // zero; the convention is the first point's y.
        let mut s = Series::new("step");
        s.push(0.0, 0.0);
        s.push(2.0, 1.0);
        s.push(2.0, 9.0);
        s.push(4.0, 9.0);
        assert_eq!(s.interpolate(2.0), Some(1.0));
        assert_eq!(s.interpolate(1.0), Some(0.5));
        assert_eq!(s.interpolate(3.0), Some(9.0));
    }

    #[test]
    fn nan_x_interpolates_none() {
        let mut s = Series::new("a");
        s.push(0.0, 0.0);
        s.push(1.0, 1.0);
        assert_eq!(s.interpolate(f64::NAN), None);
    }

    #[test]
    fn crossover_found() {
        // Ring starts cheaper, grows steeper: crosses mesh at x = 20.
        let mut ring = Series::new("ring");
        let mut mesh = Series::new("mesh");
        for x in [0.0, 10.0, 20.0, 30.0, 40.0] {
            ring.push(x, 2.0 * x); // 0,20,40,60,80
            mesh.push(x, x + 20.0); // 20,30,40,50,60
        }
        let cx = ring.crossover_with(&mesh).unwrap();
        assert!((cx - 20.0).abs() < 1e-9, "crossover at {cx}");
    }

    #[test]
    fn crossover_absent_when_one_dominates() {
        let mut a = Series::new("a");
        let mut b = Series::new("b");
        for x in [0.0, 10.0] {
            a.push(x, 1.0);
            b.push(x, 2.0);
        }
        assert_eq!(a.crossover_with(&b), None);
    }

    #[test]
    fn table_render_alignment() {
        let mut t = Table::new("demo", &["nodes", "latency"]);
        t.push_row(vec!["4".into(), "31.5".into()]);
        t.push_row(vec!["121".into(), "650.0".into()]);
        let s = t.to_string();
        assert!(s.contains("nodes"));
        assert!(s.contains("650.0"));
        // Aligned right: the "4" row should pad to width of "nodes".
        assert!(s.lines().nth(3).unwrap().contains("    4"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn table_from_series_unions_grids() {
        let mut a = Series::new("A");
        a.push(4.0, 1.0);
        a.push(8.0, 2.0);
        let mut b = Series::new("B");
        b.push(8.0, 3.0);
        b.push(16.0, 4.0);
        let t = Table::from_series("t", "nodes", &[a, b]);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0], vec!["4", "1.0", ""]);
        assert_eq!(t.rows[1], vec!["8", "2.0", "3.0"]);
        assert_eq!(t.rows[2], vec!["16", "", "4.0"]);
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new("m", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "plain".into()]);
        t.push_row(vec!["say \"hi\"".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"1,5\",plain\n\"say \"\"hi\"\"\",2\n");
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("m", &["x"]);
        t.push_row(vec!["1".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### m"));
        assert!(md.contains("| x |"));
        assert!(md.contains("|---|"));
        assert!(md.contains("| 1 |"));
    }
}
