//! Output analysis for the `ringmesh` simulator.
//!
//! The paper uses the *batch means* method: the run is divided into
//! fixed-length batches, the first batch is discarded to remove
//! initialization bias, and the mean and confidence interval are
//! computed over the per-batch means. This crate provides that method
//! ([`BatchMeans`]), basic summary statistics ([`Summary`]), and the
//! series/table containers the benchmark harness uses to print
//! paper-style figures ([`Series`], [`Table`]).
//!
//! # Example
//!
//! ```
//! use ringmesh_stats::BatchMeans;
//!
//! // 100-cycle warm-up (the discarded batch), then 4 batches of
//! // 1000 cycles each.
//! let mut bm = BatchMeans::new(100, 1000, 4);
//! for t in 0..4100u64 {
//!     bm.record(t, 50.0);
//! }
//! assert!(bm.is_complete(4100));
//! let s = bm.summary();
//! assert_eq!(s.mean, 50.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod histogram;
mod series;
mod summary;

pub use batch::BatchMeans;
pub use histogram::Histogram;
pub use series::{Series, Table};
pub use summary::Summary;
