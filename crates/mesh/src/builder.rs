//! [`TopologyBuilder`] implementation for the square mesh.

use ringmesh_net::{
    BufferRegime, CacheLineSize, ConfigError, Interconnect, PacketFormat, Placement,
    TopologyBuilder,
};

use crate::{MeshConfig, MeshNetwork, MeshTopology};

/// Builds the paper's bi-directional wormhole mesh ([`MeshNetwork`]).
/// Spec syntax: `mesh:12` (4-flit buffers, the paper's default), or
/// `mesh:12:1flit` / `mesh:12:cl` for the other buffer regimes.
#[derive(Debug, Clone)]
pub struct MeshBuilder {
    /// Mesh side length.
    pub side: u32,
    /// Router input buffer regime.
    pub buffers: BufferRegime,
}

impl TopologyBuilder for MeshBuilder {
    fn num_pms(&self) -> u32 {
        self.side * self.side
    }

    fn label(&self) -> String {
        format!("mesh {0}x{0} ({1} buffers)", self.side, self.buffers)
    }

    fn spec(&self) -> String {
        match self.buffers {
            BufferRegime::FourFlit => format!("mesh:{}", self.side),
            BufferRegime::OneFlit => format!("mesh:{}:1flit", self.side),
            BufferRegime::CacheLine => format!("mesh:{}:cl", self.side),
        }
    }

    fn placement(&self) -> Placement {
        Placement::Grid { side: self.side }
    }

    fn format(&self) -> PacketFormat {
        PacketFormat::MESH
    }

    fn parallel_kernel(&self) -> bool {
        true
    }

    fn build(&self, cache_line: CacheLineSize) -> Result<Box<dyn Interconnect>, ConfigError> {
        let mc = MeshConfig::new(cache_line).with_buffers(self.buffers);
        Ok(Box::new(MeshNetwork::new(
            MeshTopology::try_new(self.side)?,
            mc,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_builder_identity() {
        let b = MeshBuilder {
            side: 6,
            buffers: BufferRegime::FourFlit,
        };
        assert_eq!(b.num_pms(), 36);
        assert_eq!(b.label(), "mesh 6x6 (4-flit buffers)");
        assert_eq!(b.spec(), "mesh:6");
        assert_eq!(b.placement(), Placement::Grid { side: 6 });
        assert!(b.parallel_kernel());
        assert_eq!(b.build(CacheLineSize::B32).unwrap().num_pms(), 36);
    }

    #[test]
    fn buffer_regimes_spell_out_in_spec() {
        let one = MeshBuilder {
            side: 4,
            buffers: BufferRegime::OneFlit,
        };
        assert_eq!(one.spec(), "mesh:4:1flit");
        let cl = MeshBuilder {
            side: 4,
            buffers: BufferRegime::CacheLine,
        };
        assert_eq!(cl.spec(), "mesh:4:cl");
    }

    #[test]
    fn zero_side_draws_typed_error() {
        let b = MeshBuilder {
            side: 0,
            buffers: BufferRegime::FourFlit,
        };
        assert!(b.build(CacheLineSize::B32).is_err());
    }
}
