//! Configuration of the mesh network model.

use ringmesh_net::{BufferRegime, CacheLineSize, PacketFormat};

/// Tunable parameters of a [`MeshNetwork`](crate::MeshNetwork).
///
/// Defaults reproduce the paper's setup: 32-bit channels (4-byte
/// flits), 4-flit headers, 4-flit router input buffers, round-robin
/// arbitration and single-packet PM injection queues per class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshConfig {
    /// Cache line size; determines packet sizes (and cl buffer depth).
    pub cache_line: CacheLineSize,
    /// Packet format (header flits and flit width). Defaults to the
    /// 32-bit-channel mesh format.
    pub format: PacketFormat,
    /// Router input buffer sizing: 1 flit, 4 flits or cache-line sized.
    pub buffers: BufferRegime,
    /// PM injection queue capacity per class, in packets (paper: 1).
    pub out_queue_packets: usize,
    /// Cycles without any flit movement (with packets in flight) before
    /// the watchdog reports a deadlock.
    pub watchdog_horizon: u64,
}

impl MeshConfig {
    /// Paper-default configuration (4-flit buffers) for the given cache
    /// line size.
    pub fn new(cache_line: CacheLineSize) -> Self {
        MeshConfig {
            cache_line,
            format: PacketFormat::MESH,
            buffers: BufferRegime::FourFlit,
            out_queue_packets: 1,
            watchdog_horizon: 10_000,
        }
    }

    /// Returns the config with the given buffer regime.
    pub fn with_buffers(mut self, buffers: BufferRegime) -> Self {
        self.buffers = buffers;
        self
    }

    /// Router input buffer depth in flits.
    pub fn buffer_flits(&self) -> usize {
        self.buffers.flits(self.format, self.cache_line) as usize
    }
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig::new(CacheLineSize::B32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = MeshConfig::new(CacheLineSize::B64);
        assert_eq!(cfg.buffer_flits(), 4);
        assert_eq!(cfg.format, PacketFormat::MESH);
    }

    #[test]
    fn buffer_regimes() {
        let cl = CacheLineSize::B128;
        assert_eq!(
            MeshConfig::new(cl)
                .with_buffers(BufferRegime::OneFlit)
                .buffer_flits(),
            1
        );
        assert_eq!(
            MeshConfig::new(cl)
                .with_buffers(BufferRegime::CacheLine)
                .buffer_flits(),
            36
        );
    }
}
