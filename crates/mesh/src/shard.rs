//! Structure-of-arrays mesh router state, sharded one-per-row for
//! deterministic intra-cycle parallelism.
//!
//! The previous layout kept a `Vec<Router>` of per-node structs; the
//! per-cycle loop walked them pointer-chasing five FIFOs, a routing
//! table and arbitration state per node. This module splits that state
//! into per-row [`MeshShard`]s holding one contiguous array per field,
//! each indexed by local node and carrying that node's ports as an
//! inline fixed-size block (`Vec<[T; 5]>`; `[T; 4]` for links). The hot
//! stages — route, arbitrate, transfer — scan each field's array in
//! node order with compile-time-bounded port indexing, and one shard is
//! a natural unit of parallel work.
//!
//! # Two-phase protocol
//!
//! The mesh is clocked with *registered* (previous-cycle) stop/go flow
//! control, so within one cycle every node's step reads only shared
//! state from the previous cycle. Each cycle therefore splits into:
//!
//! 1. **compute** ([`MeshShard::compute`]) — runs on any thread, one
//!    shard at a time per thread. Reads the shared previous-cycle
//!    stop/go buffer, the packet store, the routing LUT and the fault
//!    view; mutates *only* shard-local state; and records every
//!    shared-state effect (flit transfers onto links, packet
//!    deliveries/drops) into shard-local [`Send`]/[`CommitOp`] buffers.
//! 2. **commit** (serial, in `MeshNetwork::step`) — applies each
//!    shard's buffered effects in fixed shard order = ascending node
//!    order, exactly the order the old serial loop produced them, so
//!    the delivered stream, ledger updates, packet-store slot reuse
//!    and every other observable byte are identical at any thread
//!    count.
//! 3. **latch** ([`MeshShard::latch`]) — parallel again: each shard
//!    latches its input FIFOs and writes the *next*-cycle stop/go
//!    signals into its own `go_out` buffer; the network then gathers
//!    those contiguous slices into the shared `go` buffer. `go` /
//!    `go_out` are the explicit current/next halves of the
//!    double-buffered cycle state.

use ringmesh_faults::{DropReason, FaultInjector};
use ringmesh_net::{
    Assembler, DrainState, Flit, FlitFifo, NodeId, PacketQueue, PacketRef, PacketStore, QueueClass,
};
use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotState};

use crate::topology::{Direction, MeshTopology};

/// Port index of the local PM; ports 0..4 are N/E/S/W per
/// [`Direction::port`].
pub const LOCAL: usize = 4;

/// Sentinel "port" for packets with no usable route (every required
/// direction leads to a dead router): the input sinks their flits and
/// the packet is accounted as dropped.
pub const DROP: usize = 5;

/// Per-cycle fault view handed to every shard's compute phase. With no
/// injector installed every query answers "healthy" and routing is
/// byte-for-byte the plain e-cube path. All queries are `&self`, so
/// one view is shared by every compute thread.
#[derive(Debug, Clone, Copy)]
pub struct FaultCtx<'a> {
    /// The installed injector, if any.
    pub inj: Option<&'a FaultInjector>,
    /// Corruption marks by packet-store slot.
    pub corrupt: &'a [bool],
    /// The current network cycle.
    pub now: u64,
}

impl FaultCtx<'_> {
    fn router_dead(&self, node: NodeId) -> bool {
        self.inj.is_some_and(|f| f.node_dead(node.raw()))
    }

    /// Directed link out of `from` toward `dir` (`node*4 + port`).
    fn link_up(&self, from: NodeId, dir: Direction) -> bool {
        self.link_up_id(from.raw() * 4 + dir.port() as u32)
    }

    /// [`Self::link_up`] by precomputed directed-link id — the hot
    /// transfer path uses ids cached in [`LinkInfo`] so the fault query
    /// costs no coordinate arithmetic.
    fn link_up_id(&self, id: u32) -> bool {
        match self.inj {
            None => true,
            Some(f) => f.link_up(id, self.now),
        }
    }

    fn is_corrupt(&self, slot: usize) -> bool {
        self.corrupt.get(slot).copied().unwrap_or(false)
    }
}

/// A flit transfer onto an inter-router link, recorded during compute
/// and applied at commit after all nodes have stepped.
#[derive(Debug, Clone, Copy)]
pub struct Send {
    /// Global id of the receiving node.
    pub to_node: u32,
    /// Destination shard and node-within-shard, precomputed at
    /// construction so commit does no divmod per flit.
    pub to_sh: u32,
    /// Node-within-shard of the receiver.
    pub to_l: u32,
    /// Receiving input port.
    pub to_port: u32,
    /// The flit on the wire.
    pub flit: Flit,
}

/// A deferred shared-state effect: recorded shard-locally during the
/// parallel compute phase, applied serially at commit in node order.
/// Deferring the `PacketStore` removals is what keeps the store's slot
/// freelist (and therefore every later `PacketRef`) byte-identical to
/// the old serial loop.
#[derive(Debug, Clone, Copy)]
pub enum CommitOp {
    /// The assembler at `node` completed `packet` intact.
    Deliver {
        /// The delivering node.
        node: NodeId,
        /// The completed packet.
        packet: PacketRef,
    },
    /// `packet` fully arrived but is dropped (corrupt at ejection, or
    /// sunk by the drop port).
    Drop {
        /// The dropped packet.
        packet: PacketRef,
        /// Why it was dropped.
        reason: DropReason,
    },
}

/// Facts about one outgoing mesh link, precomputed at construction so
/// the per-cycle transfer loop does no topology arithmetic: the
/// receiving node and port, the flattened index of that input's
/// stop/go signal, and the directed-link fault id.
#[derive(Debug, Clone, Copy)]
struct LinkInfo {
    to_node: NodeId,
    /// `(shard, local)` of `to_node` — shards are one row each.
    to_sh: u32,
    to_l: u32,
    to_port: u32,
    go_idx: usize,
    link_id: u32,
}

/// One mesh row's worth of router state in structure-of-arrays layout.
///
/// Each per-port field is its own flat array with one fixed-size
/// `[_; 5]` block per node, indexed `[node - lo][port]` (`[_; 4]`
/// blocks for the link table): fields scan contiguously across the
/// row, while one node's five ports of a field share a block — a
/// single bounds check — and index with compile-time-known bounds.
/// Scratch buffers (`sends`, `ops`, `moved`, `blocked`) are the
/// compute phase's only outputs besides shard-local state.
#[derive(Debug)]
pub struct MeshShard {
    /// First global node id in this shard.
    lo: usize,
    /// Number of nodes (= the mesh side, one row per shard).
    len: usize,
    /// Destination stride of the shared route LUT (the mesh node count
    /// for the plain mesh; the PM count for the hybrid host).
    n: usize,
    inputs: Vec<[FlitFifo; 5]>,
    /// Output port assigned to the packet at the front of each input,
    /// held from head to tail.
    route_of: Vec<[Option<(PacketRef, usize)>; 5]>,
    /// Input currently connected to each output.
    conn: Vec<[Option<usize>; 5]>,
    /// Round-robin arbitration pointer per output.
    rr: Vec<[usize; 5]>,
    /// "Next"-cycle stop/go written by [`latch`](Self::latch); gathered
    /// into the network's shared "current" buffer between cycles.
    go_out: Vec<bool>,
    /// Outgoing-link table, one `[dir]` block per node; `None` off the
    /// mesh edge.
    links: Vec<[Option<LinkInfo>; 4]>,
    out_req: Vec<PacketQueue>,
    out_resp: Vec<PacketQueue>,
    drain: Vec<DrainState>,
    assembler: Vec<Assembler>,
    /// Active-node worklist: false only while the node is provably
    /// quiescent, letting compute skip idle nodes under light load.
    active: Vec<bool>,
    /// Compute-phase output: link transfers, concatenated in node order.
    pub sends: Vec<Send>,
    /// Compute-phase output: deliveries/drops, in node order.
    pub ops: Vec<CommitOp>,
    /// Flit movements observed during compute (watchdog food).
    pub moved: u64,
    /// Transfer opportunities blocked on downstream stop (tracing).
    pub blocked: u64,
}

impl MeshShard {
    /// Builds the shard covering nodes `lo..lo + len` of `topo`, with
    /// the route-LUT destination stride equal to the node count (the
    /// plain mesh case, where destinations are mesh nodes).
    pub fn new(
        lo: usize,
        len: usize,
        topo: &MeshTopology,
        buffer_flits: usize,
        out_queue_packets: usize,
    ) -> Self {
        Self::with_stride(
            lo,
            len,
            topo,
            topo.num_pms() as usize,
            buffer_flits,
            out_queue_packets,
        )
    }

    /// Like [`new`](Self::new) with an explicit route-LUT destination
    /// stride: the shared LUT is indexed `node * stride + dst`, so a
    /// host with more destinations than mesh nodes (the hybrid network
    /// routes per *PM*, several of which share one mesh router) passes
    /// its destination count here.
    pub fn with_stride(
        lo: usize,
        len: usize,
        topo: &MeshTopology,
        stride: usize,
        buffer_flits: usize,
        out_queue_packets: usize,
    ) -> Self {
        let n = stride;
        let links = (0..len)
            .map(|l| {
                let node = NodeId::new((lo + l) as u32);
                std::array::from_fn(|d| {
                    let dir = Direction::ALL[d];
                    topo.neighbor(node, dir).map(|nb| {
                        let (row, col) = topo.coords(nb);
                        LinkInfo {
                            to_node: nb,
                            to_sh: row,
                            to_l: col,
                            to_port: dir.opposite().port() as u32,
                            go_idx: nb.index() * 5 + dir.opposite().port(),
                            link_id: node.raw() * 4 + dir.port() as u32,
                        }
                    })
                })
            })
            .collect();
        MeshShard {
            lo,
            len,
            n,
            inputs: (0..len)
                .map(|_| std::array::from_fn(|_| FlitFifo::new(buffer_flits)))
                .collect(),
            route_of: vec![[None; 5]; len],
            conn: vec![[None; 5]; len],
            rr: vec![[0; 5]; len],
            go_out: vec![true; len * 5],
            links,
            out_req: (0..len)
                .map(|_| PacketQueue::new(out_queue_packets))
                .collect(),
            out_resp: (0..len)
                .map(|_| PacketQueue::new(out_queue_packets))
                .collect(),
            drain: vec![DrainState::idle(); len],
            assembler: vec![Assembler::new(); len],
            active: vec![true; len],
            sends: Vec::new(),
            ops: Vec::new(),
            moved: 0,
            blocked: 0,
        }
    }

    /// First global node id in this shard.
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// The latched next-cycle stop/go slice (`len * 5` entries).
    pub fn go_out(&self) -> &[bool] {
        &self.go_out
    }

    /// Per-node activity flags (snapshot access).
    pub fn active(&self) -> &[bool] {
        &self.active
    }

    /// Mutable form of [`active`](Self::active) (snapshot restore).
    pub fn active_mut(&mut self) -> &mut [bool] {
        &mut self.active
    }

    /// Total flits across all input buffers (occupancy gauge probe).
    pub fn occupancy(&self) -> usize {
        self.inputs.iter().flatten().map(FlitFifo::len).sum()
    }

    /// Whether node `l`'s PM-side output queue of `class` has room.
    pub fn can_accept(&self, l: usize, class: QueueClass) -> bool {
        match class {
            QueueClass::Request => self.out_req[l].can_accept(),
            QueueClass::Response => self.out_resp[l].can_accept(),
        }
    }

    /// Enqueues an outgoing packet at node `l`'s PM boundary.
    pub fn enqueue(&mut self, l: usize, class: QueueClass, r: PacketRef) {
        match class {
            QueueClass::Request => self.out_req[l].push(r),
            QueueClass::Response => self.out_resp[l].push(r),
        }
        self.active[l] = true;
    }

    /// Applies one arriving link flit at commit time and re-activates
    /// the node.
    pub fn deliver_flit(&mut self, l: usize, port: usize, flit: Flit, now: u64) {
        self.inputs[l][port].push(flit, now);
        self.active[l] = true;
    }

    /// The routing decision at global node `node` for a packet to
    /// `dst`.
    ///
    /// Fault-free this is plain e-cube, served from the shared LUT.
    /// With faults installed the dimension order degrades gracefully:
    /// prefer the X direction, fall back to the Y direction (a YX
    /// variant) when the X-side link or neighbour is unusable, and
    /// only when every required direction leads to a *dead* router
    /// give up with [`DROP`]. A direction whose neighbour is alive but
    /// whose link is merely down transiently is kept as a last resort
    /// — the packet stalls until the link returns rather than being
    /// dropped.
    fn route(
        n: usize,
        node: NodeId,
        topo: &MeshTopology,
        fc: &FaultCtx,
        route_lut: &[u8],
        dst: NodeId,
    ) -> usize {
        if fc.inj.is_none() {
            // Fault-free e-cube is a pure function of (node, dst):
            // served from the shared table built at construction.
            return route_lut[node.index() * n + dst.index()] as usize;
        }
        let (cr, cc) = topo.coords(node);
        let (dr, dc) = topo.coords(dst);
        if cr == dr && cc == dc {
            return LOCAL;
        }
        let x = if cc < dc {
            Some(Direction::East)
        } else if cc > dc {
            Some(Direction::West)
        } else {
            None
        };
        let y = if cr < dr {
            Some(Direction::South)
        } else if cr > dr {
            Some(Direction::North)
        } else {
            None
        };
        let candidates = [x, y];
        let healthy = candidates.iter().flatten().find(|&&dir| {
            let nb = topo.neighbor(node, dir).expect("candidate stays on-mesh");
            !fc.router_dead(nb) && fc.link_up(node, dir)
        });
        if let Some(&dir) = healthy {
            return dir.port();
        }
        // No fully healthy direction: wait on a transiently-down link
        // toward a live neighbour if one exists.
        let waitable = candidates.iter().flatten().find(|&&dir| {
            let nb = topo.neighbor(node, dir).expect("candidate stays on-mesh");
            !fc.router_dead(nb)
        });
        match waitable {
            Some(&dir) => dir.port(),
            None => DROP,
        }
    }

    /// The parallel compute phase: steps every active node in this
    /// shard, writing shared-state effects into `sends`/`ops` and
    /// everything else into shard-local arrays. `go` is the shared
    /// previous-cycle stop/go buffer; `store` is read-only here (all
    /// removals are deferred to commit).
    ///
    /// The per-node router step is written inline against slices carved
    /// once per call (`&mut field[..len]`): the compiler can then prove
    /// every `[l]` access in bounds, and the port loops index
    /// fixed-size `[T; 5]` blocks — the same check-free codegen the old
    /// one-struct-per-router layout got, without giving up the
    /// per-field arrays.
    pub fn compute(
        &mut self,
        now: u64,
        topo: &MeshTopology,
        go: &[bool],
        route_lut: &[u8],
        store: &PacketStore,
        fc: &FaultCtx,
    ) {
        self.sends.clear();
        self.ops.clear();
        let len = self.len;
        let lo = self.lo;
        let n = self.n;
        let inputs = &mut self.inputs[..len];
        let route_of = &mut self.route_of[..len];
        let conn = &mut self.conn[..len];
        let rr = &mut self.rr[..len];
        let links = &self.links[..len];
        let drains = &mut self.drain[..len];
        let out_req = &mut self.out_req[..len];
        let out_resp = &mut self.out_resp[..len];
        let assemblers = &mut self.assembler[..len];
        let active = &mut self.active[..len];
        let sends = &mut self.sends;
        let ops = &mut self.ops;
        let mut moved = 0u64;
        let mut blocked = 0u64;
        for l in 0..len {
            // Skip provably-idle nodes; a skipped step is a no-op by
            // construction (see the quiescence check below), so the
            // cycle stream is identical to stepping everything.
            if !active[l] {
                continue;
            }
            let node = NodeId::new((lo + l) as u32);
            let inp = &mut inputs[l];
            let ro = &mut route_of[l];
            let cn = &mut conn[l];
            let rrn = &mut rr[l];
            let lks = &links[l];
            let drain = &mut drains[l];

            // 1. PM injection: serialize queued packets (responses
            //    first) into the local input buffer at one flit per
            //    cycle.
            if !drain.is_active() {
                let next = if !out_resp[l].is_empty() {
                    out_resp[l].pop()
                } else {
                    out_req[l].pop()
                };
                if let Some(r) = next {
                    drain.begin(r, store.get(r).flits);
                }
            }
            if drain.is_active() && inp[LOCAL].space_latched() {
                let flit = drain.emit();
                inp[LOCAL].push(flit, now);
                moved += 1;
            }

            // 2. Route computation for new head flits at input fronts.
            for i in 0..5 {
                if let Some(flit) = inp[i].front_ready(now) {
                    let stale = ro[i].is_none_or(|(r, _)| r != flit.packet);
                    if stale {
                        debug_assert!(flit.is_head(), "mid-packet flit without a route");
                        let dst = store.get(flit.packet).dst;
                        let port = Self::route(n, node, topo, fc, route_lut, dst);
                        ro[i] = Some((flit.packet, port));
                    }
                }
            }

            // Stages 3-5 only ever act on an input holding a routed
            // packet (`conn` can outlive a head only until its tail,
            // which also clears `route_of`), so a node with no routes
            // left skips straight to the quiescence check.
            if ro.iter().any(Option::is_some) {
                // 3. Round-robin arbitration for free outputs.
                for o in 0..5 {
                    if cn[o].is_some() {
                        continue;
                    }
                    for k in 0..5 {
                        let i = (rrn[o] + k) % 5;
                        if matches!(ro[i], Some((_, port)) if port == o) {
                            cn[o] = Some(i);
                            rrn[o] = (i + 1) % 5;
                            break;
                        }
                    }
                }

                // 4. Transfers: one flit per connected output, gated by
                //    the downstream buffer's registered stop/go; the
                //    local output ejects into the always-ready PM.
                for o in 0..5 {
                    let Some(i) = cn[o] else { continue };
                    if o == LOCAL {
                        if let Some(flit) = inp[i].pop_ready(now) {
                            moved += 1;
                            if flit.is_tail {
                                cn[o] = None;
                                ro[i] = None;
                            }
                            if let Some(done) = assemblers[l].push(flit) {
                                ops.push(if fc.is_corrupt(done.slot()) {
                                    CommitOp::Drop {
                                        packet: done,
                                        reason: DropReason::Corrupted,
                                    }
                                } else {
                                    CommitOp::Deliver { node, packet: done }
                                });
                            }
                        }
                    } else {
                        let link = lks[o].expect("e-cube never routes off the mesh edge");
                        if go[link.go_idx] && fc.link_up_id(link.link_id) {
                            if let Some(flit) = inp[i].pop_ready(now) {
                                if flit.is_tail {
                                    cn[o] = None;
                                    ro[i] = None;
                                }
                                sends.push(Send {
                                    to_node: link.to_node.raw(),
                                    to_sh: link.to_sh,
                                    to_l: link.to_l,
                                    to_port: link.to_port,
                                    flit,
                                });
                            }
                        } else if inp[i].front_ready(now).is_some() {
                            blocked += 1;
                        }
                    }
                }

                // 5. Sink packets routed to the drop port: no usable
                //    direction remained, so their flits are consumed in
                //    place and the packet is accounted as an explicit
                //    drop at the tail.
                for i in 0..5 {
                    if !matches!(ro[i], Some((_, DROP))) {
                        continue;
                    }
                    if let Some(flit) = inp[i].pop_ready(now) {
                        moved += 1;
                        if flit.is_tail {
                            ro[i] = None;
                            ops.push(CommitOp::Drop {
                                packet: flit.packet,
                                reason: DropReason::DeadInterface,
                            });
                        }
                    }
                }
            }

            // Deactivate when a further step is provably a no-op: no
            // buffered flits, no packet mid-serialization, nothing
            // queued at the PM boundary, and no arbitration state that
            // could still drive a transfer. `route_of`/`conn` must be
            // clear, not just the inputs — arbitration connects outputs
            // from `route_of` without consulting buffer occupancy, so
            // leftover routes would change arbitration timing.
            if !drain.is_active()
                && out_req[l].is_empty()
                && out_resp[l].is_empty()
                && inp.iter().all(FlitFifo::is_empty)
                && ro.iter().all(Option::is_none)
                && cn.iter().all(Option::is_none)
            {
                active[l] = false;
            }
        }
        self.moved = moved;
        self.blocked = blocked;
    }

    /// The parallel latch phase: registers every input buffer's
    /// occupancy and writes next-cycle stop/go into `go_out`.
    pub fn latch(&mut self) {
        for (block, go) in self.inputs.iter_mut().zip(self.go_out.chunks_exact_mut(5)) {
            for (input, g) in block.iter_mut().zip(go.iter_mut()) {
                input.latch();
                *g = input.space_latched();
            }
        }
    }

    /// Serializes node `l`'s state, byte-compatible with the previous
    /// per-router layout (5 FIFOs, route/conn/rr port arrays, the two
    /// PM queues, drain, assembler).
    pub fn save_node_state(&self, l: usize, w: &mut SnapWriter) {
        for p in 0..5 {
            self.inputs[l][p].save_state(w);
        }
        for p in 0..5 {
            self.route_of[l][p].save(w);
        }
        for p in 0..5 {
            self.conn[l][p].save(w);
        }
        for p in 0..5 {
            self.rr[l][p].save(w);
        }
        self.out_req[l].save_state(w);
        self.out_resp[l].save_state(w);
        self.drain[l].save(w);
        self.assembler[l].save(w);
    }

    /// Restores node `l`'s state written by
    /// [`save_node_state`](Self::save_node_state).
    pub fn restore_node_state(
        &mut self,
        l: usize,
        r: &mut SnapReader<'_>,
    ) -> Result<(), SnapError> {
        for p in 0..5 {
            self.inputs[l][p].restore_state(r)?;
        }
        for p in 0..5 {
            self.route_of[l][p] = Snapshot::load(r)?;
        }
        for p in 0..5 {
            self.conn[l][p] = Snapshot::load(r)?;
        }
        for p in 0..5 {
            self.rr[l][p] = Snapshot::load(r)?;
        }
        self.out_req[l].restore_state(r)?;
        self.out_resp[l].restore_state(r)?;
        self.drain[l] = DrainState::load(r)?;
        self.assembler[l] = Assembler::load(r)?;
        Ok(())
    }
}
