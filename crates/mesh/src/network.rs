//! The 2-D mesh network simulator.

use ringmesh_engine::{KernelPool, StallError, Watchdog};
use ringmesh_faults::{
    ConservationError, ConservationLedger, DropReason, FaultDomain, FaultInjector,
};
use ringmesh_net::{
    Interconnect, LevelUtil, NodeId, Packet, PacketStore, QueueClass, UtilizationReport,
};
use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotState};
use ringmesh_trace::{Counter, EventKind, Gauge, Heatmap, HeatmapId, Probe, TraceLoc, Tracer};

use crate::shard::{CommitOp, FaultCtx, MeshShard, Send, LOCAL};
use crate::topology::MeshTopology;
use crate::MeshConfig;

/// A flit-level, cycle-accurate 2-D bi-directional wormhole mesh.
///
/// Implements [`Interconnect`]; drive it with the `ringmesh-workload`
/// crate or directly as in the example below.
///
/// # Example
///
/// ```
/// use ringmesh_net::{CacheLineSize, Interconnect, NodeId, Packet, PacketKind, TxnId};
/// use ringmesh_mesh::{MeshConfig, MeshNetwork, MeshTopology};
///
/// let topo = MeshTopology::new(3);
/// let cfg = MeshConfig::new(CacheLineSize::B32);
/// let mut net = MeshNetwork::new(topo, cfg.clone());
/// let kind = PacketKind::ReadReq;
/// net.inject(NodeId::new(0), Packet {
///     txn: TxnId::new(1), kind,
///     src: NodeId::new(0), dst: NodeId::new(8),
///     flits: cfg.format.flits(kind, cfg.cache_line),
///     injected_at: 0,
/// });
/// let mut delivered = Vec::new();
/// while delivered.is_empty() {
///     net.step(&mut delivered).unwrap();
/// }
/// assert_eq!(delivered[0].0, NodeId::new(8));
/// ```
#[derive(Debug)]
pub struct MeshNetwork {
    topo: MeshTopology,
    cfg: MeshConfig,
    store: PacketStore,
    /// Router state in structure-of-arrays layout, one shard per mesh
    /// row (see [`MeshShard`]); the shard is the unit of parallel work
    /// in the compute and latch phases. The partition is fixed at
    /// construction and never depends on the thread count.
    shards: Vec<MeshShard>,
    /// Shared fault-free e-cube table, `node * n + dst` (one flat copy
    /// replacing the old per-router `Vec<u8>`s).
    route_lut: Vec<u8>,
    /// Registered stop/go per router input buffer (`node*5 + port`) —
    /// the "current" half of the double-buffered cycle state, read by
    /// every shard during compute; the "next" half is each shard's
    /// `go_out`, gathered back here after the latch phase.
    go: Vec<bool>,
    sends: Vec<Send>,
    /// Intra-cycle worker pool; serial (inline) by default.
    kernel: KernelPool,
    cycle: u64,
    link_flits: u64,
    reset_cycle: u64,
    watchdog: Watchdog,
    /// Observability sink; disabled (free) unless installed via
    /// [`Interconnect::set_tracer`].
    tracer: Tracer,
    /// Link-utilization heatmap handle (rows × cols = the mesh grid;
    /// each cell counts flits arriving at that router), registered when
    /// a recording tracer is installed.
    link_heat: Option<HeatmapId>,
    /// Fault source; absent in fault-free runs, in which case every
    /// fault query answers "healthy" and behaviour is unchanged.
    faults: Option<FaultInjector>,
    /// Packet-conservation ledger (per-slot tracking on under
    /// `debug_assertions` or the release `--check` pass).
    ledger: ConservationLedger,
    /// Corruption marks by packet-store slot, rolled at injection.
    corrupt: Vec<bool>,
    /// Per-cycle scratch list of dropped packets.
    dropped: Vec<(Packet, DropReason)>,
}

impl MeshNetwork {
    /// Builds the network for `topo` under `cfg`.
    pub fn new(topo: MeshTopology, cfg: MeshConfig) -> Self {
        let n = topo.num_pms() as usize;
        let side = topo.side() as usize;
        let mut route_lut = vec![0u8; n * n];
        for node in 0..n {
            for dst in 0..n {
                route_lut[node * n + dst] =
                    match topo.ecube(NodeId::new(node as u32), NodeId::new(dst as u32)) {
                        Some(dir) => dir.port() as u8,
                        None => LOCAL as u8,
                    };
            }
        }
        let shards = (0..side)
            .map(|row| {
                MeshShard::new(
                    row * side,
                    side,
                    &topo,
                    cfg.buffer_flits(),
                    cfg.out_queue_packets,
                )
            })
            .collect();
        let horizon = cfg.watchdog_horizon;
        MeshNetwork {
            topo,
            cfg,
            store: PacketStore::new(),
            shards,
            route_lut,
            go: vec![true; n * 5],
            sends: Vec::new(),
            kernel: KernelPool::serial(),
            cycle: 0,
            link_flits: 0,
            reset_cycle: 0,
            watchdog: Watchdog::new(horizon),
            tracer: Tracer::off(),
            link_heat: None,
            faults: None,
            ledger: ConservationLedger::new(cfg!(debug_assertions)),
            corrupt: Vec::new(),
            dropped: Vec::new(),
        }
    }

    /// The mesh topology.
    pub fn topology(&self) -> &MeshTopology {
        &self.topo
    }

    /// `(shard index, local node index)` of a global node id. Shards
    /// are one mesh row each, so this is a divmod by the side.
    fn shard_slot(&self, node: usize) -> (usize, usize) {
        let side = self.topo.side() as usize;
        (node / side, node % side)
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// Tracing for one stepped cycle: link-transfer counts and heatmap
    /// bumps, Hop events for sampled head flits, delivery counts and
    /// Eject events, blocked-cycle counts, and the occupancy gauges.
    /// Only called while the tracer is enabled.
    fn trace_cycle(&mut self, now: u64, blocked: u64, newly: &[(NodeId, Packet)]) {
        self.tracer
            .count(Counter::FlitsForwarded, self.sends.len() as u64);
        self.tracer.count(Counter::BlockedCycles, blocked);
        for i in 0..self.sends.len() {
            let s = self.sends[i];
            let (row, col) = self.topo.coords(NodeId::new(s.to_node));
            if let Some(id) = self.link_heat {
                self.tracer.heatmap(id, row as usize, col as usize, 1);
            }
            if s.flit.is_head() {
                let txn = self.store.get(s.flit.packet).txn.raw();
                self.tracer
                    .event(txn, now, TraceLoc::MeshNode { row, col }, EventKind::Hop);
            }
        }
        if !newly.is_empty() {
            self.tracer
                .count(Counter::PacketsDelivered, newly.len() as u64);
            for (pm, pkt) in newly {
                let (row, col) = self.topo.coords(*pm);
                self.tracer.event(
                    pkt.txn.raw(),
                    now,
                    TraceLoc::MeshNode { row, col },
                    EventKind::Eject,
                );
            }
        }
        // Split-borrow dance: probe reads &self while writing the
        // tracer, so temporarily take the tracer out.
        let mut t = std::mem::take(&mut self.tracer);
        self.probe(&mut t);
        self.tracer = t;
    }
}

impl Probe for MeshNetwork {
    /// Publishes occupancy gauges: flits in router input buffers and
    /// live packets.
    fn probe(&self, t: &mut Tracer) {
        let inputs: usize = self.shards.iter().map(MeshShard::occupancy).sum();
        t.gauge(Gauge::MeshInputOccupancy, inputs as f64);
        t.gauge(Gauge::InFlightPackets, self.store.live() as f64);
    }
}

impl Interconnect for MeshNetwork {
    fn num_pms(&self) -> usize {
        self.topo.num_pms() as usize
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn can_inject(&self, pm: NodeId, class: QueueClass) -> bool {
        let (sh, l) = self.shard_slot(pm.index());
        self.shards[sh].can_accept(l, class)
    }

    fn set_kernel_threads(&mut self, threads: usize) {
        // More threads than shards cannot help (a shard is the unit of
        // work), so clamp — this also keeps worker counts modest for
        // small meshes.
        let threads = threads.clamp(1, self.shards.len().max(1));
        if threads != self.kernel.threads() {
            self.kernel = KernelPool::new(threads);
        }
    }

    fn kernel_threads(&self) -> usize {
        self.kernel.threads()
    }

    fn inject(&mut self, pm: NodeId, packet: Packet) {
        assert_eq!(packet.src, pm, "packet injected at the wrong PM");
        assert_ne!(packet.src, packet.dst, "local accesses bypass the network");
        assert!(
            packet.dst.index() < self.num_pms(),
            "destination {} out of range",
            packet.dst
        );
        let class = QueueClass::of(packet.kind);
        if let Some(f) = &mut self.faults {
            // Fail fast at injection when the source or destination
            // router is dead: the packet could never be delivered.
            if f.node_dead(pm.raw()) || f.node_dead(packet.dst.raw()) {
                f.record_drop(DropReason::Unreachable);
                self.ledger.refuse();
                if self.tracer.is_enabled() {
                    self.tracer.count(Counter::PacketsDropped, 1);
                }
                return;
            }
        }
        if self.tracer.is_enabled() {
            let (row, col) = self.topo.coords(pm);
            self.tracer.count(Counter::PacketsInjected, 1);
            self.tracer.event(
                packet.txn.raw(),
                self.cycle,
                TraceLoc::MeshNode { row, col },
                EventKind::Inject {
                    src: packet.src.index() as u32,
                    dst: packet.dst.index() as u32,
                    flits: packet.flits,
                },
            );
        }
        let r = self.store.insert(packet);
        self.ledger.inject(r.slot());
        if let Some(f) = &mut self.faults {
            // Roll the corruption coin now; slots are reused, so the
            // mark must be (re)written on every insert.
            let bad = f.roll_corrupt();
            if self.corrupt.len() <= r.slot() {
                self.corrupt.resize(r.slot() + 1, false);
            }
            self.corrupt[r.slot()] = bad;
        }
        let (sh, l) = self.shard_slot(pm.index());
        self.shards[sh].enqueue(l, class, r);
    }

    fn step(&mut self, delivered: &mut Vec<(NodeId, Packet)>) -> Result<(), StallError> {
        let now = self.cycle;
        let enabled = self.tracer.is_enabled();
        let mark = delivered.len();
        if enabled {
            self.tracer.cycle(now);
        }
        if let Some(f) = &mut self.faults {
            f.advance(now);
        }
        let mut moved = 0u64;
        let mut blocked = 0u64;
        let mut nsends = 0u64;
        if self.kernel.threads() == 1 && !enabled {
            // Fused serial path: with one kernel thread the deferred
            // compute→commit split only costs (buffer the effects, walk
            // them again), so apply each shard's effects immediately
            // after its own compute. Byte-identical to the phased path:
            // shards still compute and commit in ascending shard order,
            // so the delivered stream, ledger and packet-store slot
            // reuse are unchanged; and a flit committed onto a link
            // before a later shard's compute is pushed at cycle `now`,
            // which FIFO freshness keeps invisible to that compute —
            // its only observable effect, the receiving node's `active`
            // flag and non-empty input, matches what `deliver_flit`
            // after compute would have left (pinned by the
            // `parallel_determinism` suite).
            for si in 0..self.shards.len() {
                {
                    let fc = FaultCtx {
                        inj: self.faults.as_ref(),
                        corrupt: &self.corrupt,
                        now,
                    };
                    self.shards[si].compute(
                        now,
                        &self.topo,
                        &self.go,
                        &self.route_lut,
                        &self.store,
                        &fc,
                    );
                }
                let ops = std::mem::take(&mut self.shards[si].ops);
                for &op in &ops {
                    match op {
                        CommitOp::Deliver { node, packet } => {
                            let slot = packet.slot();
                            let pkt = self.store.remove(packet);
                            self.ledger.complete(slot, false);
                            delivered.push((node, pkt));
                        }
                        CommitOp::Drop { packet, reason } => {
                            let slot = packet.slot();
                            let pkt = self.store.remove(packet);
                            self.ledger.complete(slot, true);
                            self.dropped.push((pkt, reason));
                        }
                    }
                }
                self.shards[si].ops = ops;
                moved += self.shards[si].moved;
                blocked += self.shards[si].blocked;
                let sends = std::mem::take(&mut self.shards[si].sends);
                for &s in &sends {
                    self.shards[s.to_sh as usize].deliver_flit(
                        s.to_l as usize,
                        s.to_port as usize,
                        s.flit,
                        now,
                    );
                }
                nsends += sends.len() as u64;
                self.shards[si].sends = sends;
            }
        } else {
            // Phase 1 — compute, in parallel across shards. Every shard
            // reads only shared *previous-cycle* state (the registered
            // stop/go buffer, the packet store, the fault view) and
            // writes only its own arrays plus its `sends`/`ops` effect
            // buffers.
            {
                let fc = FaultCtx {
                    inj: self.faults.as_ref(),
                    corrupt: &self.corrupt,
                    now,
                };
                let topo = &self.topo;
                let go = &self.go;
                let route_lut = &self.route_lut;
                let store = &self.store;
                self.kernel.run_mut(&mut self.shards, |_, shard| {
                    shard.compute(now, topo, go, route_lut, store, &fc);
                });
            }
            // Phase 2 — commit, serial in shard order (= ascending node
            // order, the order the old serial loop produced these
            // effects): deliveries and drops first, so packet-store
            // slot reuse and the delivered stream stay byte-identical,
            // then the link transfers into destination buffers.
            self.sends.clear();
            for si in 0..self.shards.len() {
                for k in 0..self.shards[si].ops.len() {
                    match self.shards[si].ops[k] {
                        CommitOp::Deliver { node, packet } => {
                            let slot = packet.slot();
                            let pkt = self.store.remove(packet);
                            self.ledger.complete(slot, false);
                            delivered.push((node, pkt));
                        }
                        CommitOp::Drop { packet, reason } => {
                            let slot = packet.slot();
                            let pkt = self.store.remove(packet);
                            self.ledger.complete(slot, true);
                            self.dropped.push((pkt, reason));
                        }
                    }
                }
                moved += self.shards[si].moved;
                blocked += self.shards[si].blocked;
                // The concatenated send list is only needed for tracing
                // (heatmap bumps and Hop events); skip the copy
                // otherwise.
                if enabled {
                    self.sends.extend_from_slice(&self.shards[si].sends);
                }
            }
            // Link transfers, applied shard by shard. Each input FIFO
            // has exactly one upstream router, so at most one flit
            // arrives per FIFO per cycle and application order across
            // source shards cannot matter. Swapping each buffer out and
            // back (no copy) satisfies the borrow checker without
            // concatenating.
            for si in 0..self.shards.len() {
                let sends = std::mem::take(&mut self.shards[si].sends);
                for &s in &sends {
                    self.shards[s.to_sh as usize].deliver_flit(
                        s.to_l as usize,
                        s.to_port as usize,
                        s.flit,
                        now,
                    );
                }
                nsends += sends.len() as u64;
                self.shards[si].sends = sends;
            }
        }
        moved += nsends;
        self.link_flits += nsends;
        if !self.dropped.is_empty() {
            if enabled {
                self.tracer
                    .count(Counter::PacketsDropped, self.dropped.len() as u64);
            }
            if let Some(f) = &mut self.faults {
                for &(_, reason) in &self.dropped {
                    f.record_drop(reason);
                }
            }
            self.dropped.clear();
        }
        if enabled {
            self.trace_cycle(now, blocked, &delivered[mark..]);
        }
        // Phase 3 — latch, in parallel across shards: register each
        // input buffer and publish next-cycle stop/go into the shards'
        // `go_out` halves, then gather them into the shared buffer.
        self.kernel
            .run_mut(&mut self.shards, |_, shard| shard.latch());
        for shard in &self.shards {
            let b = shard.lo() * 5;
            let out = shard.go_out();
            self.go[b..b + out.len()].copy_from_slice(out);
        }
        #[cfg(debug_assertions)]
        {
            let (inj, del, drp) = self.ledger.counts();
            assert_eq!(inj, del + drp + self.store.live(), "conservation identity");
        }
        self.cycle += 1;
        self.watchdog.observe(self.cycle, moved, self.store.live());
        self.watchdog.check(self.cycle)
    }

    fn in_flight(&self) -> u64 {
        self.store.live()
    }

    fn utilization(&self) -> UtilizationReport {
        let cycles = self.cycle - self.reset_cycle;
        if cycles == 0 || self.topo.num_links() == 0 {
            return UtilizationReport::default();
        }
        let overall = self.link_flits as f64 / (self.topo.num_links() as u64 * cycles) as f64;
        UtilizationReport {
            overall,
            levels: vec![LevelUtil {
                label: "mesh links".to_string(),
                utilization: overall,
            }],
        }
    }

    fn reset_counters(&mut self) {
        self.link_flits = 0;
        self.reset_cycle = self.cycle;
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        if self.tracer.is_enabled() {
            let side = self.topo.side() as usize;
            self.link_heat = self.tracer.add_heatmap(Heatmap::new(
                "flits arriving per mesh router",
                "row",
                "col",
                side,
                side,
            ));
        }
    }

    fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        if self.tracer.is_enabled() {
            Some(&mut self.tracer)
        } else {
            None
        }
    }

    fn take_tracer(&mut self) -> Option<Tracer> {
        if self.tracer.is_enabled() {
            Some(std::mem::take(&mut self.tracer))
        } else {
            None
        }
    }

    fn fault_domain(&self) -> FaultDomain {
        FaultDomain {
            // Directed link `node*4 + port`; edge ports that lead off
            // the mesh are addressable but their events are no-ops.
            links: self.topo.num_pms() * 4,
            nodes: self.topo.num_pms(),
        }
    }

    fn set_faults(&mut self, injector: FaultInjector, check: bool) {
        self.faults = Some(injector);
        if check && !self.ledger.tracking() {
            self.ledger.set_tracking(true);
        }
    }

    fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    fn take_faults(&mut self) -> Option<FaultInjector> {
        self.faults.take()
    }

    fn pm_alive(&self, pm: NodeId) -> bool {
        self.faults.as_ref().is_none_or(|f| !f.node_dead(pm.raw()))
    }

    fn verify_conservation(&self) -> Result<(), ConservationError> {
        self.ledger.verify(self.store.live())
    }

    fn conservation_counts(&self) -> Option<(u64, u64, u64)> {
        Some(self.ledger.counts())
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        if self.faults.is_some() {
            return Err(SnapError::Mismatch(
                "checkpointing with fault injection installed is not supported".into(),
            ));
        }
        self.store.save(w);
        // Byte-compatible with the pre-SoA `Vec<Router>` layout: node
        // count, then each node's state in ascending node order, then
        // the activity flags as one length-prefixed vector.
        let n = self.num_pms();
        w.usize(n);
        for node in 0..n {
            let (sh, l) = self.shard_slot(node);
            self.shards[sh].save_node_state(l, w);
        }
        w.usize(n);
        for shard in &self.shards {
            for &a in shard.active() {
                w.bool(a);
            }
        }
        self.go.save(w);
        w.u64(self.cycle);
        w.u64(self.link_flits);
        w.u64(self.reset_cycle);
        self.watchdog.save_state(w);
        self.ledger.save_state(w);
        self.corrupt.save(w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if self.faults.is_some() {
            return Err(SnapError::Mismatch(
                "restoring into a network with fault injection installed is not supported".into(),
            ));
        }
        let mismatch = |what: &str, got: usize, want: usize| {
            SnapError::Mismatch(format!("{what}: snapshot has {got}, network has {want}"))
        };
        self.store = PacketStore::load(r)?;
        let n = self.num_pms();
        let n_routers = r.usize()?;
        if n_routers != n {
            return Err(mismatch("router count", n_routers, n));
        }
        for node in 0..n {
            let (sh, l) = self.shard_slot(node);
            self.shards[sh].restore_node_state(l, r)?;
        }
        let n_active = r.usize()?;
        if n_active != n {
            return Err(mismatch("router count", n_active, n));
        }
        for shard in &mut self.shards {
            for a in shard.active_mut() {
                *a = r.bool()?;
            }
        }
        let go: Vec<bool> = Snapshot::load(r)?;
        if go.len() != self.go.len() {
            return Err(mismatch("stop/go table size", go.len(), self.go.len()));
        }
        self.go = go;
        self.cycle = r.u64()?;
        self.link_flits = r.u64()?;
        self.reset_cycle = r.u64()?;
        self.watchdog.restore_state(r)?;
        self.ledger.restore_state(r)?;
        self.corrupt = Snapshot::load(r)?;
        self.sends.clear();
        self.dropped.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringmesh_net::{BufferRegime, CacheLineSize, PacketKind, TxnId};

    fn packet(cfg: &MeshConfig, txn: u64, kind: PacketKind, src: u32, dst: u32) -> Packet {
        Packet {
            txn: TxnId::new(txn),
            kind,
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            flits: cfg.format.flits(kind, cfg.cache_line),
            injected_at: 0,
        }
    }

    fn fly(net: &mut MeshNetwork, max: u64) -> (u64, Vec<(NodeId, Packet)>) {
        let mut delivered = Vec::new();
        for c in 1..=max {
            net.step(&mut delivered).unwrap();
            if !delivered.is_empty() {
                return (c, delivered);
            }
        }
        panic!("no delivery within {max} cycles");
    }

    #[test]
    fn zero_load_latency_matches_hop_prediction() {
        // One-way delivery: 1 (inject into local buffer) + hops (link
        // traversals) + 1 (ejection) + flits-1 (serialization).
        let cfg = MeshConfig::new(CacheLineSize::B32);
        for (src, dst) in [(0u32, 1u32), (0, 8), (4, 2), (8, 0)] {
            let mut net = MeshNetwork::new(MeshTopology::new(3), cfg.clone());
            let p = packet(&cfg, 1, PacketKind::ReadReq, src, dst);
            let flits = u64::from(p.flits);
            net.inject(NodeId::new(src), p);
            let (cycles, got) = fly(&mut net, 200);
            let hops = net.topology().manhattan(NodeId::new(src), NodeId::new(dst)) as u64;
            assert_eq!(cycles, 1 + hops + 1 + flits - 1, "src={src} dst={dst}");
            assert_eq!(got[0].0, NodeId::new(dst));
        }
    }

    #[test]
    fn all_pairs_delivered() {
        let cfg = MeshConfig::new(CacheLineSize::B16);
        for side in [2u32, 3, 4] {
            let p = side * side;
            let mut net = MeshNetwork::new(MeshTopology::new(side), cfg.clone());
            let mut expected = 0u32;
            let mut txn = 0;
            for s in 0..p {
                for d in 0..p {
                    if s != d && net.can_inject(NodeId::new(s), QueueClass::Request) {
                        txn += 1;
                        net.inject(NodeId::new(s), packet(&cfg, txn, PacketKind::ReadReq, s, d));
                        expected += 1;
                    }
                }
            }
            let mut out = Vec::new();
            for _ in 0..10_000 {
                net.step(&mut out).unwrap();
                if out.len() as u32 >= expected {
                    break;
                }
            }
            assert_eq!(out.len() as u32, expected, "side={side}");
            assert_eq!(net.in_flight(), 0);
        }
    }

    #[test]
    fn one_flit_buffers_still_deliver() {
        let cfg = MeshConfig::new(CacheLineSize::B128).with_buffers(BufferRegime::OneFlit);
        let mut net = MeshNetwork::new(MeshTopology::new(4), cfg.clone());
        // A long worm (36 flits) across the full diagonal with 1-flit
        // buffers spans many routers at once.
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadResp, 0, 15));
        let (cycles, got) = fly(&mut net, 500);
        assert_eq!(got[0].1.flits, 36);
        // With 1-flit buffers each flit advances behind the head; total
        // is still hops-dominated + serialization, but stop/go bubbles
        // make it larger than the deep-buffer bound.
        assert!(cycles >= 1 + 6 + 1 + 35, "cycles={cycles}");
    }

    #[test]
    fn cl_buffers_match_deep_buffer_bound() {
        let cfg = MeshConfig::new(CacheLineSize::B128).with_buffers(BufferRegime::CacheLine);
        let mut net = MeshNetwork::new(MeshTopology::new(4), cfg.clone());
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadResp, 0, 15));
        let (cycles, _) = fly(&mut net, 500);
        assert_eq!(cycles, 1 + 6 + 1 + 35);
    }

    #[test]
    fn response_beats_request_at_injection() {
        let cfg = MeshConfig::new(CacheLineSize::B32);
        let mut net = MeshNetwork::new(MeshTopology::new(2), cfg.clone());
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 3));
        net.inject(NodeId::new(0), packet(&cfg, 2, PacketKind::WriteResp, 0, 3));
        let mut out = Vec::new();
        for _ in 0..100 {
            net.step(&mut out).unwrap();
            if out.len() == 2 {
                break;
            }
        }
        assert_eq!(out[0].1.txn, TxnId::new(2), "response first");
        assert_eq!(out[1].1.txn, TxnId::new(1));
    }

    #[test]
    fn contention_on_shared_column_is_serialized_fairly() {
        // Two packets from (0,0) and (2,0) both to (1,2): they share the
        // column-2 approach into the destination. Both must arrive.
        let cfg = MeshConfig::new(CacheLineSize::B64);
        let mut net = MeshNetwork::new(MeshTopology::new(3), cfg.clone());
        let dst = 5; // (1,2)
        net.inject(
            NodeId::new(0),
            packet(&cfg, 1, PacketKind::ReadResp, 0, dst),
        );
        net.inject(
            NodeId::new(6),
            packet(&cfg, 2, PacketKind::ReadResp, 6, dst),
        );
        let mut out = Vec::new();
        for _ in 0..500 {
            net.step(&mut out).unwrap();
            if out.len() == 2 {
                break;
            }
        }
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn utilization_accounts_inter_router_links_only() {
        let cfg = MeshConfig::new(CacheLineSize::B16);
        let mut net = MeshNetwork::new(MeshTopology::new(2), cfg.clone());
        // src->dst adjacent: request is 4 flits over exactly 1 link.
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 1));
        let mut out = Vec::new();
        let mut cycles = 0u64;
        while out.is_empty() {
            net.step(&mut out).unwrap();
            cycles += 1;
        }
        let util = net.utilization();
        let expected = 4.0 / (net.topology().num_links() as u64 * cycles) as f64;
        assert!((util.overall - expected).abs() < 1e-12);
    }

    #[test]
    fn watchdog_clean_under_saturation_burst() {
        // Flood a small mesh and make sure it drains without tripping
        // the watchdog (e-cube + guaranteed ejection is deadlock-free).
        let cfg = MeshConfig::new(CacheLineSize::B64);
        let mut net = MeshNetwork::new(MeshTopology::new(4), cfg.clone());
        let p = 16u32;
        let mut txn = 0u64;
        let mut out = Vec::new();
        for round in 0..50 {
            for s in 0..p {
                let d = (s + 1 + round % (p - 1)) % p;
                if d != s && net.can_inject(NodeId::new(s), QueueClass::Request) {
                    txn += 1;
                    net.inject(
                        NodeId::new(s),
                        packet(&cfg, txn, PacketKind::WriteReq, s, d),
                    );
                }
            }
            net.step(&mut out).unwrap();
        }
        for _ in 0..5_000 {
            net.step(&mut out).unwrap();
            if net.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(net.in_flight(), 0, "mesh must drain");
        assert_eq!(out.len() as u64, txn);
    }

    use ringmesh_faults::{FaultEvent, FaultKind, FaultSchedule};

    fn install(net: &mut MeshNetwork, events: Vec<FaultEvent>, corrupt: f64) {
        let schedule = FaultSchedule::from_events(7, corrupt, events);
        let domain = net.fault_domain();
        net.set_faults(FaultInjector::new(&schedule, domain), true);
    }

    #[test]
    fn dead_router_is_routed_around() {
        // 3x3 mesh, kill node 1 (0,1). Plain e-cube 0 -> 5 goes
        // 0,1,2,5 straight through the dead router; the YX fallback at
        // node 0 takes South instead and detours 0,3,4,5. Routing stays
        // minimal, so the detour must not cost extra hops.
        let cfg = MeshConfig::new(CacheLineSize::B32);
        let mut net = MeshNetwork::new(MeshTopology::new(3), cfg.clone());
        install(
            &mut net,
            vec![FaultEvent {
                at: 0,
                kind: FaultKind::NodeDead { node: 1 },
            }],
            0.0,
        );
        let mut out = Vec::new();
        net.step(&mut out).unwrap();
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 5));
        for _ in 0..300 {
            net.step(&mut out).unwrap();
            if !out.is_empty() {
                break;
            }
        }
        assert_eq!(out.len(), 1, "detour must deliver around the dead router");
        assert_eq!(out[0].0, NodeId::new(5));
        net.verify_conservation().unwrap();
        assert_eq!(net.faults().unwrap().report().drops.total(), 0);
    }

    #[test]
    fn packet_to_dead_router_is_refused() {
        let cfg = MeshConfig::new(CacheLineSize::B32);
        let mut net = MeshNetwork::new(MeshTopology::new(3), cfg.clone());
        install(
            &mut net,
            vec![FaultEvent {
                at: 0,
                kind: FaultKind::NodeDead { node: 4 },
            }],
            0.0,
        );
        let mut out = Vec::new();
        net.step(&mut out).unwrap();
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 4));
        for _ in 0..100 {
            net.step(&mut out).unwrap();
        }
        assert!(out.is_empty());
        assert_eq!(net.in_flight(), 0);
        net.verify_conservation().unwrap();
        assert_eq!(net.faults().unwrap().report().drops.unreachable, 1);
    }

    #[test]
    fn corner_cut_off_by_dead_neighbors_drops_in_flight() {
        // Kill both neighbours of corner 8 — (1,2)=5 and (2,1)=7 — a
        // few cycles after a packet to 8 is already in flight: every
        // candidate direction at some router leads to a dead router, so
        // the packet is sunk mid-flight and accounted.
        let cfg = MeshConfig::new(CacheLineSize::B32);
        let mut net = MeshNetwork::new(MeshTopology::new(3), cfg.clone());
        install(
            &mut net,
            vec![
                FaultEvent {
                    at: 2,
                    kind: FaultKind::NodeDead { node: 5 },
                },
                FaultEvent {
                    at: 2,
                    kind: FaultKind::NodeDead { node: 7 },
                },
            ],
            0.0,
        );
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 8));
        let mut out = Vec::new();
        for _ in 0..300 {
            net.step(&mut out).unwrap();
            if net.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(net.in_flight(), 0, "sunk worm must fully drain");
        net.verify_conservation().unwrap();
        let report = net.faults().unwrap().report();
        assert_eq!(report.drops.total() as usize + out.len(), 1);
    }

    #[test]
    fn transient_link_down_delays_but_loses_nothing() {
        let cfg = MeshConfig::new(CacheLineSize::B32);
        let fly_with = |events: Vec<FaultEvent>| -> u64 {
            let mut net = MeshNetwork::new(MeshTopology::new(2), cfg.clone());
            install(&mut net, events, 0.0);
            net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 1));
            let mut out = Vec::new();
            let mut cycles = 0u64;
            while out.is_empty() {
                net.step(&mut out).unwrap();
                cycles += 1;
                assert!(cycles < 300, "packet lost behind a downed link");
            }
            net.verify_conservation().unwrap();
            cycles
        };
        let base = fly_with(Vec::new());
        // Node 0's East link is `0*4 + port(East)=1`. 0 -> 1 has no
        // alternative direction, so the packet waits out the outage.
        let slow = fly_with(vec![FaultEvent {
            at: 0,
            kind: FaultKind::LinkDown { link: 1, until: 40 },
        }]);
        assert!(slow >= 40, "delivery must wait out the outage: {slow}");
        assert!(base < slow);
    }

    #[test]
    fn corruption_drops_at_ejection() {
        let cfg = MeshConfig::new(CacheLineSize::B32);
        let mut net = MeshNetwork::new(MeshTopology::new(2), cfg.clone());
        install(&mut net, Vec::new(), 1.0);
        net.inject(NodeId::new(0), packet(&cfg, 1, PacketKind::ReadReq, 0, 3));
        let mut out = Vec::new();
        for _ in 0..100 {
            net.step(&mut out).unwrap();
            if net.in_flight() == 0 {
                break;
            }
        }
        assert!(out.is_empty(), "corrupted packet must be dropped");
        assert_eq!(net.in_flight(), 0);
        net.verify_conservation().unwrap();
        assert_eq!(net.faults().unwrap().report().drops.corrupted, 1);
    }
}

#[cfg(test)]
mod arbitration_tests {
    use super::*;
    use ringmesh_net::{CacheLineSize, PacketKind, TxnId};

    /// Two single-source flows contending for one output column must
    /// share it near-evenly (round-robin arbitration, §2.2).
    #[test]
    fn round_robin_shares_a_contended_output() {
        let cfg = MeshConfig::new(CacheLineSize::B16);
        let mut net = MeshNetwork::new(MeshTopology::new(3), cfg.clone());
        // Sources 0 (0,0) and 6 (2,0) both send to 5 (1,2): their
        // packets meet at router (1,2)'s north/south inputs... they
        // actually meet at column 2 via different rows, so contend at
        // the destination's ejection port instead: both e-cube routes
        // go east along their own rows then turn into column 2.
        let mut txn = 0u64;
        let mut delivered = Vec::new();
        let mut counts = [0u32; 2];
        for _ in 0..3_000 {
            for (i, src) in [0u32, 6].into_iter().enumerate() {
                if net.can_inject(NodeId::new(src), QueueClass::Request) {
                    txn += 1;
                    net.inject(
                        NodeId::new(src),
                        Packet {
                            txn: TxnId::new(txn * 2 + i as u64),
                            kind: PacketKind::WriteReq,
                            src: NodeId::new(src),
                            dst: NodeId::new(5),
                            flits: cfg.format.flits(PacketKind::WriteReq, cfg.cache_line),
                            injected_at: 0,
                        },
                    );
                }
            }
            delivered.clear();
            net.step(&mut delivered).unwrap();
            for (_, p) in &delivered {
                counts[(p.txn.raw() % 2) as usize] += 1;
            }
        }
        let total = counts[0] + counts[1];
        assert!(total > 100, "flows must make progress: {total}");
        let share = f64::from(counts[0]) / f64::from(total);
        assert!((share - 0.5).abs() < 0.1, "unfair split: {counts:?}");
    }

    /// The Interconnect trait stays object-safe (systems hold networks
    /// as `Box<dyn Interconnect>`).
    #[test]
    fn interconnect_is_object_safe() {
        let cfg = MeshConfig::new(CacheLineSize::B32);
        let boxed: Box<dyn Interconnect> = Box::new(MeshNetwork::new(MeshTopology::new(2), cfg));
        assert_eq!(boxed.num_pms(), 4);
        assert_eq!(boxed.cycle(), 0);
    }
}
