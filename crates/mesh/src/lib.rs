//! 2-D bi-directional mesh network model for the `ringmesh` simulator
//! (§2.2 and §4 of Ravindran & Stumm, HPCA 1997).
//!
//! Square wormhole-routed meshes with no end-around connections: each
//! node has a 5×5 crossbar router (four neighbours plus the local PM)
//! with input FIFO buffers of 1, 4 or cache-line-sized depth,
//! deterministic e-cube (dimension-order) routing and round-robin
//! output arbitration. Under the paper's constant-pin-count argument
//! the mesh channels are 32 bits wide (vs the ring's 128), so mesh
//! packets are four times longer in flits.
//!
//! * [`MeshTopology`]/[`Direction`] — grid coordinates, neighbours and
//!   the e-cube route function.
//! * [`MeshConfig`] — channel format and buffer regime.
//! * [`MeshNetwork`] — the cycle-accurate simulator; implements
//!   [`ringmesh_net::Interconnect`].
//!
//! # Example
//!
//! ```
//! use ringmesh_net::{BufferRegime, CacheLineSize, Interconnect};
//! use ringmesh_mesh::{MeshConfig, MeshNetwork, MeshTopology};
//!
//! let topo = MeshTopology::from_pms(121)?; // the paper's largest mesh
//! let cfg = MeshConfig::new(CacheLineSize::B64).with_buffers(BufferRegime::OneFlit);
//! let net = MeshNetwork::new(topo, cfg);
//! assert_eq!(net.num_pms(), 121);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod config;
mod network;
mod shard;
pub mod topology;

pub use builder::MeshBuilder;
pub use config::MeshConfig;
pub use network::MeshNetwork;
pub use topology::{Direction, MeshTopology};

/// Router-level kernels, re-exported for the hybrid ring-mesh network
/// (`ringmesh-hybrid`), whose global mesh runs the same sharded
/// three-phase stepping as [`MeshNetwork`]. Semver-exempt plumbing,
/// not a stable API — everything here mirrors internal structure.
#[doc(hidden)]
pub mod kernel {
    pub use crate::shard::{CommitOp, FaultCtx, MeshShard, Send, DROP, LOCAL};
}
