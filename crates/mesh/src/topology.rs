//! 2-D mesh topology and e-cube routing.
//!
//! The paper studies square, 2-dimensional, bi-directional meshes with
//! no end-around connections, routed with the deterministic e-cube
//! (dimension-order) algorithm: a packet first corrects its column (X),
//! then its row (Y). Dimension-order routing on a mesh is deadlock-free
//! without virtual channels, which is why the paper picked it.

use std::fmt;

use ringmesh_net::{ConfigError, NodeId};

/// A link direction out of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward row 0.
    North,
    /// Toward larger columns.
    East,
    /// Toward larger rows.
    South,
    /// Toward column 0.
    West,
}

impl Direction {
    /// All four directions in port order (N, E, S, W).
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The direction a flit sent this way arrives *from* at the
    /// neighbouring router.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }

    /// Port index (0..4) of this direction; port 4 is the local PM.
    pub fn port(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::East => 1,
            Direction::South => 2,
            Direction::West => 3,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
        };
        f.write_str(s)
    }
}

/// A square `side × side` mesh with row-major PM numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshTopology {
    side: u32,
}

impl MeshTopology {
    /// Creates a `side × side` mesh.
    ///
    /// # Panics
    ///
    /// Panics if `side` is zero; use [`try_new`](Self::try_new) for
    /// fallible construction from external input.
    pub fn new(side: u32) -> Self {
        Self::try_new(side).expect("mesh side must be positive")
    }

    /// Creates a `side × side` mesh, rejecting a zero side.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroMeshSide`] if `side` is zero.
    pub fn try_new(side: u32) -> Result<Self, ConfigError> {
        if side == 0 {
            return Err(ConfigError::ZeroMeshSide);
        }
        Ok(MeshTopology { side })
    }

    /// Creates the square mesh with `pms` processing modules.
    ///
    /// # Errors
    ///
    /// Returns an error if `pms` is not a perfect square.
    pub fn from_pms(pms: u32) -> Result<Self, ConfigError> {
        let side = (pms as f64).sqrt().round() as u32;
        if side * side != pms || pms == 0 {
            return Err(ConfigError::NonSquareMesh { pms });
        }
        Ok(MeshTopology { side })
    }

    /// Mesh side length.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Number of processing modules (`side²`).
    pub fn num_pms(&self) -> u32 {
        self.side * self.side
    }

    /// Number of directed inter-router links: `4·side·(side−1)`.
    pub fn num_links(&self) -> u32 {
        4 * self.side * (self.side - 1)
    }

    /// `(row, col)` of a node.
    pub fn coords(&self, node: NodeId) -> (u32, u32) {
        let i = node.raw();
        debug_assert!(i < self.num_pms());
        (i / self.side, i % self.side)
    }

    /// The node at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn node_at(&self, row: u32, col: u32) -> NodeId {
        assert!(
            row < self.side && col < self.side,
            "({row},{col}) outside mesh"
        );
        NodeId::new(row * self.side + col)
    }

    /// The neighbour of `node` in `dir`, if any (no end-around links).
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let (r, c) = self.coords(node);
        let (nr, nc) = match dir {
            Direction::North => (r.checked_sub(1)?, c),
            Direction::South => (r + 1, c),
            Direction::West => (r, c.checked_sub(1)?),
            Direction::East => (r, c + 1),
        };
        if nr < self.side && nc < self.side {
            Some(self.node_at(nr, nc))
        } else {
            None
        }
    }

    /// Manhattan (hop) distance between two nodes.
    pub fn manhattan(&self, a: NodeId, b: NodeId) -> u32 {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }

    /// The e-cube (X-then-Y) routing decision at `cur` for a packet
    /// destined to `dst`: the output direction, or `None` when the
    /// packet has arrived and ejects to the local PM.
    pub fn ecube(&self, cur: NodeId, dst: NodeId) -> Option<Direction> {
        let (cr, cc) = self.coords(cur);
        let (dr, dc) = self.coords(dst);
        if cc < dc {
            Some(Direction::East)
        } else if cc > dc {
            Some(Direction::West)
        } else if cr < dr {
            Some(Direction::South)
        } else if cr > dr {
            Some(Direction::North)
        } else {
            None
        }
    }

    /// The full e-cube path from `src` to `dst` (router-to-router hops).
    pub fn path(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut path = vec![src];
        let mut cur = src;
        while let Some(dir) = self.ecube(cur, dst) {
            cur = self
                .neighbor(cur, dir)
                .expect("e-cube never leaves the mesh");
            path.push(cur);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pms_accepts_squares_only() {
        assert_eq!(MeshTopology::from_pms(121).unwrap().side(), 11);
        assert_eq!(MeshTopology::from_pms(4).unwrap().side(), 2);
        assert!(MeshTopology::from_pms(12).is_err());
        assert!(MeshTopology::from_pms(0).is_err());
    }

    #[test]
    fn coords_round_trip() {
        let m = MeshTopology::new(3);
        for i in 0..9 {
            let n = NodeId::new(i);
            let (r, c) = m.coords(n);
            assert_eq!(m.node_at(r, c), n);
        }
    }

    #[test]
    fn neighbors_respect_edges() {
        let m = MeshTopology::new(3);
        // Corner 0 has no N/W neighbours.
        assert_eq!(m.neighbor(NodeId::new(0), Direction::North), None);
        assert_eq!(m.neighbor(NodeId::new(0), Direction::West), None);
        assert_eq!(
            m.neighbor(NodeId::new(0), Direction::East),
            Some(NodeId::new(1))
        );
        assert_eq!(
            m.neighbor(NodeId::new(0), Direction::South),
            Some(NodeId::new(3))
        );
        // Centre has all four.
        for d in Direction::ALL {
            assert!(m.neighbor(NodeId::new(4), d).is_some());
        }
    }

    #[test]
    fn opposite_is_involution() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn ecube_corrects_x_first() {
        let m = MeshTopology::new(4);
        // From (0,0) to (3,3): go East until column 3, then South.
        let path = m.path(NodeId::new(0), NodeId::new(15));
        let coords: Vec<(u32, u32)> = path.iter().map(|&n| m.coords(n)).collect();
        assert_eq!(
            coords,
            [(0, 0), (0, 1), (0, 2), (0, 3), (1, 3), (2, 3), (3, 3)]
        );
    }

    #[test]
    fn ecube_path_length_is_manhattan() {
        let m = MeshTopology::new(5);
        for a in 0..25u32 {
            for b in 0..25u32 {
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                assert_eq!(m.path(a, b).len() as u32 - 1, m.manhattan(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn ecube_terminates_at_destination() {
        let m = MeshTopology::new(3);
        assert_eq!(m.ecube(NodeId::new(4), NodeId::new(4)), None);
    }

    #[test]
    fn link_count() {
        // 11x11: 4*11*10 = 440 directed links (the bisection argument in
        // DESIGN.md relies on this).
        assert_eq!(MeshTopology::new(11).num_links(), 440);
        assert_eq!(MeshTopology::new(2).num_links(), 8);
    }
}
