//! The mesh Network Interface Controller (Figure 5 of the paper): a
//! 5×5 crossbar wormhole router with input buffering, e-cube routing
//! and round-robin output arbitration.

use ringmesh_net::{
    Assembler, DrainState, FlitFifo, NodeId, Packet, PacketQueue, PacketRef, PacketStore,
    QueueClass,
};

use crate::topology::{Direction, MeshTopology};

/// Port index of the local PM; ports 0..4 are N/E/S/W per
/// [`Direction::port`].
pub(crate) const LOCAL: usize = 4;

/// A flit transfer onto an inter-router link, applied after all routers
/// have stepped.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Send {
    pub to_node: u32,
    pub to_port: usize,
    pub flit: ringmesh_net::Flit,
}

/// Per-router simulation state.
#[derive(Debug)]
pub(crate) struct Router {
    node: NodeId,
    inputs: [FlitFifo; 5],
    /// Output port assigned to the packet at the front of each input,
    /// held from head to tail.
    route_of: [Option<(PacketRef, usize)>; 5],
    /// Input currently connected to each output.
    conn: [Option<usize>; 5],
    /// Round-robin arbitration pointer per output.
    rr: [usize; 5],
    out_req: PacketQueue,
    out_resp: PacketQueue,
    drain: DrainState,
    assembler: Assembler,
}

impl Router {
    pub(crate) fn new(node: NodeId, buffer_flits: usize, out_queue_packets: usize) -> Self {
        Router {
            node,
            inputs: std::array::from_fn(|_| FlitFifo::new(buffer_flits)),
            route_of: [None; 5],
            conn: [None; 5],
            rr: [0; 5],
            out_req: PacketQueue::new(out_queue_packets),
            out_resp: PacketQueue::new(out_queue_packets),
            drain: DrainState::idle(),
            assembler: Assembler::new(),
        }
    }

    pub(crate) fn input_mut(&mut self, port: usize) -> &mut FlitFifo {
        &mut self.inputs[port]
    }

    /// Total flits across the five input buffers (occupancy gauge probe).
    pub(crate) fn occupancy(&self) -> usize {
        self.inputs.iter().map(FlitFifo::len).sum()
    }

    pub(crate) fn can_accept(&self, class: QueueClass) -> bool {
        match class {
            QueueClass::Request => self.out_req.can_accept(),
            QueueClass::Response => self.out_resp.can_accept(),
        }
    }

    pub(crate) fn enqueue(&mut self, class: QueueClass, r: PacketRef) {
        match class {
            QueueClass::Request => self.out_req.push(r),
            QueueClass::Response => self.out_resp.push(r),
        }
    }

    /// One clock of the router. `go` holds the registered stop/go of
    /// each *neighbouring* input buffer, indexed `node*5 + port`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step(
        &mut self,
        now: u64,
        topo: &MeshTopology,
        go: &[bool],
        store: &mut PacketStore,
        sends: &mut Vec<Send>,
        delivered: &mut Vec<(NodeId, Packet)>,
        moved: &mut u64,
        blocked: &mut u64,
    ) {
        // 1. PM injection: serialize queued packets (responses first)
        //    into the local input buffer at one flit per cycle.
        if !self.drain.is_active() {
            let next = if !self.out_resp.is_empty() {
                self.out_resp.pop()
            } else {
                self.out_req.pop()
            };
            if let Some(r) = next {
                self.drain.begin(r, store.get(r).flits);
            }
        }
        if self.drain.is_active() && self.inputs[LOCAL].space_latched() {
            let flit = self.drain.emit();
            self.inputs[LOCAL].push(flit, now);
            *moved += 1;
        }

        // 2. Route computation for new head flits at input fronts.
        for i in 0..5 {
            if let Some(flit) = self.inputs[i].front_ready(now) {
                let stale = self.route_of[i].is_none_or(|(r, _)| r != flit.packet);
                if stale {
                    debug_assert!(flit.is_head(), "mid-packet flit without a route");
                    let dst = store.get(flit.packet).dst;
                    let port = match topo.ecube(self.node, dst) {
                        Some(dir) => dir.port(),
                        None => LOCAL,
                    };
                    self.route_of[i] = Some((flit.packet, port));
                }
            }
        }

        // 3. Round-robin arbitration for free outputs.
        for o in 0..5 {
            if self.conn[o].is_some() {
                continue;
            }
            for k in 0..5 {
                let i = (self.rr[o] + k) % 5;
                if matches!(self.route_of[i], Some((_, port)) if port == o) {
                    self.conn[o] = Some(i);
                    self.rr[o] = (i + 1) % 5;
                    break;
                }
            }
        }

        // 4. Transfers: one flit per connected output, gated by the
        //    downstream buffer's registered stop/go; the local output
        //    ejects into the always-ready PM.
        for o in 0..5 {
            let Some(i) = self.conn[o] else { continue };
            if o == LOCAL {
                if let Some(flit) = self.inputs[i].pop_ready(now) {
                    *moved += 1;
                    if flit.is_tail {
                        self.conn[o] = None;
                        self.route_of[i] = None;
                    }
                    if let Some(done) = self.assembler.push(flit) {
                        let pkt = store.remove(done);
                        delivered.push((self.node, pkt));
                    }
                }
            } else {
                let dir = Direction::ALL[o];
                let neighbor = topo
                    .neighbor(self.node, dir)
                    .expect("e-cube never routes off the mesh edge");
                let to_port = dir.opposite().port();
                if go[neighbor.index() * 5 + to_port] {
                    if let Some(flit) = self.inputs[i].pop_ready(now) {
                        if flit.is_tail {
                            self.conn[o] = None;
                            self.route_of[i] = None;
                        }
                        sends.push(Send {
                            to_node: neighbor.raw(),
                            to_port,
                            flit,
                        });
                    }
                } else if self.inputs[i].front_ready(now).is_some() {
                    *blocked += 1;
                }
            }
        }
    }

    /// Latches all input buffers; writes this router's stop/go signals
    /// into `go[node*5 ..]`.
    pub(crate) fn latch(&mut self, go: &mut [bool]) {
        for (p, input) in self.inputs.iter_mut().enumerate() {
            input.latch();
            go[self.node.index() * 5 + p] = input.space_latched();
        }
    }
}
