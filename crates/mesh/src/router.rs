//! The mesh Network Interface Controller (Figure 5 of the paper): a
//! 5×5 crossbar wormhole router with input buffering, e-cube routing
//! and round-robin output arbitration.

use ringmesh_faults::{ConservationLedger, DropReason, FaultInjector};
use ringmesh_net::{
    Assembler, DrainState, FlitFifo, NodeId, Packet, PacketQueue, PacketRef, PacketStore,
    QueueClass,
};
use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotState};

use crate::topology::{Direction, MeshTopology};

/// Port index of the local PM; ports 0..4 are N/E/S/W per
/// [`Direction::port`].
pub(crate) const LOCAL: usize = 4;

/// Sentinel "port" for packets with no usable route (every required
/// direction leads to a dead router): the input sinks their flits and
/// the packet is accounted as dropped.
pub(crate) const DROP: usize = 5;

/// Per-cycle fault view handed to every router step. With no injector
/// installed every query answers "healthy" and routing is byte-for-byte
/// the plain e-cube path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultCtx<'a> {
    pub inj: Option<&'a FaultInjector>,
    /// Corruption marks by packet-store slot.
    pub corrupt: &'a [bool],
    pub now: u64,
}

impl FaultCtx<'_> {
    fn router_dead(&self, node: NodeId) -> bool {
        self.inj.is_some_and(|f| f.node_dead(node.raw()))
    }

    /// Directed link out of `from` toward `dir` (`node*4 + port`).
    fn link_up(&self, from: NodeId, dir: Direction) -> bool {
        self.link_up_id(from.raw() * 4 + dir.port() as u32)
    }

    /// [`Self::link_up`] by precomputed directed-link id — the hot
    /// transfer path uses ids cached in [`LinkInfo`] so the fault query
    /// costs no coordinate arithmetic.
    fn link_up_id(&self, id: u32) -> bool {
        match self.inj {
            None => true,
            Some(f) => f.link_up(id, self.now),
        }
    }

    fn is_corrupt(&self, slot: usize) -> bool {
        self.corrupt.get(slot).copied().unwrap_or(false)
    }
}

/// A flit transfer onto an inter-router link, applied after all routers
/// have stepped.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Send {
    pub to_node: u32,
    pub to_port: usize,
    pub flit: ringmesh_net::Flit,
}

/// Facts about one outgoing mesh link, precomputed at construction so
/// the per-cycle transfer loop does no topology arithmetic: the
/// receiving node and port, the flattened index of that input's
/// stop/go signal, and the directed-link fault id.
#[derive(Debug, Clone, Copy)]
struct LinkInfo {
    to_node: NodeId,
    to_port: usize,
    go_idx: usize,
    link_id: u32,
}

/// Per-router simulation state.
#[derive(Debug)]
pub(crate) struct Router {
    node: NodeId,
    /// Outgoing-link table by port (N/E/S/W); `None` off the mesh edge.
    links: [Option<LinkInfo>; 4],
    /// Fault-free e-cube output port per destination, indexed by node.
    route_lut: Vec<u8>,
    inputs: [FlitFifo; 5],
    /// Output port assigned to the packet at the front of each input,
    /// held from head to tail.
    route_of: [Option<(PacketRef, usize)>; 5],
    /// Input currently connected to each output.
    conn: [Option<usize>; 5],
    /// Round-robin arbitration pointer per output.
    rr: [usize; 5],
    out_req: PacketQueue,
    out_resp: PacketQueue,
    drain: DrainState,
    assembler: Assembler,
}

impl Router {
    pub(crate) fn new(
        node: NodeId,
        topo: &MeshTopology,
        buffer_flits: usize,
        out_queue_packets: usize,
    ) -> Self {
        let links = std::array::from_fn(|o| {
            let dir = Direction::ALL[o];
            topo.neighbor(node, dir).map(|nb| LinkInfo {
                to_node: nb,
                to_port: dir.opposite().port(),
                go_idx: nb.index() * 5 + dir.opposite().port(),
                link_id: node.raw() * 4 + dir.port() as u32,
            })
        });
        let route_lut = (0..topo.num_pms())
            .map(|d| match topo.ecube(node, NodeId::new(d)) {
                Some(dir) => dir.port() as u8,
                None => LOCAL as u8,
            })
            .collect();
        Router {
            node,
            links,
            route_lut,
            inputs: std::array::from_fn(|_| FlitFifo::new(buffer_flits)),
            route_of: [None; 5],
            conn: [None; 5],
            rr: [0; 5],
            out_req: PacketQueue::new(out_queue_packets),
            out_resp: PacketQueue::new(out_queue_packets),
            drain: DrainState::idle(),
            assembler: Assembler::new(),
        }
    }

    pub(crate) fn input_mut(&mut self, port: usize) -> &mut FlitFifo {
        &mut self.inputs[port]
    }

    /// Total flits across the five input buffers (occupancy gauge probe).
    pub(crate) fn occupancy(&self) -> usize {
        self.inputs.iter().map(FlitFifo::len).sum()
    }

    /// True when a step of this router is provably a no-op: no buffered
    /// flits, no packet mid-serialization, nothing queued at the PM
    /// boundary, and no arbitration state that could still drive a
    /// transfer or change on its own. Routers in this state can be
    /// skipped until a send or injection touches them again.
    ///
    /// `route_of`/`conn` must be clear, not just the inputs: stage 3
    /// connects outputs from `route_of` without consulting buffer
    /// occupancy, so leftover routes would change arbitration timing.
    pub(crate) fn quiescent(&self) -> bool {
        !self.drain.is_active()
            && self.out_req.is_empty()
            && self.out_resp.is_empty()
            && self.inputs.iter().all(FlitFifo::is_empty)
            && self.route_of.iter().all(Option::is_none)
            && self.conn.iter().all(Option::is_none)
    }

    pub(crate) fn can_accept(&self, class: QueueClass) -> bool {
        match class {
            QueueClass::Request => self.out_req.can_accept(),
            QueueClass::Response => self.out_resp.can_accept(),
        }
    }

    pub(crate) fn enqueue(&mut self, class: QueueClass, r: PacketRef) {
        match class {
            QueueClass::Request => self.out_req.push(r),
            QueueClass::Response => self.out_resp.push(r),
        }
    }

    /// The routing decision at this router for a packet to `dst`.
    ///
    /// Fault-free this is plain e-cube. With faults installed the
    /// dimension order degrades gracefully: prefer the X direction,
    /// fall back to the Y direction (a YX variant) when the X-side
    /// link or neighbour is unusable, and only when every required
    /// direction leads to a *dead* router give up with [`DROP`]. A
    /// direction whose neighbour is alive but whose link is merely
    /// down transiently is kept as a last resort — the packet stalls
    /// until the link returns rather than being dropped.
    fn route(&self, topo: &MeshTopology, fc: &FaultCtx, dst: NodeId) -> usize {
        if fc.inj.is_none() {
            // Fault-free e-cube is a pure function of (node, dst):
            // served from the per-router table built at construction.
            return self.route_lut[dst.index()] as usize;
        }
        let (cr, cc) = topo.coords(self.node);
        let (dr, dc) = topo.coords(dst);
        if cr == dr && cc == dc {
            return LOCAL;
        }
        let x = if cc < dc {
            Some(Direction::East)
        } else if cc > dc {
            Some(Direction::West)
        } else {
            None
        };
        let y = if cr < dr {
            Some(Direction::South)
        } else if cr > dr {
            Some(Direction::North)
        } else {
            None
        };
        let candidates = [x, y];
        let healthy = candidates.iter().flatten().find(|&&dir| {
            let nb = topo
                .neighbor(self.node, dir)
                .expect("candidate stays on-mesh");
            !fc.router_dead(nb) && fc.link_up(self.node, dir)
        });
        if let Some(&dir) = healthy {
            return dir.port();
        }
        // No fully healthy direction: wait on a transiently-down link
        // toward a live neighbour if one exists.
        let waitable = candidates.iter().flatten().find(|&&dir| {
            let nb = topo
                .neighbor(self.node, dir)
                .expect("candidate stays on-mesh");
            !fc.router_dead(nb)
        });
        match waitable {
            Some(&dir) => dir.port(),
            None => DROP,
        }
    }

    /// One clock of the router. `go` holds the registered stop/go of
    /// each *neighbouring* input buffer, indexed `node*5 + port`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step(
        &mut self,
        now: u64,
        topo: &MeshTopology,
        go: &[bool],
        fc: &FaultCtx,
        store: &mut PacketStore,
        ledger: &mut ConservationLedger,
        sends: &mut Vec<Send>,
        delivered: &mut Vec<(NodeId, Packet)>,
        dropped: &mut Vec<(Packet, DropReason)>,
        moved: &mut u64,
        blocked: &mut u64,
    ) {
        // 1. PM injection: serialize queued packets (responses first)
        //    into the local input buffer at one flit per cycle.
        if !self.drain.is_active() {
            let next = if !self.out_resp.is_empty() {
                self.out_resp.pop()
            } else {
                self.out_req.pop()
            };
            if let Some(r) = next {
                self.drain.begin(r, store.get(r).flits);
            }
        }
        if self.drain.is_active() && self.inputs[LOCAL].space_latched() {
            let flit = self.drain.emit();
            self.inputs[LOCAL].push(flit, now);
            *moved += 1;
        }

        // 2. Route computation for new head flits at input fronts.
        for i in 0..5 {
            if let Some(flit) = self.inputs[i].front_ready(now) {
                let stale = self.route_of[i].is_none_or(|(r, _)| r != flit.packet);
                if stale {
                    debug_assert!(flit.is_head(), "mid-packet flit without a route");
                    let dst = store.get(flit.packet).dst;
                    let port = self.route(topo, fc, dst);
                    self.route_of[i] = Some((flit.packet, port));
                }
            }
        }

        // 3. Round-robin arbitration for free outputs.
        for o in 0..5 {
            if self.conn[o].is_some() {
                continue;
            }
            for k in 0..5 {
                let i = (self.rr[o] + k) % 5;
                if matches!(self.route_of[i], Some((_, port)) if port == o) {
                    self.conn[o] = Some(i);
                    self.rr[o] = (i + 1) % 5;
                    break;
                }
            }
        }

        // 4. Transfers: one flit per connected output, gated by the
        //    downstream buffer's registered stop/go; the local output
        //    ejects into the always-ready PM.
        for o in 0..5 {
            let Some(i) = self.conn[o] else { continue };
            if o == LOCAL {
                if let Some(flit) = self.inputs[i].pop_ready(now) {
                    *moved += 1;
                    if flit.is_tail {
                        self.conn[o] = None;
                        self.route_of[i] = None;
                    }
                    if let Some(done) = self.assembler.push(flit) {
                        let slot = done.slot();
                        let pkt = store.remove(done);
                        if fc.is_corrupt(slot) {
                            ledger.complete(slot, true);
                            dropped.push((pkt, DropReason::Corrupted));
                        } else {
                            ledger.complete(slot, false);
                            delivered.push((self.node, pkt));
                        }
                    }
                }
            } else {
                let link = self.links[o].expect("e-cube never routes off the mesh edge");
                if go[link.go_idx] && fc.link_up_id(link.link_id) {
                    if let Some(flit) = self.inputs[i].pop_ready(now) {
                        if flit.is_tail {
                            self.conn[o] = None;
                            self.route_of[i] = None;
                        }
                        sends.push(Send {
                            to_node: link.to_node.raw(),
                            to_port: link.to_port,
                            flit,
                        });
                    }
                } else if self.inputs[i].front_ready(now).is_some() {
                    *blocked += 1;
                }
            }
        }

        // 5. Sink packets routed to the drop port: no usable direction
        //    remained, so their flits are consumed in place and the
        //    packet is accounted as an explicit drop at the tail.
        for i in 0..5 {
            if !matches!(self.route_of[i], Some((_, DROP))) {
                continue;
            }
            if let Some(flit) = self.inputs[i].pop_ready(now) {
                *moved += 1;
                if flit.is_tail {
                    self.route_of[i] = None;
                    let slot = flit.packet.slot();
                    let pkt = store.remove(flit.packet);
                    ledger.complete(slot, true);
                    dropped.push((pkt, DropReason::DeadInterface));
                }
            }
        }
    }

    /// Latches all input buffers; writes this router's stop/go signals
    /// into `go[node*5 ..]`.
    pub(crate) fn latch(&mut self, go: &mut [bool]) {
        for (p, input) in self.inputs.iter_mut().enumerate() {
            input.latch();
            go[self.node.index() * 5 + p] = input.space_latched();
        }
    }
}

impl SnapshotState for Router {
    fn save_state(&self, w: &mut SnapWriter) {
        for input in &self.inputs {
            input.save_state(w);
        }
        self.route_of.save(w);
        self.conn.save(w);
        self.rr.save(w);
        self.out_req.save_state(w);
        self.out_resp.save_state(w);
        self.drain.save(w);
        self.assembler.save(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for input in &mut self.inputs {
            input.restore_state(r)?;
        }
        self.route_of = Snapshot::load(r)?;
        self.conn = Snapshot::load(r)?;
        self.rr = Snapshot::load(r)?;
        self.out_req.restore_state(r)?;
        self.out_resp.restore_state(r)?;
        self.drain = DrainState::load(r)?;
        self.assembler = Assembler::load(r)?;
        Ok(())
    }
}
