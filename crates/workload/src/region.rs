//! Memory access regions for the M-MRP workload (§2.4 of the paper).
//!
//! Parameter `R ∈ (0, 1]` controls locality: each processor accesses its
//! own PM plus the `⌈R·(P−1)⌉` "closest" PMs. *Closest* is interpreted
//! per network: for rings the PMs are projected onto a line (their DFS
//! ring order) and the region is the `⌈R(P−1)/2⌉` PMs on either side
//! (wrapping); for meshes it is the nearest PMs by hop count. Within a
//! region, references are uniformly distributed and independent.

use ringmesh_net::NodeId;

// Placement itself lives in `ringmesh-net` with the topology registry
// (each `TopologyBuilder` names its own placement); this module owns
// its workload-side interpretation.
pub use ringmesh_net::Placement;

/// Builds the access region (including the local PM, always first) for
/// processor `pm` with locality parameter `r`.
///
/// # Panics
///
/// Panics if `r` is outside `(0, 1]` or `pm` is out of range.
pub fn access_region(placement: Placement, pm: NodeId, r: f64) -> Vec<NodeId> {
    assert!(r > 0.0 && r <= 1.0, "R = {r} outside (0, 1]");
    let p = placement.num_pms();
    assert!(pm.raw() < p, "{pm} out of range");
    match placement {
        Placement::Linear { pms } => linear_region(pm, pms, r),
        Placement::Grid { side } => grid_region(pm, side, r),
        Placement::RingGrid { side, local } => ring_grid_region(pm, side, local, r),
    }
}

fn linear_region(pm: NodeId, p: u32, r: f64) -> Vec<NodeId> {
    // ⌈R(P−1)/2⌉ PMs on either side of the accessing PM, wrapping.
    let k = (r * f64::from(p - 1) / 2.0).ceil() as u32;
    let mut region = vec![pm];
    for i in 1..=k.min(p - 1) {
        let right = (pm.raw() + i) % p;
        let left = (pm.raw() + p - i) % p;
        push_unique(&mut region, NodeId::new(right));
        push_unique(&mut region, NodeId::new(left));
    }
    region
}

fn grid_region(pm: NodeId, side: u32, r: f64) -> Vec<NodeId> {
    let p = side * side;
    // The ⌈R(P−1)⌉ nearest PMs by hop count, ties broken by node index
    // for determinism, plus the local PM.
    let m = (r * f64::from(p - 1)).ceil() as u32;
    let (pr, pc) = (pm.raw() / side, pm.raw() % side);
    let mut others: Vec<(u32, u32)> = (0..p)
        .filter(|&n| n != pm.raw())
        .map(|n| {
            let (nr, nc) = (n / side, n % side);
            (nr.abs_diff(pr) + nc.abs_diff(pc), n)
        })
        .collect();
    others.sort_unstable();
    let mut region = vec![pm];
    region.extend(others.iter().take(m as usize).map(|&(_, n)| NodeId::new(n)));
    region
}

fn ring_grid_region(pm: NodeId, side: u32, local: u32, r: f64) -> Vec<NodeId> {
    let p = side * side * local;
    // The ⌈R(P−1)⌉ nearest PMs: ring-mates are at distance 0, other
    // rings at the Manhattan distance between their mesh routers, ties
    // broken by node index for determinism.
    let m = (r * f64::from(p - 1)).ceil() as u32;
    let router = |n: u32| n / local;
    let (pr, pc) = (router(pm.raw()) / side, router(pm.raw()) % side);
    let mut others: Vec<(u32, u32)> = (0..p)
        .filter(|&n| n != pm.raw())
        .map(|n| {
            let (nr, nc) = (router(n) / side, router(n) % side);
            (nr.abs_diff(pr) + nc.abs_diff(pc), n)
        })
        .collect();
    others.sort_unstable();
    let mut region = vec![pm];
    region.extend(others.iter().take(m as usize).map(|&(_, n)| NodeId::new(n)));
    region
}

fn push_unique(region: &mut Vec<NodeId>, n: NodeId) {
    if !region.contains(&n) {
        region.push(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_region_covers_all_pms() {
        for placement in [Placement::Linear { pms: 9 }, Placement::Grid { side: 3 }] {
            let region = access_region(placement, NodeId::new(4), 1.0);
            let mut ids: Vec<u32> = region.iter().map(|n| n.raw()).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..9).collect::<Vec<_>>());
        }
    }

    #[test]
    fn local_pm_always_first() {
        let region = access_region(Placement::Linear { pms: 12 }, NodeId::new(7), 0.2);
        assert_eq!(region[0], NodeId::new(7));
    }

    #[test]
    fn linear_region_is_symmetric_and_wraps() {
        // P=10, R=0.2: k = ceil(0.2*9/2) = 1 on either side.
        let region = access_region(Placement::Linear { pms: 10 }, NodeId::new(0), 0.2);
        let mut ids: Vec<u32> = region.iter().map(|n| n.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 9]);
    }

    #[test]
    fn linear_region_cardinality_matches_formula() {
        for p in [6u32, 13, 24, 54] {
            for r in [0.1, 0.2, 0.3, 0.5] {
                let region = access_region(Placement::Linear { pms: p }, NodeId::new(2), r);
                let k = (r * f64::from(p - 1) / 2.0).ceil() as u32;
                assert_eq!(region.len() as u32, (2 * k + 1).min(p), "p={p} r={r}");
            }
        }
    }

    #[test]
    fn grid_region_cardinality_matches_formula() {
        for side in [3u32, 5, 7] {
            let p = side * side;
            for r in [0.1, 0.3, 0.5] {
                let region = access_region(Placement::Grid { side }, NodeId::new(0), r);
                let m = (r * f64::from(p - 1)).ceil() as u32;
                assert_eq!(region.len() as u32, m + 1, "side={side} r={r}");
            }
        }
    }

    #[test]
    fn grid_region_prefers_nearby_pms() {
        // 5x5, centre node 12, small R: direct neighbours first.
        let region = access_region(Placement::Grid { side: 5 }, NodeId::new(12), 0.2);
        // m = ceil(0.2*24) = 5 remote PMs; all at distance <= 2.
        let side = 5u32;
        for n in &region[1..] {
            let (r0, c0) = (12 / side, 12 % side);
            let (r1, c1) = (n.raw() / side, n.raw() % side);
            let d = r0.abs_diff(r1) + c0.abs_diff(c1);
            assert!(d <= 2, "{n} at distance {d}");
        }
    }

    #[test]
    fn regions_have_no_duplicates() {
        for placement in [Placement::Linear { pms: 8 }, Placement::Grid { side: 4 }] {
            for pm in 0..placement.num_pms() {
                for r in [0.1, 0.5, 1.0] {
                    let region = access_region(placement, NodeId::new(pm), r);
                    let mut ids: Vec<u32> = region.iter().map(|n| n.raw()).collect();
                    ids.sort_unstable();
                    let before = ids.len();
                    ids.dedup();
                    assert_eq!(ids.len(), before);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_r_rejected() {
        access_region(Placement::Linear { pms: 4 }, NodeId::new(0), 0.0);
    }

    #[test]
    fn ring_grid_region_prefers_ring_mates() {
        // 2x2 mesh of 3-station rings; PM 4 lives on ring 1.
        let placement = Placement::RingGrid { side: 2, local: 3 };
        let region = access_region(placement, NodeId::new(4), 0.2);
        // m = ceil(0.2 * 11) = 3: both ring-mates (distance 0) come
        // before any PM on another ring.
        assert_eq!(region[0], NodeId::new(4));
        assert!(region.contains(&NodeId::new(3)));
        assert!(region.contains(&NodeId::new(5)));
    }

    #[test]
    fn ring_grid_full_region_covers_all_pms() {
        let placement = Placement::RingGrid { side: 2, local: 2 };
        let region = access_region(placement, NodeId::new(3), 1.0);
        let mut ids: Vec<u32> = region.iter().map(|n| n.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }
}
