//! The Multiprocessor Memory Reference Pattern (M-MRP) synthetic
//! workload of §2.4 of Ravindran & Stumm (HPCA 1997), after Saavedra's
//! micro-benchmark methodology.
//!
//! An M-MRP is a set of `P` uniprocessor reference streams, one per
//! processor, characterized by three attributes:
//!
//! * `R` — the fraction of the machine each processor's access region
//!   covers ([`access_region`] builds the per-network "closest PM"
//!   sets);
//! * `C` — the cache miss rate (0.04 → one miss per 25 cycles);
//! * `T` — outstanding transactions allowed before the processor
//!   blocks (models prefetching / multithreading).
//!
//! [`Mmrp`] drives any [`ringmesh_net::Interconnect`] with the pattern:
//! processors issue read (p = 0.7) and write requests, per-PM
//! [`MemoryModule`]s return responses after a fixed access latency, and
//! completed round-trips are reported as latency samples.
//!
//! # Example
//!
//! ```
//! use ringmesh_net::{CacheLineSize, Interconnect, PacketFormat};
//! use ringmesh_ring::{RingConfig, RingNetwork, RingSpec};
//! use ringmesh_workload::{MemoryParams, Mmrp, PacketSizer, Placement, WorkloadParams};
//!
//! let mut net = RingNetwork::new(&RingSpec::single(4), RingConfig::new(CacheLineSize::B32));
//! let mut wl = Mmrp::new(
//!     Placement::Linear { pms: 4 },
//!     WorkloadParams::paper_baseline(),
//!     MemoryParams::default(),
//!     PacketSizer { format: PacketFormat::RING, cache_line: CacheLineSize::B32 },
//!     42,
//! );
//! let (mut delivered, mut samples) = (Vec::new(), Vec::new());
//! for _ in 0..500 {
//!     let now = net.cycle();
//!     wl.pre_cycle(&mut net, now, &mut samples);
//!     delivered.clear();
//!     net.step(&mut delivered).unwrap();
//!     let after = net.cycle();
//!     wl.post_cycle(&mut net, &delivered, after, &mut samples);
//! }
//! assert!(!samples.is_empty(), "transactions completed");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod memory;
mod params;
mod processor;
mod region;
mod retry;

pub use driver::{Mmrp, MmrpStats};
pub use memory::MemoryModule;
pub use params::{HotSpot, MemoryParams, MissProcess, PacketSizer, WorkloadParams};
pub use processor::{Processor, ProcessorStats};
pub use region::{access_region, Placement};
pub use retry::{RetryPolicy, RetryStats};
