//! The processor issue model.
//!
//! Each processor generates one cache miss every `1/C` cycles. A miss
//! becomes an outstanding transaction when *issued*: handed to the NIC
//! (remote) or to the local memory (local). A processor with `T`
//! transactions outstanding blocks — generation pauses with one pending
//! reference — until a response returns (§2.4: the generation *rate* is
//! independent of the number outstanding, mimicking multiple-context
//! processors).

use ringmesh_engine::SimRng;
use ringmesh_net::{NodeId, PacketKind};
use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotState};

use crate::{MissProcess, WorkloadParams};

/// A reference waiting to be issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingRef {
    pub dst: NodeId,
    pub kind: PacketKind,
    /// Cycle at which the reference first became eligible to issue (an
    /// outstanding slot was free) — the paper's "first issued" instant.
    /// Round-trip latency is measured from here, so waiting for a NIC
    /// queue slot counts but blocking on the `T` limit does not.
    pub issued_at: u64,
}

/// Per-processor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessorStats {
    /// Transactions issued (remote + local).
    pub issued: u64,
    /// Transactions completed.
    pub retired: u64,
    /// Cycles spent with a generated reference blocked from issue.
    pub blocked_cycles: u64,
}

/// One processor of the M-MRP workload.
#[derive(Debug)]
pub struct Processor {
    pm: NodeId,
    interval: u32,
    miss_process: MissProcess,
    miss_rate: f64,
    hot_spot: Option<crate::HotSpot>,
    countdown: u32,
    t_limit: u32,
    outstanding: u32,
    pending: Option<PendingRef>,
    region: Vec<NodeId>,
    rng: SimRng,
    read_fraction: f64,
    stats: ProcessorStats,
}

impl Processor {
    /// Creates the processor for `pm` with access `region` (local PM
    /// first) and an independent RNG stream.
    pub(crate) fn new(
        pm: NodeId,
        params: &WorkloadParams,
        region: Vec<NodeId>,
        mut rng: SimRng,
    ) -> Self {
        debug_assert_eq!(region.first(), Some(&pm));
        // Stagger the first miss uniformly over one interval so the
        // deterministic generators do not fire in lock-step (which
        // would synthesize artificial burst contention).
        let first = 1 + rng.uniform_usize(params.miss_interval() as usize) as u32;
        Processor {
            pm,
            interval: params.miss_interval(),
            miss_process: params.miss_process,
            miss_rate: params.miss_rate,
            hot_spot: params.hot_spot,
            countdown: first,
            t_limit: params.outstanding,
            outstanding: 0,
            pending: None,
            region,
            rng,
            read_fraction: params.read_fraction,
            stats: ProcessorStats::default(),
        }
    }

    /// The PM this processor belongs to.
    pub fn pm(&self) -> NodeId {
        self.pm
    }

    /// Current outstanding transaction count.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ProcessorStats {
        self.stats
    }

    /// Advances the miss-generation clock one cycle and returns the
    /// reference that *wants* to issue this cycle, if any. The driver
    /// must call [`issue_succeeded`](Self::issue_succeeded) or
    /// [`issue_blocked`](Self::issue_blocked) with the outcome.
    pub(crate) fn tick(&mut self, now: u64) -> Option<PendingRef> {
        if self.pending.is_none() {
            if self.countdown > 0 {
                self.countdown -= 1;
            }
            if self.countdown == 0 {
                self.pending = Some(self.generate(now));
            }
        }
        match self.pending {
            Some(mut p) if self.outstanding < self.t_limit => {
                if p.issued_at == u64::MAX {
                    // First cycle with a free slot: the issue instant.
                    p.issued_at = now;
                    self.pending = Some(p);
                }
                Some(p)
            }
            Some(_) => {
                // Blocked on the T limit.
                self.stats.blocked_cycles += 1;
                None
            }
            None => None,
        }
    }

    /// Marks this cycle's reference as issued.
    pub(crate) fn issue_succeeded(&mut self) {
        debug_assert!(self.pending.is_some());
        self.pending = None;
        self.outstanding += 1;
        self.stats.issued += 1;
        self.countdown = match self.miss_process {
            MissProcess::Deterministic => self.interval,
            MissProcess::Geometric => self.rng.geometric(self.miss_rate) as u32,
        };
    }

    /// Marks this cycle's reference as blocked (NIC queue full).
    pub(crate) fn issue_blocked(&mut self) {
        debug_assert!(self.pending.is_some());
        self.stats.blocked_cycles += 1;
    }

    /// Completes one outstanding transaction.
    ///
    /// # Panics
    ///
    /// Panics if nothing is outstanding — a response delivered twice.
    pub(crate) fn retire(&mut self) {
        assert!(
            self.outstanding > 0,
            "retire with nothing outstanding at {}",
            self.pm
        );
        self.outstanding -= 1;
        self.stats.retired += 1;
    }

    /// Draws the next reference: a uniform target in the access region
    /// and a read/write coin flip.
    fn generate(&mut self, now: u64) -> PendingRef {
        let dst = match self.hot_spot {
            Some(h) if self.rng.bernoulli(h.fraction) => NodeId::new(h.node),
            _ => self.region[self.rng.uniform_usize(self.region.len())],
        };
        let kind = if self.rng.bernoulli(self.read_fraction) {
            PacketKind::ReadReq
        } else {
            PacketKind::WriteReq
        };
        let issued_at = if self.outstanding < self.t_limit {
            now
        } else {
            u64::MAX
        };
        PendingRef {
            dst,
            kind,
            issued_at,
        }
    }
}

impl Snapshot for PendingRef {
    fn save(&self, w: &mut SnapWriter) {
        self.dst.save(w);
        self.kind.save(w);
        w.u64(self.issued_at);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(PendingRef {
            dst: NodeId::load(r)?,
            kind: PacketKind::load(r)?,
            issued_at: r.u64()?,
        })
    }
}

impl Snapshot for ProcessorStats {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.issued);
        w.u64(self.retired);
        w.u64(self.blocked_cycles);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ProcessorStats {
            issued: r.u64()?,
            retired: r.u64()?,
            blocked_cycles: r.u64()?,
        })
    }
}

impl SnapshotState for Processor {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u32(self.pm.raw());
        w.u32(self.countdown);
        w.u32(self.outstanding);
        self.pending.save(w);
        self.rng.save(w);
        self.stats.save(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let pm = r.u32()?;
        if pm != self.pm.raw() {
            return Err(SnapError::Mismatch(format!(
                "processor snapshot is for PM {pm}, restoring into PM {}",
                self.pm.raw()
            )));
        }
        self.countdown = r.u32()?;
        self.outstanding = r.u32()?;
        self.pending = Snapshot::load(r)?;
        self.rng = SimRng::load(r)?;
        self.stats = ProcessorStats::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc(t: u32, region_size: u32) -> Processor {
        let params = WorkloadParams::paper_baseline().with_outstanding(t);
        let region: Vec<NodeId> = (0..region_size).map(NodeId::new).collect();
        Processor::new(NodeId::new(0), &params, region, SimRng::from_seed(1))
    }

    #[test]
    fn generates_every_interval() {
        let mut p = proc(4, 4);
        let mut issue_gaps = Vec::new();
        let mut last = None;
        for now in 0..200u64 {
            if p.tick(now).is_some() {
                p.issue_succeeded();
                if let Some(l) = last {
                    issue_gaps.push(now - l);
                }
                last = Some(now);
            }
        }
        assert!(!issue_gaps.is_empty());
        assert!(issue_gaps.iter().all(|&g| g == 25), "{issue_gaps:?}");
    }

    #[test]
    fn blocks_at_t_limit_and_resumes_on_retire() {
        let mut p = proc(1, 4);
        // Run to the first issue.
        let mut issued = 0;
        for now in 0..100 {
            if p.tick(now).is_some() {
                p.issue_succeeded();
                issued += 1;
                break;
            }
        }
        assert_eq!(issued, 1);
        // With T=1 outstanding, later generations must block.
        for now in 100..200 {
            assert!(p.tick(now).is_none());
        }
        assert!(p.stats().blocked_cycles > 0);
        p.retire();
        // Now the pending reference issues promptly.
        let mut resumed = false;
        for now in 200..203 {
            if p.tick(now).is_some() {
                p.issue_succeeded();
                resumed = true;
                break;
            }
        }
        assert!(resumed);
    }

    #[test]
    fn nic_blocked_issue_retries() {
        let mut p = proc(4, 4);
        let mut want = None;
        for now in 0..100 {
            if let Some(w) = p.tick(now) {
                want = Some(w);
                break;
            }
        }
        let want = want.unwrap();
        p.issue_blocked();
        // Same reference (same issue instant) is offered again next cycle.
        assert_eq!(p.tick(100), Some(want));
    }

    #[test]
    fn read_fraction_roughly_honoured() {
        let mut p = proc(4, 8);
        let mut reads = 0;
        let mut total = 0;
        for now in 0..200_000 {
            if let Some(r) = p.tick(now) {
                if r.kind == PacketKind::ReadReq {
                    reads += 1;
                }
                total += 1;
                p.issue_succeeded();
                p.retire(); // immediately complete so generation continues
            }
        }
        let frac = f64::from(reads) / f64::from(total);
        assert!((frac - 0.7).abs() < 0.03, "read fraction {frac}");
    }

    #[test]
    fn targets_cover_region_uniformly() {
        let mut p = proc(4, 4);
        let mut counts = [0u32; 4];
        for now in 0..400_000 {
            if let Some(r) = p.tick(now) {
                counts[r.dst.index()] += 1;
                p.issue_succeeded();
                p.retire();
            }
        }
        let total: u32 = counts.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let frac = f64::from(c) / f64::from(total);
            assert!((frac - 0.25).abs() < 0.02, "target {i}: {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "retire with nothing outstanding")]
    fn double_retire_panics() {
        let mut p = proc(1, 2);
        p.retire();
    }
}

#[cfg(test)]
mod hot_spot_tests {
    use super::*;

    #[test]
    fn hot_spot_redirects_the_configured_fraction() {
        let params = WorkloadParams::paper_baseline().with_hot_spot(3, 0.5);
        let region: Vec<NodeId> = (0..8).map(NodeId::new).collect();
        let mut p = Processor::new(NodeId::new(0), &params, region, SimRng::from_seed(5));
        let mut hot = 0u32;
        let mut total = 0u32;
        for now in 0..500_000u64 {
            if let Some(r) = p.tick(now) {
                if r.dst == NodeId::new(3) {
                    hot += 1;
                }
                total += 1;
                p.issue_succeeded();
                p.retire();
            }
        }
        // 50% redirected + uniform share (1/8 of the other 50%).
        let frac = f64::from(hot) / f64::from(total);
        assert!((frac - 0.5625).abs() < 0.03, "hot fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "hot-spot fraction")]
    fn invalid_hot_spot_rejected() {
        WorkloadParams::paper_baseline().with_hot_spot(0, 0.0);
    }
}
