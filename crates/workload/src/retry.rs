//! End-to-end robustness at the processor/NIC layer: per-transaction
//! timeouts, bounded retry with exponential backoff, and accounting
//! for transactions the network dropped.
//!
//! The network itself only ever drops packets at explicit fault points
//! (see `ringmesh-faults`); it is this layer's job to notice that a
//! request or its response never came back and either reissue the
//! transaction or give it up so the processor's outstanding slot is
//! not leaked. Retries reissue under a fresh transaction id; a
//! late-arriving response to a timed-out id is counted as stale and
//! ignored rather than retired twice.

use std::collections::{HashMap, VecDeque};

use ringmesh_net::{NodeId, PacketKind};
use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotState};

/// Retry/timeout knobs for the end-to-end layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Cycles a transaction may stay open before it times out.
    pub timeout: u64,
    /// Total attempts (first issue included) before giving up.
    pub max_attempts: u32,
    /// Base backoff in cycles; attempt `n` waits `backoff << (n-1)`
    /// before reissuing.
    pub backoff: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: 1_000,
            max_attempts: 4,
            backoff: 64,
        }
    }
}

/// Counters kept by the retry layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Transactions whose deadline expired at least once.
    pub timeouts: u64,
    /// Reissues actually injected.
    pub retries: u64,
    /// Transactions abandoned after exhausting every attempt (the
    /// processor's slot is released without a latency sample).
    pub gave_up: u64,
    /// Responses that arrived for an id already timed out; ignored.
    pub stale_responses: u64,
    /// Transactions abandoned immediately because the destination
    /// node was known dead.
    pub dead_drops: u64,
}

/// An open (unacknowledged) remote transaction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpenTxn {
    pub pm: NodeId,
    pub dst: NodeId,
    pub kind: PacketKind,
    pub flits: u32,
    /// Cycle of the *first* issue: latency samples for retried
    /// transactions span every attempt.
    pub issued_at: u64,
    /// 1-based attempt number of the current issue.
    pub attempt: u32,
}

/// Bookkeeping for the retry layer: which transactions are open, when
/// they time out, and which are waiting out a backoff window.
#[derive(Debug)]
pub(crate) struct RetryBook {
    pub policy: RetryPolicy,
    pub stats: RetryStats,
    /// Open transactions by wire transaction id.
    pub open: HashMap<u64, OpenTxn>,
    /// Timeout deadlines `(due, txn, attempt)`; the timeout is a
    /// constant offset from a non-decreasing clock, so this stays
    /// sorted and only the front needs checking.
    pub deadlines: VecDeque<(u64, u64, u32)>,
    /// Timed-out transactions waiting out their backoff `(due, txn)`;
    /// per-attempt backoff makes due cycles non-monotone, so this is
    /// scanned linearly (it is small: at most one entry per processor
    /// outstanding slot).
    pub retry_at: Vec<(u64, OpenTxn)>,
}

impl RetryBook {
    pub(crate) fn new(policy: RetryPolicy) -> Self {
        RetryBook {
            policy,
            stats: RetryStats::default(),
            open: HashMap::new(),
            deadlines: VecDeque::new(),
            retry_at: Vec::new(),
        }
    }

    /// Records a freshly injected attempt.
    pub(crate) fn track(&mut self, txn: u64, entry: OpenTxn, now: u64) {
        self.deadlines
            .push_back((now + self.policy.timeout, txn, entry.attempt));
        self.open.insert(txn, entry);
    }

    /// Backoff window before reissuing attempt `attempt + 1`.
    pub(crate) fn backoff_until(&self, now: u64, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        now + (self.policy.backoff << shift)
    }
}

impl Snapshot for RetryStats {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.timeouts);
        w.u64(self.retries);
        w.u64(self.gave_up);
        w.u64(self.stale_responses);
        w.u64(self.dead_drops);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RetryStats {
            timeouts: r.u64()?,
            retries: r.u64()?,
            gave_up: r.u64()?,
            stale_responses: r.u64()?,
            dead_drops: r.u64()?,
        })
    }
}

impl Snapshot for OpenTxn {
    fn save(&self, w: &mut SnapWriter) {
        self.pm.save(w);
        self.dst.save(w);
        self.kind.save(w);
        w.u32(self.flits);
        w.u64(self.issued_at);
        w.u32(self.attempt);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(OpenTxn {
            pm: NodeId::load(r)?,
            dst: NodeId::load(r)?,
            kind: PacketKind::load(r)?,
            flits: r.u32()?,
            issued_at: r.u64()?,
            attempt: r.u32()?,
        })
    }
}

impl SnapshotState for RetryBook {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.policy.timeout);
        w.u32(self.policy.max_attempts);
        w.u64(self.policy.backoff);
        self.stats.save(w);
        // The open map is serialized sorted by transaction id so the
        // snapshot bytes are deterministic despite HashMap iteration
        // order.
        let mut open: Vec<(u64, OpenTxn)> = self.open.iter().map(|(&k, &v)| (k, v)).collect();
        open.sort_unstable_by_key(|&(k, _)| k);
        open.save(w);
        self.deadlines.save(w);
        self.retry_at.save(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let policy = RetryPolicy {
            timeout: r.u64()?,
            max_attempts: r.u32()?,
            backoff: r.u64()?,
        };
        if policy != self.policy {
            return Err(SnapError::Mismatch(format!(
                "retry policy {policy:?} in snapshot, {:?} configured",
                self.policy
            )));
        }
        self.stats = RetryStats::load(r)?;
        let open: Vec<(u64, OpenTxn)> = Snapshot::load(r)?;
        self.open = open.into_iter().collect();
        self.deadlines = Snapshot::load(r)?;
        self.retry_at = Snapshot::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_sane() {
        let p = RetryPolicy::default();
        assert!(p.timeout > 0 && p.max_attempts > 1 && p.backoff > 0);
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let book = RetryBook::new(RetryPolicy {
            timeout: 100,
            max_attempts: 4,
            backoff: 8,
        });
        assert_eq!(book.backoff_until(0, 1), 8);
        assert_eq!(book.backoff_until(0, 2), 16);
        assert_eq!(book.backoff_until(0, 3), 32);
        assert_eq!(book.backoff_until(1000, 1), 1008);
    }

    #[test]
    fn track_keeps_deadlines_in_push_order() {
        let mut book = RetryBook::new(RetryPolicy::default());
        let entry = OpenTxn {
            pm: NodeId::new(0),
            dst: NodeId::new(1),
            kind: PacketKind::ReadReq,
            flits: 3,
            issued_at: 0,
            attempt: 1,
        };
        book.track(1, entry, 0);
        book.track(2, entry, 5);
        assert_eq!(book.deadlines[0].1, 1);
        assert_eq!(book.deadlines[1].1, 2);
        assert!(book.deadlines[0].0 <= book.deadlines[1].0);
        assert_eq!(book.open.len(), 2);
    }
}
