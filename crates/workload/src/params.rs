//! Workload and memory-timing parameters.

use ringmesh_net::{CacheLineSize, PacketFormat, PacketKind};

/// Distribution of the interval between generated cache misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissProcess {
    /// One miss exactly every `1/C` cycles (the paper's "25 cycles
    /// between cache misses").
    #[default]
    Deterministic,
    /// Geometric inter-miss times with mean `1/C` — a Bernoulli miss
    /// per cycle, the memoryless variant used for ablation.
    Geometric,
}

/// A hot-spot overlay on the M-MRP pattern: a classic interconnect
/// stressor in which some fraction of every processor's misses target
/// one designated PM (e.g. a lock or a shared work queue), regardless
/// of its access region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotSpot {
    /// The PM all processors converge on.
    pub node: u32,
    /// Fraction of misses redirected to it, in `(0, 1]`.
    pub fraction: f64,
}

/// The three M-MRP attributes of §2.4 plus the fixed protocol constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// `R` — fraction of the machine each processor's access region
    /// covers (1.0 = uniform access to all PMs).
    pub region: f64,
    /// `C` — cache miss rate per processor cycle (0.04 in all the
    /// paper's experiments: one miss every 25 cycles).
    pub miss_rate: f64,
    /// `T` — outstanding transactions allowed before the processor
    /// blocks (1, 2 or 4 in the paper).
    pub outstanding: u32,
    /// Probability a miss is a read (0.7 throughout the paper).
    pub read_fraction: f64,
    /// Inter-miss interval distribution (deterministic in the paper).
    pub miss_process: MissProcess,
    /// Optional hot-spot overlay (not part of the paper's workloads;
    /// used by the extension studies).
    pub hot_spot: Option<HotSpot>,
}

impl WorkloadParams {
    /// The paper's baseline: no locality, C = 0.04, T = 4, 70% reads.
    pub fn paper_baseline() -> Self {
        WorkloadParams {
            region: 1.0,
            miss_rate: 0.04,
            outstanding: 4,
            read_fraction: 0.7,
            miss_process: MissProcess::Deterministic,
            hot_spot: None,
        }
    }

    /// Returns the parameters with a hot-spot overlay: `fraction` of
    /// every processor's misses target PM `node`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn with_hot_spot(mut self, node: u32, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "hot-spot fraction {fraction} outside (0, 1]"
        );
        self.hot_spot = Some(HotSpot { node, fraction });
        self
    }

    /// Returns the parameters with a different miss-interval process.
    pub fn with_miss_process(mut self, miss_process: MissProcess) -> Self {
        self.miss_process = miss_process;
        self
    }

    /// Returns the parameters with a different locality `R`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside `(0, 1]`.
    pub fn with_region(mut self, r: f64) -> Self {
        assert!(r > 0.0 && r <= 1.0, "R = {r} outside (0, 1]");
        self.region = r;
        self
    }

    /// Returns the parameters with a different outstanding limit `T`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is zero.
    pub fn with_outstanding(mut self, t: u32) -> Self {
        assert!(t > 0, "T must be positive");
        self.outstanding = t;
        self
    }

    /// Cycles between generated misses: `round(1/C)`.
    ///
    /// # Panics
    ///
    /// Panics if the miss rate is not in `(0, 1]`.
    pub fn miss_interval(&self) -> u32 {
        assert!(
            self.miss_rate > 0.0 && self.miss_rate <= 1.0,
            "C = {} outside (0, 1]",
            self.miss_rate
        );
        (1.0 / self.miss_rate).round().max(1.0) as u32
    }
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams::paper_baseline()
    }
}

/// Memory-system timing (the paper does not publish its constants; see
/// DESIGN.md "Substitutions").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryParams {
    /// Access latency in cycles from request arrival to response
    /// injection (applies to local accesses too).
    pub latency: u32,
    /// Minimum cycles between successive service *starts* at one memory
    /// module (1 = fully pipelined).
    pub occupancy: u32,
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams {
            latency: 10,
            occupancy: 1,
        }
    }
}

/// Sizes packets for whichever network is in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSizer {
    /// Flit format of the target network.
    pub format: PacketFormat,
    /// Cache line size.
    pub cache_line: CacheLineSize,
}

impl PacketSizer {
    /// Total flits of a packet of `kind`.
    pub fn flits(&self, kind: PacketKind) -> u32 {
        self.format.flits(kind, self.cache_line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let p = WorkloadParams::paper_baseline();
        assert_eq!(p.miss_interval(), 25);
        assert_eq!(p.outstanding, 4);
        assert_eq!(p.read_fraction, 0.7);
        assert_eq!(p.region, 1.0);
    }

    #[test]
    fn builders_validate() {
        let p = WorkloadParams::paper_baseline()
            .with_region(0.3)
            .with_outstanding(2);
        assert_eq!(p.region, 0.3);
        assert_eq!(p.outstanding, 2);
    }

    #[test]
    #[should_panic(expected = "T must be positive")]
    fn zero_t_rejected() {
        WorkloadParams::paper_baseline().with_outstanding(0);
    }

    #[test]
    fn sizer_uses_network_format() {
        let ring = PacketSizer {
            format: PacketFormat::RING,
            cache_line: CacheLineSize::B64,
        };
        let mesh = PacketSizer {
            format: PacketFormat::MESH,
            cache_line: CacheLineSize::B64,
        };
        assert_eq!(ring.flits(PacketKind::ReadResp), 5);
        assert_eq!(mesh.flits(PacketKind::ReadResp), 20);
    }
}
