//! The M-MRP workload driver: wires P processors and P memory modules
//! to an [`Interconnect`] and collects round-trip latency samples.

use ringmesh_engine::SimRng;
use ringmesh_net::{Interconnect, NodeId, Packet, QueueClass, TxnId};
use ringmesh_trace::{Counter, Gauge};

use crate::memory::MemoryModule;
use crate::processor::Processor;
use crate::region::{access_region, Placement};
use crate::{MemoryParams, PacketSizer, WorkloadParams};

/// Aggregate workload statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmrpStats {
    /// Transactions issued across all processors.
    pub issued: u64,
    /// Transactions completed across all processors.
    pub retired: u64,
    /// Of the retired transactions, how many were local accesses.
    pub local_retired: u64,
}

/// The Multiprocessor Memory Reference Pattern driver of §2.4.
///
/// Call [`pre_cycle`](Mmrp::pre_cycle) before each network step (it
/// injects responses and new requests) and
/// [`post_cycle`](Mmrp::post_cycle) after it (it routes deliveries to
/// memories/processors). Completed-transaction latencies are appended
/// to the `samples` vector as `(completion cycle, latency)` pairs.
#[derive(Debug)]
pub struct Mmrp {
    procs: Vec<Processor>,
    mems: Vec<MemoryModule>,
    sizer: PacketSizer,
    txn_seq: u64,
    stats: MmrpStats,
    local_scratch: Vec<u64>,
}

impl Mmrp {
    /// Builds the workload for `placement` with per-processor RNG
    /// streams derived from `seed`.
    pub fn new(
        placement: Placement,
        params: WorkloadParams,
        mem: MemoryParams,
        sizer: PacketSizer,
        seed: u64,
    ) -> Self {
        let p = placement.num_pms();
        let root = SimRng::from_seed(seed);
        let procs = (0..p)
            .map(|i| {
                let pm = NodeId::new(i);
                let region = access_region(placement, pm, params.region);
                Processor::new(pm, &params, region, root.stream(u64::from(i)))
            })
            .collect();
        let mems = (0..p)
            .map(|i| MemoryModule::new(NodeId::new(i), mem, sizer))
            .collect();
        Mmrp {
            procs,
            mems,
            sizer,
            txn_seq: 0,
            stats: MmrpStats::default(),
            local_scratch: Vec::new(),
        }
    }

    /// Number of processors.
    pub fn num_processors(&self) -> usize {
        self.procs.len()
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> MmrpStats {
        self.stats
    }

    /// Transactions currently outstanding across all processors.
    pub fn outstanding(&self) -> u64 {
        self.procs.iter().map(|p| u64::from(p.outstanding())).sum()
    }

    /// Per-processor view (diagnostics).
    pub fn processor(&self, pm: NodeId) -> &Processor {
        &self.procs[pm.index()]
    }

    /// Injection phase, run before `net.step`: completes ready local
    /// accesses, injects ready memory responses, then lets every
    /// processor generate/issue. `now` must be `net.cycle()`.
    pub fn pre_cycle(
        &mut self,
        net: &mut dyn Interconnect,
        now: u64,
        samples: &mut Vec<(u64, f64)>,
    ) {
        let before = self.stats;
        let mut blocked = 0u64;
        for i in 0..self.procs.len() {
            // Local completions retire first — they free T slots.
            self.local_scratch.clear();
            self.mems[i].pop_local_ready(now, &mut self.local_scratch);
            for k in 0..self.local_scratch.len() {
                let issued_at = self.local_scratch[k];
                self.procs[i].retire();
                self.stats.retired += 1;
                self.stats.local_retired += 1;
                samples.push((now, (now - issued_at) as f64));
            }
            self.mems[i].inject_ready(net, now);
        }
        for i in 0..self.procs.len() {
            let Some(want) = self.procs[i].tick(now) else {
                continue;
            };
            let pm = self.procs[i].pm();
            if want.dst == pm {
                // Local access: memory timing, no network.
                self.mems[i].accept_local(now, want.issued_at);
                self.procs[i].issue_succeeded();
                self.txn_seq += 1;
                self.stats.issued += 1;
            } else if net.can_inject(pm, QueueClass::of(want.kind)) {
                self.txn_seq += 1;
                net.inject(
                    pm,
                    Packet {
                        txn: TxnId::new(self.txn_seq),
                        kind: want.kind,
                        src: pm,
                        dst: want.dst,
                        flits: self.sizer.flits(want.kind),
                        injected_at: want.issued_at,
                    },
                );
                self.procs[i].issue_succeeded();
                self.stats.issued += 1;
            } else {
                self.procs[i].issue_blocked();
                blocked += 1;
            }
        }
        if let Some(t) = net.tracer_mut() {
            t.count(Counter::TxnsIssued, self.stats.issued - before.issued);
            t.count(Counter::IssueBlocked, blocked);
            t.count(Counter::TxnsRetired, self.stats.retired - before.retired);
            t.count(
                Counter::TxnsLocalRetired,
                self.stats.local_retired - before.local_retired,
            );
        }
    }

    /// Delivery phase, run after `net.step`: requests go to the home
    /// memory, responses retire transactions and record latency.
    /// `net` is only consulted for its tracer (retirement counters and
    /// the outstanding-transactions gauge).
    pub fn post_cycle(
        &mut self,
        net: &mut dyn Interconnect,
        delivered: &[(NodeId, Packet)],
        now: u64,
        samples: &mut Vec<(u64, f64)>,
    ) {
        let mut retired = 0u64;
        for (dst, pkt) in delivered {
            if pkt.kind.is_request() {
                self.mems[dst.index()].accept(pkt, now);
            } else {
                self.procs[dst.index()].retire();
                self.stats.retired += 1;
                retired += 1;
                samples.push((now, (now - pkt.injected_at) as f64));
            }
        }
        if let Some(t) = net.tracer_mut() {
            t.count(Counter::TxnsRetired, retired);
            let outstanding: u64 = self.procs.iter().map(|p| u64::from(p.outstanding())).sum();
            t.gauge(Gauge::OutstandingTxns, outstanding as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringmesh_engine::StallError;
    use ringmesh_net::{CacheLineSize, PacketFormat, UtilizationReport};

    /// A zero-latency loopback "network": packets are delivered to
    /// their destination on the next step. Lets us test the driver's
    /// bookkeeping without a real interconnect.
    struct Loopback {
        pms: usize,
        queue: Vec<(NodeId, Packet)>,
        cycle: u64,
    }

    impl Interconnect for Loopback {
        fn num_pms(&self) -> usize {
            self.pms
        }
        fn cycle(&self) -> u64 {
            self.cycle
        }
        fn can_inject(&self, _pm: NodeId, _class: QueueClass) -> bool {
            true
        }
        fn inject(&mut self, _pm: NodeId, packet: Packet) {
            self.queue.push((packet.dst, packet));
        }
        fn step(&mut self, delivered: &mut Vec<(NodeId, Packet)>) -> Result<(), StallError> {
            delivered.append(&mut self.queue);
            self.cycle += 1;
            Ok(())
        }
        fn in_flight(&self) -> u64 {
            self.queue.len() as u64
        }
        fn utilization(&self) -> UtilizationReport {
            UtilizationReport::default()
        }
        fn reset_counters(&mut self) {}
    }

    fn mmrp(pms: u32, t: u32, r: f64) -> Mmrp {
        Mmrp::new(
            Placement::Linear { pms },
            WorkloadParams::paper_baseline()
                .with_outstanding(t)
                .with_region(r),
            MemoryParams {
                latency: 5,
                occupancy: 1,
            },
            PacketSizer {
                format: PacketFormat::RING,
                cache_line: CacheLineSize::B32,
            },
            7,
        )
    }

    fn run(wl: &mut Mmrp, net: &mut Loopback, cycles: u64) -> Vec<(u64, f64)> {
        let mut samples = Vec::new();
        let mut delivered = Vec::new();
        for _ in 0..cycles {
            let now = net.cycle();
            wl.pre_cycle(net, now, &mut samples);
            delivered.clear();
            net.step(&mut delivered).unwrap();
            let after = net.cycle();
            wl.post_cycle(net, &delivered, after, &mut samples);
        }
        samples
    }

    #[test]
    fn transactions_complete_with_expected_latency() {
        let mut net = Loopback {
            pms: 4,
            queue: Vec::new(),
            cycle: 0,
        };
        let mut wl = mmrp(4, 4, 1.0);
        let samples = run(&mut wl, &mut net, 500);
        assert!(!samples.is_empty());
        // Round trip on the loopback: 1 cycle out + 5 memory + 1 back,
        // give or take injection-cycle accounting; all remote samples
        // must be small and identical, locals exactly the memory time.
        for &(_, lat) in &samples {
            assert!((5.0..=9.0).contains(&lat), "latency {lat}");
        }
    }

    #[test]
    fn issue_rate_matches_miss_rate() {
        let mut net = Loopback {
            pms: 8,
            queue: Vec::new(),
            cycle: 0,
        };
        let mut wl = mmrp(8, 4, 1.0);
        run(&mut wl, &mut net, 2_500);
        // 8 processors * 2500 cycles * C=0.04 = 800 expected issues;
        // the fast loopback never blocks, so we should be close.
        let issued = wl.stats().issued;
        assert!((760..=800).contains(&issued), "issued {issued}");
    }

    #[test]
    fn conservation_on_loopback() {
        let mut net = Loopback {
            pms: 6,
            queue: Vec::new(),
            cycle: 0,
        };
        let mut wl = mmrp(6, 2, 0.5);
        run(&mut wl, &mut net, 1_000);
        let s = wl.stats();
        assert!(s.retired <= s.issued);
        assert!(
            s.issued - s.retired <= 6 * 2,
            "at most T per processor in flight"
        );
        assert_eq!(wl.outstanding(), s.issued - s.retired);
    }

    #[test]
    fn local_accesses_counted_separately() {
        // R small on a big machine still includes the local PM, so some
        // local traffic must appear.
        let mut net = Loopback {
            pms: 16,
            queue: Vec::new(),
            cycle: 0,
        };
        let mut wl = mmrp(16, 4, 0.2);
        run(&mut wl, &mut net, 2_000);
        let s = wl.stats();
        assert!(s.local_retired > 0);
        assert!(s.local_retired < s.retired, "remote traffic must dominate");
    }

    #[test]
    fn samples_carry_completion_timestamps() {
        let mut net = Loopback {
            pms: 4,
            queue: Vec::new(),
            cycle: 0,
        };
        let mut wl = mmrp(4, 4, 1.0);
        let samples = run(&mut wl, &mut net, 300);
        assert!(
            samples.windows(2).all(|w| w[0].0 <= w[1].0),
            "timestamps non-decreasing"
        );
        assert!(samples.last().unwrap().0 <= 300);
    }
}
