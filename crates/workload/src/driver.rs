//! The M-MRP workload driver: wires P processors and P memory modules
//! to an [`Interconnect`] and collects round-trip latency samples.

use ringmesh_engine::SimRng;
use ringmesh_net::{Interconnect, NodeId, Packet, QueueClass, TxnId};
use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotState};
use ringmesh_trace::{Counter, Gauge};

use crate::memory::MemoryModule;
use crate::processor::Processor;
use crate::region::{access_region, Placement};
use crate::retry::{OpenTxn, RetryBook};
use crate::{MemoryParams, PacketSizer, RetryPolicy, RetryStats, WorkloadParams};

/// Aggregate workload statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmrpStats {
    /// Transactions issued across all processors.
    pub issued: u64,
    /// Transactions completed across all processors.
    pub retired: u64,
    /// Of the retired transactions, how many were local accesses.
    pub local_retired: u64,
}

/// The Multiprocessor Memory Reference Pattern driver of §2.4.
///
/// Call [`pre_cycle`](Mmrp::pre_cycle) before each network step (it
/// injects responses and new requests) and
/// [`post_cycle`](Mmrp::post_cycle) after it (it routes deliveries to
/// memories/processors). Completed-transaction latencies are appended
/// to the `samples` vector as `(completion cycle, latency)` pairs.
#[derive(Debug)]
pub struct Mmrp {
    procs: Vec<Processor>,
    mems: Vec<MemoryModule>,
    sizer: PacketSizer,
    txn_seq: u64,
    stats: MmrpStats,
    local_scratch: Vec<u64>,
    /// End-to-end timeout/retry layer; absent (the default) the driver
    /// trusts the network never to drop, exactly as before.
    retry: Option<RetryBook>,
}

impl Mmrp {
    /// Builds the workload for `placement` with per-processor RNG
    /// streams derived from `seed`.
    pub fn new(
        placement: Placement,
        params: WorkloadParams,
        mem: MemoryParams,
        sizer: PacketSizer,
        seed: u64,
    ) -> Self {
        let p = placement.num_pms();
        let root = SimRng::from_seed(seed);
        let procs = (0..p)
            .map(|i| {
                let pm = NodeId::new(i);
                let region = access_region(placement, pm, params.region);
                Processor::new(pm, &params, region, root.stream(u64::from(i)))
            })
            .collect();
        let mems = (0..p)
            .map(|i| MemoryModule::new(NodeId::new(i), mem, sizer))
            .collect();
        Mmrp {
            procs,
            mems,
            sizer,
            txn_seq: 0,
            stats: MmrpStats::default(),
            local_scratch: Vec::new(),
            retry: None,
        }
    }

    /// Enables the end-to-end timeout/retry layer. Without it (the
    /// default) behaviour and replay determinism are byte-identical to
    /// earlier versions; with it, remote transactions that never
    /// complete are retried under `policy` and eventually given up so
    /// processor slots are not leaked when the network drops packets.
    pub fn set_retry(&mut self, policy: RetryPolicy) {
        self.retry = Some(RetryBook::new(policy));
    }

    /// Builder form of [`set_retry`](Self::set_retry).
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.set_retry(policy);
        self
    }

    /// Retry-layer counters; zeros when the layer is disabled.
    pub fn retry_stats(&self) -> RetryStats {
        self.retry.as_ref().map(|b| b.stats).unwrap_or_default()
    }

    /// Number of processors.
    pub fn num_processors(&self) -> usize {
        self.procs.len()
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> MmrpStats {
        self.stats
    }

    /// Transactions currently outstanding across all processors.
    pub fn outstanding(&self) -> u64 {
        self.procs.iter().map(|p| u64::from(p.outstanding())).sum()
    }

    /// Per-processor view (diagnostics).
    pub fn processor(&self, pm: NodeId) -> &Processor {
        &self.procs[pm.index()]
    }

    /// Injection phase, run before `net.step`: completes ready local
    /// accesses, injects ready memory responses, processes retry-layer
    /// timeouts/reissues, then lets every processor generate/issue.
    /// `now` must be `net.cycle()`.
    pub fn pre_cycle(
        &mut self,
        net: &mut dyn Interconnect,
        now: u64,
        samples: &mut Vec<(u64, f64)>,
    ) {
        let before = self.stats;
        let rbefore = self.retry_stats();
        let mut blocked = 0u64;
        for i in 0..self.procs.len() {
            // Local completions retire first — they free T slots.
            self.local_scratch.clear();
            self.mems[i].pop_local_ready(now, &mut self.local_scratch);
            for k in 0..self.local_scratch.len() {
                let issued_at = self.local_scratch[k];
                self.procs[i].retire();
                self.stats.retired += 1;
                self.stats.local_retired += 1;
                samples.push((now, (now - issued_at) as f64));
            }
            self.mems[i].inject_ready(net, now);
        }
        // Retries compete with fresh issues for injection slots; give
        // them priority so starved transactions make progress.
        self.process_retries(net, now);
        for i in 0..self.procs.len() {
            let pm = self.procs[i].pm();
            if !net.pm_alive(pm) {
                // Fail-stop PM: issues no new work; outstanding
                // transactions resolve through the retry layer.
                continue;
            }
            let Some(want) = self.procs[i].tick(now) else {
                continue;
            };
            if want.dst == pm {
                // Local access: memory timing, no network.
                self.mems[i].accept_local(now, want.issued_at);
                self.procs[i].issue_succeeded();
                self.txn_seq += 1;
                self.stats.issued += 1;
            } else if self.retry.is_some() && !net.pm_alive(want.dst) {
                // Known-dead destination: fail the transaction at the
                // source instead of wasting network cycles on it.
                self.procs[i].issue_succeeded();
                self.stats.issued += 1;
                self.procs[i].retire();
                let book = self.retry.as_mut().expect("checked above");
                book.stats.dead_drops += 1;
                book.stats.gave_up += 1;
            } else if net.can_inject(pm, QueueClass::of(want.kind)) {
                self.txn_seq += 1;
                let flits = self.sizer.flits(want.kind);
                net.inject(
                    pm,
                    Packet {
                        txn: TxnId::new(self.txn_seq),
                        kind: want.kind,
                        src: pm,
                        dst: want.dst,
                        flits,
                        injected_at: want.issued_at,
                    },
                );
                if let Some(book) = self.retry.as_mut() {
                    book.track(
                        self.txn_seq,
                        OpenTxn {
                            pm,
                            dst: want.dst,
                            kind: want.kind,
                            flits,
                            issued_at: want.issued_at,
                            attempt: 1,
                        },
                        now,
                    );
                }
                self.procs[i].issue_succeeded();
                self.stats.issued += 1;
            } else {
                self.procs[i].issue_blocked();
                blocked += 1;
            }
        }
        if let Some(t) = net.tracer_mut() {
            t.count(Counter::TxnsIssued, self.stats.issued - before.issued);
            t.count(Counter::IssueBlocked, blocked);
            t.count(Counter::TxnsRetired, self.stats.retired - before.retired);
            t.count(
                Counter::TxnsLocalRetired,
                self.stats.local_retired - before.local_retired,
            );
            let rafter = self.retry.as_ref().map(|b| b.stats).unwrap_or_default();
            t.count(Counter::TxnsRetried, rafter.retries - rbefore.retries);
            t.count(Counter::TxnsFailed, rafter.gave_up - rbefore.gave_up);
        }
    }

    /// Expires open-transaction deadlines and reissues attempts whose
    /// backoff window has elapsed. No-op without a retry book.
    fn process_retries(&mut self, net: &mut dyn Interconnect, now: u64) {
        let Some(book) = self.retry.as_mut() else {
            return;
        };
        // Deadlines are pushed with a constant offset from a
        // non-decreasing clock, so only the front can be due.
        while let Some(&(due, txn, attempt)) = book.deadlines.front() {
            if due > now {
                break;
            }
            book.deadlines.pop_front();
            let timed_out = book.open.get(&txn).is_some_and(|e| e.attempt == attempt);
            if !timed_out {
                // Acknowledged, or superseded by a later attempt.
                continue;
            }
            let entry = book.open.remove(&txn).expect("presence checked");
            book.stats.timeouts += 1;
            if entry.attempt >= book.policy.max_attempts {
                book.stats.gave_up += 1;
                self.procs[entry.pm.index()].retire();
            } else {
                let due = book.backoff_until(now, entry.attempt);
                book.retry_at.push((
                    due,
                    OpenTxn {
                        attempt: entry.attempt + 1,
                        ..entry
                    },
                ));
            }
        }
        // Backoff dues are not monotone (they depend on the attempt
        // number), so scan; blocked reissues just stay for next cycle.
        let mut i = 0;
        while i < book.retry_at.len() {
            let (due, entry) = book.retry_at[i];
            if due > now {
                i += 1;
                continue;
            }
            if !net.pm_alive(entry.pm) || !net.pm_alive(entry.dst) {
                // An endpoint died while backing off: give up now.
                book.retry_at.swap_remove(i);
                book.stats.dead_drops += 1;
                book.stats.gave_up += 1;
                self.procs[entry.pm.index()].retire();
                continue;
            }
            if !net.can_inject(entry.pm, QueueClass::of(entry.kind)) {
                i += 1;
                continue;
            }
            book.retry_at.swap_remove(i);
            self.txn_seq += 1;
            net.inject(
                entry.pm,
                Packet {
                    txn: TxnId::new(self.txn_seq),
                    kind: entry.kind,
                    src: entry.pm,
                    dst: entry.dst,
                    flits: entry.flits,
                    injected_at: entry.issued_at,
                },
            );
            book.stats.retries += 1;
            book.track(self.txn_seq, entry, now);
        }
    }

    /// Delivery phase, run after `net.step`: requests go to the home
    /// memory, responses retire transactions and record latency.
    /// `net` is only consulted for its tracer (retirement counters and
    /// the outstanding-transactions gauge).
    pub fn post_cycle(
        &mut self,
        net: &mut dyn Interconnect,
        delivered: &[(NodeId, Packet)],
        now: u64,
        samples: &mut Vec<(u64, f64)>,
    ) {
        let mut retired = 0u64;
        for (dst, pkt) in delivered {
            if pkt.kind.is_request() {
                self.mems[dst.index()].accept(pkt, now);
            } else {
                if let Some(book) = self.retry.as_mut() {
                    if book.open.remove(&pkt.txn.raw()).is_none() {
                        // The id already timed out (and was retried or
                        // given up): the slot was settled then, so a
                        // second retire would corrupt accounting.
                        book.stats.stale_responses += 1;
                        continue;
                    }
                }
                self.procs[dst.index()].retire();
                self.stats.retired += 1;
                retired += 1;
                samples.push((now, (now - pkt.injected_at) as f64));
            }
        }
        if let Some(t) = net.tracer_mut() {
            t.count(Counter::TxnsRetired, retired);
            let outstanding: u64 = self.procs.iter().map(|p| u64::from(p.outstanding())).sum();
            t.gauge(Gauge::OutstandingTxns, outstanding as f64);
        }
    }
}

impl Snapshot for MmrpStats {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.issued);
        w.u64(self.retired);
        w.u64(self.local_retired);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MmrpStats {
            issued: r.u64()?,
            retired: r.u64()?,
            local_retired: r.u64()?,
        })
    }
}

impl SnapshotState for Mmrp {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.txn_seq);
        self.stats.save(w);
        w.usize(self.procs.len());
        for p in &self.procs {
            p.save_state(w);
        }
        w.usize(self.mems.len());
        for m in &self.mems {
            m.save_state(w);
        }
        // `local_scratch` is per-cycle scratch — empty between cycles.
        w.bool(self.retry.is_some());
        if let Some(book) = &self.retry {
            book.save_state(w);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.txn_seq = r.u64()?;
        self.stats = MmrpStats::load(r)?;
        let procs = r.usize()?;
        if procs != self.procs.len() {
            return Err(SnapError::Mismatch(format!(
                "snapshot has {procs} processors, workload has {}",
                self.procs.len()
            )));
        }
        for p in &mut self.procs {
            p.restore_state(r)?;
        }
        let mems = r.usize()?;
        if mems != self.mems.len() {
            return Err(SnapError::Mismatch(format!(
                "snapshot has {mems} memory modules, workload has {}",
                self.mems.len()
            )));
        }
        for m in &mut self.mems {
            m.restore_state(r)?;
        }
        let had_retry = r.bool()?;
        if had_retry != self.retry.is_some() {
            return Err(SnapError::Mismatch(format!(
                "snapshot retry layer {}, workload retry layer {}",
                if had_retry { "enabled" } else { "disabled" },
                if self.retry.is_some() {
                    "enabled"
                } else {
                    "disabled"
                },
            )));
        }
        if let Some(book) = self.retry.as_mut() {
            book.restore_state(r)?;
        }
        self.local_scratch.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringmesh_engine::StallError;
    use ringmesh_net::{CacheLineSize, PacketFormat, UtilizationReport};

    /// A zero-latency loopback "network": packets are delivered to
    /// their destination on the next step. Lets us test the driver's
    /// bookkeeping without a real interconnect.
    struct Loopback {
        pms: usize,
        queue: Vec<(NodeId, Packet)>,
        cycle: u64,
    }

    impl Interconnect for Loopback {
        fn num_pms(&self) -> usize {
            self.pms
        }
        fn cycle(&self) -> u64 {
            self.cycle
        }
        fn can_inject(&self, _pm: NodeId, _class: QueueClass) -> bool {
            true
        }
        fn inject(&mut self, _pm: NodeId, packet: Packet) {
            self.queue.push((packet.dst, packet));
        }
        fn step(&mut self, delivered: &mut Vec<(NodeId, Packet)>) -> Result<(), StallError> {
            delivered.append(&mut self.queue);
            self.cycle += 1;
            Ok(())
        }
        fn in_flight(&self) -> u64 {
            self.queue.len() as u64
        }
        fn utilization(&self) -> UtilizationReport {
            UtilizationReport::default()
        }
        fn reset_counters(&mut self) {}
    }

    fn mmrp(pms: u32, t: u32, r: f64) -> Mmrp {
        Mmrp::new(
            Placement::Linear { pms },
            WorkloadParams::paper_baseline()
                .with_outstanding(t)
                .with_region(r),
            MemoryParams {
                latency: 5,
                occupancy: 1,
            },
            PacketSizer {
                format: PacketFormat::RING,
                cache_line: CacheLineSize::B32,
            },
            7,
        )
    }

    /// A loopback with fault knobs: fixed delivery delay, dropping the
    /// first N requests, blackholing requests to one PM, or reporting a
    /// PM as fail-stopped. Exercises the retry layer end to end.
    struct FaultyLoopback {
        pms: usize,
        queue: Vec<(u64, NodeId, Packet)>,
        cycle: u64,
        delay: u64,
        drop_first: u32,
        dropped: u32,
        blackhole: Option<NodeId>,
        dead: Option<NodeId>,
    }

    impl FaultyLoopback {
        fn new(pms: usize) -> Self {
            FaultyLoopback {
                pms,
                queue: Vec::new(),
                cycle: 0,
                delay: 0,
                drop_first: 0,
                dropped: 0,
                blackhole: None,
                dead: None,
            }
        }
    }

    impl Interconnect for FaultyLoopback {
        fn num_pms(&self) -> usize {
            self.pms
        }
        fn cycle(&self) -> u64 {
            self.cycle
        }
        fn can_inject(&self, _pm: NodeId, _class: QueueClass) -> bool {
            true
        }
        fn inject(&mut self, _pm: NodeId, packet: Packet) {
            if packet.kind.is_request()
                && (self.dropped < self.drop_first || self.blackhole == Some(packet.dst))
            {
                self.dropped += 1;
                return;
            }
            self.queue
                .push((self.cycle + self.delay, packet.dst, packet));
        }
        fn step(&mut self, delivered: &mut Vec<(NodeId, Packet)>) -> Result<(), StallError> {
            let now = self.cycle;
            let mut i = 0;
            while i < self.queue.len() {
                if self.queue[i].0 <= now {
                    let (_, dst, pkt) = self.queue.swap_remove(i);
                    delivered.push((dst, pkt));
                } else {
                    i += 1;
                }
            }
            self.cycle += 1;
            Ok(())
        }
        fn in_flight(&self) -> u64 {
            self.queue.len() as u64
        }
        fn pm_alive(&self, pm: NodeId) -> bool {
            self.dead != Some(pm)
        }
        fn utilization(&self) -> UtilizationReport {
            UtilizationReport::default()
        }
        fn reset_counters(&mut self) {}
    }

    fn run(wl: &mut Mmrp, net: &mut dyn Interconnect, cycles: u64) -> Vec<(u64, f64)> {
        let mut samples = Vec::new();
        let mut delivered = Vec::new();
        for _ in 0..cycles {
            let now = net.cycle();
            wl.pre_cycle(net, now, &mut samples);
            delivered.clear();
            net.step(&mut delivered).unwrap();
            let after = net.cycle();
            wl.post_cycle(net, &delivered, after, &mut samples);
        }
        samples
    }

    #[test]
    fn transactions_complete_with_expected_latency() {
        let mut net = Loopback {
            pms: 4,
            queue: Vec::new(),
            cycle: 0,
        };
        let mut wl = mmrp(4, 4, 1.0);
        let samples = run(&mut wl, &mut net, 500);
        assert!(!samples.is_empty());
        // Round trip on the loopback: 1 cycle out + 5 memory + 1 back,
        // give or take injection-cycle accounting; all remote samples
        // must be small and identical, locals exactly the memory time.
        for &(_, lat) in &samples {
            assert!((5.0..=9.0).contains(&lat), "latency {lat}");
        }
    }

    #[test]
    fn issue_rate_matches_miss_rate() {
        let mut net = Loopback {
            pms: 8,
            queue: Vec::new(),
            cycle: 0,
        };
        let mut wl = mmrp(8, 4, 1.0);
        run(&mut wl, &mut net, 2_500);
        // 8 processors * 2500 cycles * C=0.04 = 800 expected issues;
        // the fast loopback never blocks, so we should be close.
        let issued = wl.stats().issued;
        assert!((760..=800).contains(&issued), "issued {issued}");
    }

    #[test]
    fn conservation_on_loopback() {
        let mut net = Loopback {
            pms: 6,
            queue: Vec::new(),
            cycle: 0,
        };
        let mut wl = mmrp(6, 2, 0.5);
        run(&mut wl, &mut net, 1_000);
        let s = wl.stats();
        assert!(s.retired <= s.issued);
        assert!(
            s.issued - s.retired <= 6 * 2,
            "at most T per processor in flight"
        );
        assert_eq!(wl.outstanding(), s.issued - s.retired);
    }

    #[test]
    fn local_accesses_counted_separately() {
        // R small on a big machine still includes the local PM, so some
        // local traffic must appear.
        let mut net = Loopback {
            pms: 16,
            queue: Vec::new(),
            cycle: 0,
        };
        let mut wl = mmrp(16, 4, 0.2);
        run(&mut wl, &mut net, 2_000);
        let s = wl.stats();
        assert!(s.local_retired > 0);
        assert!(s.local_retired < s.retired, "remote traffic must dominate");
    }

    #[test]
    fn dropped_requests_are_retried_to_completion() {
        let mut net = FaultyLoopback::new(4);
        net.drop_first = 5;
        let mut wl = mmrp(4, 4, 1.0).with_retry(RetryPolicy {
            timeout: 30,
            max_attempts: 4,
            backoff: 8,
        });
        let samples = run(&mut wl, &mut net, 2_000);
        let r = wl.retry_stats();
        assert!(r.timeouts >= 5, "timeouts {}", r.timeouts);
        assert!(r.retries >= 5, "retries {}", r.retries);
        assert_eq!(r.gave_up, 0, "retries must recover every drop");
        // Latency samples for retried transactions span all attempts,
        // so at least one must exceed the timeout.
        assert!(samples.iter().any(|&(_, lat)| lat >= 30.0));
        let s = wl.stats();
        assert_eq!(wl.outstanding(), s.issued - s.retired);
    }

    #[test]
    fn blackholed_destination_exhausts_attempts_without_leaking_slots() {
        let mut net = FaultyLoopback::new(4);
        net.blackhole = Some(NodeId::new(1));
        let mut wl = mmrp(4, 2, 1.0).with_retry(RetryPolicy {
            timeout: 20,
            max_attempts: 3,
            backoff: 4,
        });
        run(&mut wl, &mut net, 3_000);
        let (s, r) = (wl.stats(), wl.retry_stats());
        assert!(r.gave_up > 0, "blackholed transactions must give up");
        assert!(r.timeouts >= 3 * r.gave_up, "every attempt timed out first");
        // Give-ups release the processor slot without a retired sample:
        // the outstanding count must reconcile exactly, or slots leak
        // and the workload would eventually deadlock.
        assert_eq!(wl.outstanding(), s.issued - s.retired - r.gave_up);
        assert!(s.issued > 100, "issue flow must keep moving");
    }

    #[test]
    fn dead_destination_fails_fast() {
        let mut net = FaultyLoopback::new(4);
        net.dead = Some(NodeId::new(1));
        let mut wl = mmrp(4, 2, 1.0).with_retry(RetryPolicy::default());
        run(&mut wl, &mut net, 1_000);
        let (s, r) = (wl.stats(), wl.retry_stats());
        assert!(r.dead_drops > 0, "traffic to the dead PM must be dropped");
        assert!(r.gave_up >= r.dead_drops);
        assert_eq!(r.timeouts, 0, "fail-fast path never waits out a timeout");
        assert_eq!(wl.outstanding(), s.issued - s.retired - r.gave_up);
    }

    #[test]
    fn late_responses_are_stale_not_double_retired() {
        let mut net = FaultyLoopback::new(4);
        net.delay = 50; // longer than the timeout: every response is late
        let mut wl = mmrp(4, 2, 1.0).with_retry(RetryPolicy {
            timeout: 20,
            max_attempts: 2,
            backoff: 4,
        });
        run(&mut wl, &mut net, 1_500);
        let (s, r) = (wl.stats(), wl.retry_stats());
        assert!(
            r.stale_responses > 0,
            "late responses must be flagged stale"
        );
        assert!(r.gave_up > 0);
        assert_eq!(wl.outstanding(), s.issued - s.retired - r.gave_up);
    }

    #[test]
    fn retry_disabled_runs_are_unchanged() {
        // The retry book is opt-in; with it absent the driver must
        // behave byte-identically to the pre-retry code path.
        let mut plain = Loopback {
            pms: 4,
            queue: Vec::new(),
            cycle: 0,
        };
        let mut wl_plain = mmrp(4, 4, 1.0);
        let a = run(&mut wl_plain, &mut plain, 500);
        let mut faulty = FaultyLoopback::new(4);
        let mut wl_retry = mmrp(4, 4, 1.0).with_retry(RetryPolicy::default());
        let b = run(&mut wl_retry, &mut faulty, 500);
        assert_eq!(a, b, "fault-free run must not depend on the retry layer");
        assert_eq!(wl_plain.stats(), wl_retry.stats());
        assert_eq!(wl_retry.retry_stats(), RetryStats::default());
    }

    #[test]
    fn samples_carry_completion_timestamps() {
        let mut net = Loopback {
            pms: 4,
            queue: Vec::new(),
            cycle: 0,
        };
        let mut wl = mmrp(4, 4, 1.0);
        let samples = run(&mut wl, &mut net, 300);
        assert!(
            samples.windows(2).all(|w| w[0].0 <= w[1].0),
            "timestamps non-decreasing"
        );
        assert!(samples.last().unwrap().0 <= 300);
    }
}
