//! The per-PM memory module.
//!
//! Each PM owns a contiguous slice of the flat global address space;
//! its memory module services read/write requests after a fixed access
//! latency (optionally rate-limited by an occupancy interval between
//! service starts) and sends the response packet back through the
//! network. Local accesses take the same memory timing but bypass the
//! network entirely (§2 of the paper).

use std::collections::VecDeque;

use ringmesh_net::{Interconnect, NodeId, Packet, QueueClass};
use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotState};

use crate::{MemoryParams, PacketSizer};

/// One PM's memory module.
#[derive(Debug)]
pub struct MemoryModule {
    pm: NodeId,
    params: MemoryParams,
    sizer: PacketSizer,
    /// Responses waiting for their ready time / a free NIC queue slot,
    /// in ready-time order (service starts are monotonic).
    pending: VecDeque<(u64, Packet)>,
    /// Local-access completions: `(ready_at, issued_at)`.
    local: VecDeque<(u64, u64)>,
    last_start: Option<u64>,
    served: u64,
}

impl MemoryModule {
    /// Creates the memory module of `pm`.
    pub(crate) fn new(pm: NodeId, params: MemoryParams, sizer: PacketSizer) -> Self {
        MemoryModule {
            pm,
            params,
            sizer,
            pending: VecDeque::new(),
            local: VecDeque::new(),
            last_start: None,
            served: 0,
        }
    }

    /// Total requests accepted (remote + local).
    pub fn served(&self) -> u64 {
        self.served
    }

    fn next_start(&mut self, now: u64) -> u64 {
        let start = match self.last_start {
            Some(last) => now.max(last + u64::from(self.params.occupancy)),
            None => now,
        };
        self.last_start = Some(start);
        self.served += 1;
        start
    }

    /// Accepts a remote request delivered by the network at `now`; the
    /// response becomes ready after the access latency.
    pub(crate) fn accept(&mut self, req: &Packet, now: u64) {
        debug_assert_eq!(req.dst, self.pm, "request delivered to wrong memory");
        debug_assert!(req.kind.is_request());
        let ready = self.next_start(now) + u64::from(self.params.latency);
        let kind = req.kind.response();
        let resp = Packet {
            txn: req.txn,
            kind,
            src: self.pm,
            dst: req.src,
            flits: self.sizer.flits(kind),
            // Propagate the original issue time so round-trip latency
            // can be computed at delivery without a side table.
            injected_at: req.injected_at,
        };
        self.pending.push_back((ready, resp));
    }

    /// Accepts a local access at `now` whose measured issue instant is
    /// `issued_at`; it completes after the access latency without
    /// touching the network.
    pub(crate) fn accept_local(&mut self, now: u64, issued_at: u64) {
        let ready = self.next_start(now) + u64::from(self.params.latency);
        self.local.push_back((ready, issued_at));
    }

    /// Injects ready responses into the network while the NIC response
    /// queue has room.
    pub(crate) fn inject_ready(&mut self, net: &mut dyn Interconnect, now: u64) {
        while let Some(&(ready, _)) = self.pending.front() {
            if ready <= now && net.can_inject(self.pm, QueueClass::Response) {
                let (_, mut resp) = self.pending.pop_front().expect("front checked");
                // Keep the issue timestamp intact; the packet's own
                // network entry time is immaterial to the measurement.
                let _ = &mut resp;
                net.inject(self.pm, resp);
            } else {
                break;
            }
        }
    }

    /// Pops local accesses completing by `now`, returning their issue
    /// times.
    pub(crate) fn pop_local_ready(&mut self, now: u64, out: &mut Vec<u64>) {
        while let Some(&(ready, issued)) = self.local.front() {
            if ready <= now {
                self.local.pop_front();
                out.push(issued);
            } else {
                break;
            }
        }
    }
}

impl SnapshotState for MemoryModule {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u32(self.pm.raw());
        self.pending.save(w);
        self.local.save(w);
        self.last_start.save(w);
        w.u64(self.served);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let pm = r.u32()?;
        if pm != self.pm.raw() {
            return Err(SnapError::Mismatch(format!(
                "memory snapshot is for PM {pm}, restoring into PM {}",
                self.pm.raw()
            )));
        }
        self.pending = Snapshot::load(r)?;
        self.local = Snapshot::load(r)?;
        self.last_start = Snapshot::load(r)?;
        self.served = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringmesh_net::{CacheLineSize, PacketFormat, PacketKind, TxnId};

    fn sizer() -> PacketSizer {
        PacketSizer {
            format: PacketFormat::RING,
            cache_line: CacheLineSize::B32,
        }
    }

    fn req(txn: u64, src: u32, dst: u32, kind: PacketKind) -> Packet {
        Packet {
            txn: TxnId::new(txn),
            kind,
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            flits: 1,
            injected_at: 5,
        }
    }

    #[test]
    fn read_produces_data_response_after_latency() {
        let mut m = MemoryModule::new(
            NodeId::new(1),
            MemoryParams {
                latency: 10,
                occupancy: 1,
            },
            sizer(),
        );
        m.accept(&req(7, 0, 1, PacketKind::ReadReq), 100);
        let (ready, resp) = m.pending.front().copied().unwrap();
        assert_eq!(ready, 110);
        assert_eq!(resp.kind, PacketKind::ReadResp);
        assert_eq!(resp.src, NodeId::new(1));
        assert_eq!(resp.dst, NodeId::new(0));
        assert_eq!(resp.flits, 3); // 32B line on the ring
        assert_eq!(resp.injected_at, 5, "issue time propagated");
    }

    #[test]
    fn write_produces_header_only_ack() {
        let mut m = MemoryModule::new(NodeId::new(1), MemoryParams::default(), sizer());
        m.accept(&req(7, 0, 1, PacketKind::WriteReq), 0);
        let (_, resp) = m.pending.front().copied().unwrap();
        assert_eq!(resp.kind, PacketKind::WriteResp);
        assert_eq!(resp.flits, 1);
    }

    #[test]
    fn occupancy_serializes_service_starts() {
        let mut m = MemoryModule::new(
            NodeId::new(0),
            MemoryParams {
                latency: 10,
                occupancy: 4,
            },
            sizer(),
        );
        m.accept(&req(1, 1, 0, PacketKind::ReadReq), 0);
        m.accept(&req(2, 1, 0, PacketKind::ReadReq), 0);
        m.accept(&req(3, 1, 0, PacketKind::ReadReq), 0);
        let readies: Vec<u64> = m.pending.iter().map(|&(r, _)| r).collect();
        assert_eq!(readies, vec![10, 14, 18]);
    }

    #[test]
    fn local_accesses_complete_after_latency() {
        let mut m = MemoryModule::new(
            NodeId::new(0),
            MemoryParams {
                latency: 8,
                occupancy: 1,
            },
            sizer(),
        );
        m.accept_local(50, 50);
        let mut out = Vec::new();
        m.pop_local_ready(57, &mut out);
        assert!(out.is_empty());
        m.pop_local_ready(58, &mut out);
        assert_eq!(out, vec![50]);
    }

    #[test]
    fn served_counts_all_accesses() {
        let mut m = MemoryModule::new(NodeId::new(0), MemoryParams::default(), sizer());
        m.accept(&req(1, 1, 0, PacketKind::ReadReq), 0);
        m.accept_local(0, 0);
        assert_eq!(m.served(), 2);
    }
}
