//! `ringmesh-snap` — a minimal, dependency-free binary snapshot codec.
//!
//! Deterministic checkpoint/resume needs every piece of mutable
//! simulation state to round-trip through bytes *exactly*: a resumed
//! run must be bit-identical to one that never stopped. This crate
//! provides the codec the rest of the workspace builds on:
//!
//! * [`SnapWriter`] / [`SnapReader`] — little-endian, length-prefixed
//!   primitives with checked reads (no panics on truncated input);
//! * [`Snapshot`] — value types that serialize whole (counters,
//!   packets, queues of plain data);
//! * [`SnapshotState`] — stateful components that restore *in place*
//!   into a freshly rebuilt instance (networks re-derive their
//!   immutable topology from configuration and only their mutable
//!   state travels through the checkpoint);
//! * [`Fingerprint`] — a 64-bit FNV-1a accumulator used to compare
//!   run outputs bit-for-bit (cache verification, resume validation).
//!
//! The container format is versioned with a magic header
//! ([`write_header`]/[`read_header`]) so stale checkpoint files are
//! rejected instead of misinterpreted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Magic bytes opening every snapshot container.
pub const MAGIC: &[u8; 6] = b"RMSNAP";

/// Current container format version.
pub const VERSION: u16 = 2;

/// Error raised when decoding a snapshot fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before the expected value.
    Eof,
    /// The input decoded to an invalid value (bad tag, bad magic...).
    Corrupt(String),
    /// The container version or section label does not match.
    Mismatch(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Eof => write!(f, "snapshot truncated"),
            SnapError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapError::Mismatch(what) => write!(f, "snapshot mismatch: {what}"),
        }
    }
}

impl Error for SnapError {}

/// Append-only byte sink for snapshot encoding.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its raw IEEE-754 bits (bit-exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Checked cursor over snapshot bytes.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Eof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `f64` from raw IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `usize` (stored as `u64`), rejecting values that do not
    /// fit the platform or are absurdly large for a length prefix.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt(format!("length {v} overflows usize")))
    }

    /// Reads a `bool`, rejecting bytes other than 0/1.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Corrupt(format!("bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::Corrupt("non-UTF-8 string".into()))
    }
}

/// Writes the versioned container header with a free-form `kind` label
/// (e.g. `"checkpoint"`), so different snapshot species cannot be
/// confused for one another.
pub fn write_header(w: &mut SnapWriter, kind: &str) {
    w.bytes(MAGIC);
    w.u16(VERSION);
    w.str(kind);
}

/// Reads and validates the container header, expecting `kind`.
///
/// # Errors
///
/// Returns [`SnapError`] on bad magic, version or kind.
pub fn read_header(r: &mut SnapReader<'_>, kind: &str) -> Result<(), SnapError> {
    let magic = r.bytes()?;
    if magic != MAGIC {
        return Err(SnapError::Corrupt("bad magic".into()));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(SnapError::Mismatch(format!(
            "container version {version}, expected {VERSION}"
        )));
    }
    let found = r.str()?;
    if found != kind {
        return Err(SnapError::Mismatch(format!(
            "snapshot kind {found:?}, expected {kind:?}"
        )));
    }
    Ok(())
}

/// A value that serializes whole and reconstructs from bytes.
pub trait Snapshot: Sized {
    /// Appends this value's encoding to `w`.
    fn save(&self, w: &mut SnapWriter);
    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on truncated or invalid input.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

/// A component that restores *in place*: the caller rebuilds the
/// immutable skeleton (topology, configuration, capacities) and the
/// snapshot only carries the mutable state poured back into it.
pub trait SnapshotState {
    /// Appends this component's mutable state to `w`.
    fn save_state(&self, w: &mut SnapWriter);
    /// Restores mutable state from `r` into `self`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on truncated or invalid input, or when the
    /// snapshot does not fit this instance's shape (e.g. a different
    /// topology size).
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

macro_rules! snapshot_prim {
    ($ty:ty, $w:ident, $r:ident) => {
        impl Snapshot for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.$w(*self);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                r.$r()
            }
        }
    };
}

snapshot_prim!(u8, u8, u8);
snapshot_prim!(u16, u16, u16);
snapshot_prim!(u32, u32, u32);
snapshot_prim!(u64, u64, u64);
snapshot_prim!(i64, i64, i64);
snapshot_prim!(f64, f64, f64);
snapshot_prim!(usize, usize, usize);
snapshot_prim!(bool, bool, bool);

impl Snapshot for String {
    fn save(&self, w: &mut SnapWriter) {
        w.str(self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.str()
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            b => Err(SnapError::Corrupt(format!("Option tag {b}"))),
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.usize()?;
        // Guard capacity against corrupt length prefixes: grow as we
        // decode rather than trusting `n` up front.
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.usize()?;
        let mut out = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<T: Snapshot, const N: usize> Snapshot for [T; N] {
    fn save(&self, w: &mut SnapWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::load(r)?);
        }
        out.try_into()
            .map_err(|_| SnapError::Corrupt("array length".into()))
    }
}

/// Streaming 64-bit FNV-1a hash, used as the bit-exactness fingerprint
/// for run results and cached artifacts.
///
/// # Example
///
/// ```
/// use ringmesh_snap::Fingerprint;
///
/// let mut a = Fingerprint::new();
/// a.update(b"hello");
/// assert_eq!(a.finish(), Fingerprint::of(b"hello"));
/// assert_ne!(Fingerprint::of(b"hello"), Fingerprint::of(b"hellp"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fingerprint {
    /// Creates a fresh accumulator.
    pub fn new() -> Self {
        Fingerprint { state: FNV_OFFSET }
    }

    /// Hashes `bytes` in one call.
    pub fn of(bytes: &[u8]) -> u64 {
        let mut f = Fingerprint::new();
        f.update(bytes);
        f.finish()
    }

    /// Absorbs a byte slice.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by its raw bits, so fingerprint equality means
    /// bit-exact equality (including the sign of zero).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string (length-prefixed, so concatenation cannot
    /// collide across field boundaries).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.update(s.as_bytes());
    }

    /// The accumulated 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// Formats a fingerprint the way every surface of the suite prints it.
pub fn hex64(v: u64) -> String {
    format!("{v:016x}")
}

/// Parses a [`hex64`]-formatted digest back into its value. Strict
/// inverse: exactly 16 lowercase hex digits, nothing else — the cache
/// integrity footer and the batch journal reject anything looser as
/// corruption rather than guessing.
pub fn parse_hex64(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(u64::MAX - 3);
        w.i64(-42);
        w.f64(-0.0);
        w.usize(99);
        w.bool(true);
        w.str("hé");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.usize().unwrap(), 99);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hé");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        assert_eq!(r.u64(), Err(SnapError::Eof));
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<u64> = vec![1, 2, 3];
        let d: VecDeque<(u64, bool)> = VecDeque::from(vec![(9, true), (0, false)]);
        let o: Option<String> = Some("x".into());
        let arr: [i64; 3] = [-1, 0, 1];
        let mut w = SnapWriter::new();
        v.save(&mut w);
        d.save(&mut w);
        o.save(&mut w);
        None::<u32>.save(&mut w);
        arr.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(Vec::<u64>::load(&mut r).unwrap(), v);
        assert_eq!(VecDeque::<(u64, bool)>::load(&mut r).unwrap(), d);
        assert_eq!(Option::<String>::load(&mut r).unwrap(), o);
        assert_eq!(Option::<u32>::load(&mut r).unwrap(), None);
        assert_eq!(<[i64; 3]>::load(&mut r).unwrap(), arr);
    }

    #[test]
    fn header_checks_magic_version_kind() {
        let mut w = SnapWriter::new();
        write_header(&mut w, "checkpoint");
        w.u64(5);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        read_header(&mut r, "checkpoint").unwrap();
        assert_eq!(r.u64().unwrap(), 5);

        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            read_header(&mut r, "result"),
            Err(SnapError::Mismatch(_))
        ));

        let mut garbage = bytes.clone();
        garbage[8] ^= 0xff; // flip a magic byte (after the length prefix)
        let mut r = SnapReader::new(&garbage);
        assert!(matches!(
            read_header(&mut r, "checkpoint"),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_bool_rejected() {
        let bytes = [2u8];
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.bool(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_stable() {
        let mut a = Fingerprint::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fingerprint::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        // Known FNV-1a vector: empty input hashes to the offset basis.
        assert_eq!(Fingerprint::of(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hex64(0xab), "00000000000000ab");
        assert_eq!(parse_hex64("00000000000000ab"), Some(0xab));
        assert_eq!(parse_hex64(&hex64(u64::MAX)), Some(u64::MAX));
        for bad in [
            "",
            "ab",
            "00000000000000AB",
            "00000000000000zz",
            "00000000000000ab0",
        ] {
            assert_eq!(parse_hex64(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn str_fingerprint_is_prefix_safe() {
        let mut a = Fingerprint::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
