//! Regenerates the paper's table1 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench table1_memory`.
fn main() {
    ringmesh_bench::run("table1");
}
