//! Criterion benchmarks for the intra-cycle parallel mesh kernel.
//!
//! Two families:
//!
//! * **Layout microbenchmark** — the per-port state walk that dominates
//!   the mesh step, written twice: over the pre-refactor
//!   array-of-structs layout (one struct per router, ports inline) and
//!   over the shipped structure-of-arrays layout (one flat array per
//!   field, indexed `node * 5 + port`). Same arithmetic, same access
//!   pattern as `MeshShard::compute`'s port scan, so the delta is pure
//!   cache behaviour.
//! * **End-to-end kernel scaling** — the full mesh simulation at fixed
//!   intra-cycle thread counts (1, 2, 4), the numbers behind the
//!   `threads` matrix in `BENCH_RUN.json`.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use ringmesh::{NetworkSpec, SimParams, System, SystemConfig};
use ringmesh_net::CacheLineSize;

const PORTS: usize = 5;
const NODES: usize = 49; // mesh 7x7

/// The pre-refactor shape: every router carried its port state inline,
/// padded by the colder fields that travelled with it (queues,
/// assembler, drain bookkeeping ≈ 200+ bytes), so a port scan touched
/// one cache line per router even when it only needed a few bytes.
struct AosRouter {
    occupancy: [u32; PORTS],
    route_of: [u8; PORTS],
    conn: [u8; PORTS],
    rr: [u8; PORTS],
    go: [bool; PORTS],
    _cold: [u64; 28], // stand-in for the cold per-router fields
}

/// The shipped shape: one flat array per field, `node * PORTS + port`.
struct SoaShard {
    occupancy: Vec<u32>,
    route_of: Vec<u8>,
    conn: Vec<u8>,
    rr: Vec<u8>,
    go: Vec<bool>,
}

/// One arbitration-ish pass: for every output port pick the
/// round-robin-first input with flits and a matching route, advance
/// the rr pointer, and latch a go bit. Identical maths in both
/// layouts; only memory layout differs.
fn aos_pass(routers: &mut [AosRouter]) -> u64 {
    let mut granted = 0u64;
    for r in routers.iter_mut() {
        for out in 0..PORTS {
            let start = r.rr[out] as usize;
            for k in 0..PORTS {
                let inp = (start + k) % PORTS;
                if r.occupancy[inp] > 0 && r.route_of[inp] as usize == out && r.conn[inp] == 0 {
                    r.occupancy[inp] -= 1;
                    r.rr[out] = ((inp + 1) % PORTS) as u8;
                    r.go[out] = !r.go[out];
                    granted += 1;
                    break;
                }
            }
        }
    }
    granted
}

fn soa_pass(s: &mut SoaShard) -> u64 {
    let mut granted = 0u64;
    for node in 0..NODES {
        let b = node * PORTS;
        for out in 0..PORTS {
            let start = s.rr[b + out] as usize;
            for k in 0..PORTS {
                let inp = (start + k) % PORTS;
                if s.occupancy[b + inp] > 0
                    && s.route_of[b + inp] as usize == out
                    && s.conn[b + inp] == 0
                {
                    s.occupancy[b + inp] -= 1;
                    s.rr[b + out] = ((inp + 1) % PORTS) as u8;
                    s.go[b + out] = !s.go[b + out];
                    granted += 1;
                    break;
                }
            }
        }
    }
    granted
}

/// Deterministic pseudo-random fill so both layouts walk identical
/// state (no RNG dependency in the bench harness).
fn mix(i: usize) -> u32 {
    let x = (i as u32).wrapping_mul(0x9e37_79b9) ^ 0x85eb_ca6b;
    x ^ (x >> 13)
}

fn seed_aos() -> Vec<AosRouter> {
    (0..NODES)
        .map(|n| {
            let mut r = AosRouter {
                occupancy: [0; PORTS],
                route_of: [0; PORTS],
                conn: [0; PORTS],
                rr: [0; PORTS],
                go: [false; PORTS],
                _cold: [0; 28],
            };
            for p in 0..PORTS {
                let v = mix(n * PORTS + p);
                r.occupancy[p] = v % 7;
                r.route_of[p] = (v % PORTS as u32) as u8;
                r.conn[p] = (v >> 8).is_multiple_of(3) as u8;
            }
            r
        })
        .collect()
}

fn seed_soa() -> SoaShard {
    let mut s = SoaShard {
        occupancy: vec![0; NODES * PORTS],
        route_of: vec![0; NODES * PORTS],
        conn: vec![0; NODES * PORTS],
        rr: vec![0; NODES * PORTS],
        go: vec![false; NODES * PORTS],
    };
    for i in 0..NODES * PORTS {
        let v = mix(i);
        s.occupancy[i] = v % 7;
        s.route_of[i] = (v % PORTS as u32) as u8;
        s.conn[i] = (v >> 8).is_multiple_of(3) as u8;
    }
    s
}

fn layout_benches(c: &mut Criterion) {
    // Sanity first: same state, same maths, same grant count.
    let (mut a, mut s) = (seed_aos(), seed_soa());
    assert_eq!(aos_pass(&mut a), soa_pass(&mut s));

    c.bench_function("layout_aos_port_scan_7x7_100_passes", |b| {
        b.iter_batched(
            seed_aos,
            |mut routers| {
                let mut total = 0u64;
                for _ in 0..100 {
                    total += aos_pass(&mut routers);
                }
                black_box(total)
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("layout_soa_port_scan_7x7_100_passes", |b| {
        b.iter_batched(
            seed_soa,
            |mut shard| {
                let mut total = 0u64;
                for _ in 0..100 {
                    total += soa_pass(&mut shard);
                }
                black_box(total)
            },
            BatchSize::SmallInput,
        )
    });
}

fn kernel_scaling_benches(c: &mut Criterion) {
    let cfg = SystemConfig::new(NetworkSpec::mesh(7), CacheLineSize::B64).with_sim(SimParams {
        warmup: 500,
        batch_cycles: 500,
        batches: 2,
    });
    for threads in [1usize, 2, 4] {
        let cfg = cfg.clone();
        c.bench_function(&format!("mesh_7x7_kernel_{threads}_threads"), |b| {
            b.iter_batched(
                || {
                    let mut sys = System::new(cfg.clone()).expect("valid config");
                    sys.set_kernel_threads(threads);
                    sys
                },
                |sys| sys.run().expect("no deadlock"),
                BatchSize::SmallInput,
            )
        });
    }
}

fn benches(c: &mut Criterion) {
    layout_benches(c);
    kernel_scaling_benches(c);
}

criterion_group! {
    name = soa_kernel;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(soa_kernel);
