//! Regenerates the paper's fig19 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig19_double_speed`.
fn main() {
    ringmesh_bench::run("fig19");
}
