//! Regenerates the paper's fig08 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig08_two_level_util`.
fn main() {
    ringmesh_bench::run("fig08");
}
