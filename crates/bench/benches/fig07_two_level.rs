//! Regenerates the paper's fig07 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig07_two_level`.
fn main() {
    ringmesh_bench::run("fig07");
}
