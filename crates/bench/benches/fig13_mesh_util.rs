//! Regenerates the paper's fig13 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig13_mesh_util`.
fn main() {
    ringmesh_bench::run("fig13");
}
