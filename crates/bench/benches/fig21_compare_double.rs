//! Regenerates the paper's fig21 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig21_compare_double`.
fn main() {
    ringmesh_bench::run("fig21");
}
