//! Regenerates the paper's fig12 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig12_mesh_latency`.
fn main() {
    ringmesh_bench::run("fig12");
}
