//! Regenerates the paper's fig10 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig10_three_level_util`.
fn main() {
    ringmesh_bench::run("fig10");
}
