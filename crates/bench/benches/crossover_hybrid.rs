//! Regenerates the Ring-Mesh crossover study (ring vs slotted vs mesh
//! vs hybrid at matched PM counts). Run with
//! `cargo bench -p ringmesh-bench --bench crossover_hybrid`.
fn main() {
    ringmesh_bench::run("crossover");
}
