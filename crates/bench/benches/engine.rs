//! Criterion micro-benchmarks: raw step throughput of the two network
//! simulators under a steady synthetic load, and the M-MRP driver loop.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ringmesh::{NetworkSpec, SimParams, System, SystemConfig};
use ringmesh_net::{BufferRegime, CacheLineSize};

fn bench_point(c: &mut Criterion, name: &str, network: NetworkSpec) {
    // One short closed-loop measurement per iteration: building the
    // system is cheap relative to the 1500 simulated cycles.
    let cfg = SystemConfig::new(network, CacheLineSize::B64).with_sim(SimParams {
        warmup: 500,
        batch_cycles: 500,
        batches: 2,
    });
    c.bench_function(name, |b| {
        b.iter_batched(
            || System::new(cfg.clone()).expect("valid config"),
            |system| system.run().expect("no deadlock"),
            BatchSize::SmallInput,
        )
    });
}

fn benches(c: &mut Criterion) {
    bench_point(
        c,
        "ring_3x3x6_1500_cycles",
        NetworkSpec::ring("3:3:6".parse().expect("valid spec")),
    );
    bench_point(
        c,
        "ring_3x3x6_double_speed_1500_cycles",
        NetworkSpec::Ring {
            spec: "3:3:6".parse().expect("valid spec"),
            speedup: 2,
        },
    );
    bench_point(
        c,
        "mesh_7x7_1500_cycles",
        NetworkSpec::Mesh {
            side: 7,
            buffers: BufferRegime::FourFlit,
        },
    );
}

criterion_group! {
    name = engine;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(engine);
