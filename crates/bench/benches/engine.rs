//! Criterion micro-benchmarks: raw step throughput of the two network
//! simulators under a steady synthetic load, and the M-MRP driver loop.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ringmesh::{NetworkSpec, SimParams, System, SystemConfig};
use ringmesh_net::{BufferRegime, CacheLineSize};

use ringmesh_workload::WorkloadParams;

fn bench_cfg(network: NetworkSpec) -> SystemConfig {
    SystemConfig::new(network, CacheLineSize::B64).with_sim(SimParams {
        warmup: 500,
        batch_cycles: 500,
        batches: 2,
    })
}

fn bench_system(c: &mut Criterion, name: &str, cfg: SystemConfig) {
    // One short closed-loop measurement per iteration: building the
    // system is cheap relative to the 1500 simulated cycles.
    c.bench_function(name, |b| {
        b.iter_batched(
            || System::new(cfg.clone()).expect("valid config"),
            |system| system.run().expect("no deadlock"),
            BatchSize::SmallInput,
        )
    });
}

fn bench_point(c: &mut Criterion, name: &str, network: NetworkSpec) {
    bench_system(c, name, bench_cfg(network));
}

fn benches(c: &mut Criterion) {
    bench_point(
        c,
        "ring_3x3x6_1500_cycles",
        NetworkSpec::ring("3:3:6".parse().expect("valid spec")),
    );
    bench_point(
        c,
        "ring_3x3x6_double_speed_1500_cycles",
        NetworkSpec::Ring {
            spec: "3:3:6".parse().expect("valid spec"),
            speedup: 2,
        },
    );
    bench_point(
        c,
        "mesh_7x7_1500_cycles",
        NetworkSpec::Mesh {
            side: 7,
            buffers: BufferRegime::FourFlit,
        },
    );
    // The slotted-ring extension: multi-flit reassembly through the
    // pooled flit-train buffers, the precomputed service order and the
    // flat route table all sit on this step path.
    bench_point(
        c,
        "slotted_ring_3x3x6_1500_cycles",
        NetworkSpec::SlottedRing {
            spec: "3:3:6".parse().expect("valid spec"),
        },
    );
    // Light load (strong locality, one outstanding transaction): most
    // routers idle most cycles, so this case isolates the active-node
    // worklists that skip quiescent routers and ring stations.
    let light = WorkloadParams::paper_baseline()
        .with_region(0.1)
        .with_outstanding(1);
    bench_system(
        c,
        "mesh_7x7_light_load_1500_cycles",
        bench_cfg(NetworkSpec::Mesh {
            side: 7,
            buffers: BufferRegime::FourFlit,
        })
        .with_workload(light),
    );
    bench_system(
        c,
        "ring_3x3x6_light_load_1500_cycles",
        bench_cfg(NetworkSpec::ring("3:3:6".parse().expect("valid spec"))).with_workload(light),
    );
}

criterion_group! {
    name = engine;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(engine);
