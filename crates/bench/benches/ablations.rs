//! Ablation studies on the reproduction's design decisions (see
//! DESIGN.md "Model fidelity notes"). Run with
//! `cargo bench -p ringmesh-bench --bench ablations`.
use ringmesh::ablations;
use ringmesh::Scale;
use ringmesh_stats::Table;

fn main() {
    let scale = Scale::from_env();
    println!("{}", ablations::ablation_iri_queue(scale));
    println!("{}", ablations::ablation_memory_latency(scale));
    println!("{}", ablations::ablation_mesh_out_queue(scale));
    let t = Table::from_series(
        "Ablation: miss-interval process (latency vs T)",
        "T",
        &ablations::ablation_miss_process(scale),
    );
    println!("{t}");
}
