//! Regenerates the paper's fig09 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig09_three_level`.
fn main() {
    ringmesh_bench::run("fig09");
}
