//! Regenerates the paper's fig06 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig06_single_ring`.
fn main() {
    ringmesh_bench::run("fig06");
}
