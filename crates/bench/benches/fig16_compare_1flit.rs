//! Regenerates the paper's fig16 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig16_compare_1flit`.
fn main() {
    ringmesh_bench::run("fig16");
}
