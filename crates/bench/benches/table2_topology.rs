//! Regenerates the paper's table2 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench table2_topology`.
fn main() {
    ringmesh_bench::run("table2");
}
