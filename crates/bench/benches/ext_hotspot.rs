//! Extension: hot-spot traffic (not in the paper). A fraction of every
//! processor's misses targets one PM — a lock or shared work queue —
//! which stresses the two topologies very differently: the mesh
//! serializes at the hot node's links, while the ring's hot local ring
//! congests its whole subtree. Run with
//! `cargo bench -p ringmesh-bench --bench ext_hotspot`.
use ringmesh::{run_config, NetworkSpec, Scale, SystemConfig};
use ringmesh_net::CacheLineSize;
use ringmesh_stats::{Series, Table};
use ringmesh_workload::WorkloadParams;

fn main() {
    let scale = Scale::from_env();
    let cl = CacheLineSize::B64;
    let mut series = Vec::new();
    for (label, network) in [
        (
            "ring 2:3:6",
            NetworkSpec::ring("2:3:6".parse().expect("valid")),
        ),
        ("mesh 6x6", NetworkSpec::mesh(6)),
    ] {
        let mut s = Series::new(label);
        for hot in [0.0, 0.05, 0.1, 0.2, 0.4] {
            let mut w = WorkloadParams::paper_baseline();
            if hot > 0.0 {
                w = w.with_hot_spot(0, hot);
            }
            let cfg = SystemConfig::new(network.clone(), cl)
                .with_workload(w)
                .with_sim(scale.sim);
            match run_config(cfg) {
                Ok(r) => s.push(hot, r.mean_latency()),
                Err(e) => eprintln!("warning: {label} hot={hot}: {e}"),
            }
        }
        series.push(s);
    }
    println!(
        "{}",
        Table::from_series(
            "Extension: hot-spot sensitivity, 36 PMs, 64B lines (R=1.0, C=0.04, T=4)",
            "hot-spot fraction",
            &series
        )
    );
}
