//! Regenerates the paper's fig11 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig11_levels`.
fn main() {
    ringmesh_bench::run("fig11");
}
