//! Regenerates the paper's fig15 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig15_compare_clbuf`.
fn main() {
    ringmesh_bench::run("fig15");
}
