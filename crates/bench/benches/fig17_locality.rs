//! Regenerates the paper's fig17 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig17_locality`.
fn main() {
    ringmesh_bench::run("fig17");
}
