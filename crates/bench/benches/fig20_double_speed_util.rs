//! Regenerates the paper's fig20 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig20_double_speed_util`.
fn main() {
    ringmesh_bench::run("fig20");
}
