//! Regenerates the paper's fig14 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig14_compare_4flit`.
fn main() {
    ringmesh_bench::run("fig14");
}
