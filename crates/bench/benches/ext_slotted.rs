//! Extension: wormhole vs slotted ring switching (the comparison of the
//! authors' companion paper, IEICE Trans. 1996 — reference [21] —
//! finding slotted rings perform somewhat better). Run with
//! `cargo bench -p ringmesh-bench --bench ext_slotted`.
use ringmesh::{run_config, NetworkSpec, Scale, SystemConfig};
use ringmesh_net::CacheLineSize;
use ringmesh_stats::{Series, Table};
use ringmesh_workload::WorkloadParams;

fn main() {
    let scale = Scale::from_env();
    let mut series = Vec::new();
    for cl in [CacheLineSize::B32, CacheLineSize::B128] {
        for slotted in [false, true] {
            let name = if slotted { "slotted" } else { "wormhole" };
            let mut s = Series::new(format!("{cl} {name}"));
            for spec_str in ["2:6", "3:6", "2:3:6", "3:3:6", "2:3:3:6"] {
                let spec: ringmesh_ring::RingSpec = spec_str.parse().expect("valid");
                let p = spec.num_pms();
                if p > scale.max_pms.max(60) {
                    continue;
                }
                let network = if slotted {
                    NetworkSpec::SlottedRing { spec }
                } else {
                    NetworkSpec::ring(spec)
                };
                let cfg = SystemConfig::new(network, cl)
                    .with_workload(WorkloadParams::paper_baseline())
                    .with_sim(scale.sim);
                match run_config(cfg) {
                    Ok(r) => s.push(f64::from(p), r.mean_latency()),
                    Err(e) => eprintln!("warning: {spec_str} {name}: {e}"),
                }
            }
            series.push(s);
        }
    }
    println!(
        "{}",
        Table::from_series(
            "Extension: wormhole vs slotted hierarchical rings (R=1.0, C=0.04, T=4)",
            "nodes",
            &series
        )
    );
}
