//! Regenerates the paper's fig18 experiment. Run with
//! `cargo bench -p ringmesh-bench --bench fig18_locality_clbuf`.
fn main() {
    ringmesh_bench::run("fig18");
}
