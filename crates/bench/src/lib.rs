//! Benchmark harness regenerating every table and figure of Ravindran &
//! Stumm (HPCA 1997).
//!
//! Each `benches/figNN.rs` target is a custom-harness binary that runs
//! the corresponding experiment from [`ringmesh::figures`] and prints
//! the series the paper plots. By default experiments run at
//! [`Scale::quick`]; set `RINGMESH_FULL=1` to regenerate at
//! publication scale:
//!
//! ```text
//! RINGMESH_FULL=1 cargo bench -p ringmesh-bench --bench fig14_compare_4flit
//! ```
//!
//! `benches/engine.rs` is a conventional Criterion micro-benchmark of
//! the two network simulators' step throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use ringmesh::figures::{self, print_figure};
use ringmesh::Scale;

/// Runs the named experiment and prints its tables. Used by every
/// custom-harness bench target.
///
/// # Panics
///
/// Panics on an unknown experiment name — bench targets pass their own
/// fixed name, so this indicates a build mistake.
pub fn run(name: &str) {
    let scale = Scale::from_env();
    let t0 = Instant::now();
    println!(
        "ringmesh experiment {name} at {} scale (RINGMESH_FULL=1 for publication scale)",
        if scale.quick { "quick" } else { "full" }
    );
    println!();
    match name {
        "table1" => println!("{}", figures::table1()),
        "table2" => println!("{}", figures::table2_overview()),
        "fig06" => print_figure("Figure 6: single-ring latency", &figures::fig06(scale)),
        "fig07" => print_figure(
            "Figure 7: 2-level ring latency",
            &figures::fig07_08(scale).0,
        ),
        "fig08" => print_figure(
            "Figure 8: 2-level ring utilization",
            &figures::fig07_08(scale).1,
        ),
        "fig09" => print_figure(
            "Figure 9: 3-level ring latency",
            &figures::fig09_10(scale).0,
        ),
        "fig10" => print_figure(
            "Figure 10: 3-level global ring utilization",
            &figures::fig09_10(scale).1,
        ),
        "fig11" => print_figure(
            "Figure 11: benefit of hierarchy depth",
            &figures::fig11(scale),
        ),
        "fig12" => print_figure("Figure 12: mesh latency", &figures::fig12_13(scale).0),
        "fig13" => print_figure("Figure 13: mesh utilization", &figures::fig12_13(scale).1),
        "fig14" => print_figure(
            "Figure 14: ring vs mesh, 4-flit buffers",
            &figures::fig14(scale),
        ),
        "fig15" => print_figure(
            "Figure 15: ring vs mesh, cl-sized buffers",
            &figures::fig15(scale),
        ),
        "fig16" => print_figure(
            "Figure 16: ring vs mesh, 1-flit buffers",
            &figures::fig16(scale),
        ),
        "fig17" => print_figure(
            "Figure 17: ring vs mesh with locality",
            &figures::fig17(scale),
        ),
        "fig18" => print_figure(
            "Figure 18: locality, cl-sized mesh buffers",
            &figures::fig18(scale),
        ),
        "fig19" => print_figure(
            "Figure 19: double-speed global ring latency",
            &figures::fig19_20(scale).0,
        ),
        "fig20" => print_figure(
            "Figure 20: double-speed global ring utilization",
            &figures::fig19_20(scale).1,
        ),
        "fig21" => print_figure(
            "Figure 21: mesh vs double-speed-global rings",
            &figures::fig21(scale),
        ),
        "crossover" => print_figure(
            "Crossover study: ring vs slotted vs mesh vs hybrid",
            &figures::fig_crossover(scale),
        ),
        other => panic!("unknown experiment {other:?}"),
    }
    println!("[{name} completed in {:.1?}]", t0.elapsed());
}
