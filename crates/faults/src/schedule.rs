//! Fault configuration and deterministic schedule expansion.

use ringmesh_engine::SimRng;

/// How many faultable components a network exposes.
///
/// Links and nodes are opaque `u32` indices; each network defines its
/// own numbering (the mesh uses `node * 4 + port` for links, the ring
/// uses `station * 2 + side`; mesh nodes are routers, ring nodes are
/// inter-ring interfaces). A network that does not support fault
/// injection reports an empty domain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDomain {
    /// Number of addressable links.
    pub links: u32,
    /// Number of addressable nodes (routers / IRIs).
    pub nodes: u32,
}

impl FaultDomain {
    /// True when the network exposes nothing to break.
    pub fn is_empty(&self) -> bool {
        self.links == 0 && self.nodes == 0
    }
}

/// User-facing fault knobs, expanded into a [`FaultSchedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault stream (independent of the simulation seed).
    pub seed: u64,
    /// Per-packet probability of transient corruption, applied at
    /// injection and detected (dropping the packet) at ejection.
    pub corrupt_prob: f64,
    /// Number of transient link-down events to scatter over the run.
    pub link_down_events: u32,
    /// Duration of each link-down interval, in cycles.
    pub link_down_cycles: u64,
    /// Number of distinct nodes to kill permanently.
    pub dead_nodes: u32,
    /// Cycle horizon over which events are scattered.
    pub horizon: u64,
}

impl FaultConfig {
    /// A schedule that injects nothing (useful as a baseline).
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            corrupt_prob: 0.0,
            link_down_events: 0,
            link_down_cycles: 0,
            dead_nodes: 0,
            horizon: 1,
        }
    }

    /// True when at least one fault class is enabled.
    pub fn is_active(&self) -> bool {
        self.corrupt_prob > 0.0 || self.link_down_events > 0 || self.dead_nodes > 0
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Link `link` is down from the event cycle until `until`
    /// (exclusive); flits queued behind it stall but are not lost.
    LinkDown {
        /// Link index within the network's [`FaultDomain`].
        link: u32,
        /// First cycle at which the link is back up.
        until: u64,
    },
    /// Node `node` fail-stops: it accepts no new traffic from the
    /// event cycle onward, but traffic already inside it drains.
    NodeDead {
        /// Node index within the network's [`FaultDomain`].
        node: u32,
    },
}

/// A fault with its activation cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the fault takes effect.
    pub at: u64,
    /// What breaks.
    pub kind: FaultKind,
}

/// A fully expanded, replayable fault schedule.
///
/// Expansion is a pure function of `(FaultConfig, FaultDomain)`: the
/// RNG streams used are independent of each other and of the
/// simulation's own streams, so adding fault classes never perturbs
/// the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    corrupt_prob: f64,
    corrupt_seed: u64,
}

impl FaultSchedule {
    /// Expands `cfg` against `domain` into a sorted event list.
    pub fn generate(cfg: &FaultConfig, domain: FaultDomain) -> Self {
        let rng = SimRng::from_seed(cfg.seed);
        let mut events = Vec::new();
        let horizon = cfg.horizon.max(1);

        if domain.links > 0 {
            let mut link_rng = rng.stream(1);
            for _ in 0..cfg.link_down_events {
                let at = link_rng.uniform_usize(horizon as usize) as u64;
                let link = link_rng.uniform_usize(domain.links as usize) as u32;
                events.push(FaultEvent {
                    at,
                    kind: FaultKind::LinkDown {
                        link,
                        until: at + cfg.link_down_cycles,
                    },
                });
            }
        }

        if domain.nodes > 0 {
            let mut node_rng = rng.stream(2);
            let want = cfg.dead_nodes.min(domain.nodes);
            let mut chosen: Vec<u32> = Vec::with_capacity(want as usize);
            while (chosen.len() as u32) < want {
                let node = node_rng.uniform_usize(domain.nodes as usize) as u32;
                if !chosen.contains(&node) {
                    chosen.push(node);
                    let at = node_rng.uniform_usize(horizon as usize) as u64;
                    events.push(FaultEvent {
                        at,
                        kind: FaultKind::NodeDead { node },
                    });
                }
            }
        }

        // Stable sort: events pushed in a deterministic order stay in
        // that order within a cycle.
        events.sort_by_key(|e| e.at);
        FaultSchedule {
            events,
            corrupt_prob: cfg.corrupt_prob,
            corrupt_seed: rng.stream(3).seed(),
        }
    }

    /// Builds a schedule from explicit events, for targeted experiments
    /// and tests ("kill exactly this IRI at cycle 100"). Events are
    /// sorted by activation cycle; the corruption stream still derives
    /// from `seed` exactly as in [`generate`](Self::generate).
    pub fn from_events(seed: u64, corrupt_prob: f64, mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultSchedule {
            events,
            corrupt_prob,
            corrupt_seed: SimRng::from_seed(seed).stream(3).seed(),
        }
    }

    /// The sorted event list.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Per-packet corruption probability.
    pub fn corrupt_prob(&self) -> f64 {
        self.corrupt_prob
    }

    /// Seed of the corruption coin-flip stream.
    pub fn corrupt_seed(&self) -> u64 {
        self.corrupt_seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FaultConfig {
        FaultConfig {
            seed: 42,
            corrupt_prob: 0.05,
            link_down_events: 6,
            link_down_cycles: 200,
            dead_nodes: 3,
            horizon: 10_000,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d = FaultDomain {
            links: 64,
            nodes: 16,
        };
        assert_eq!(
            FaultSchedule::generate(&cfg(), d),
            FaultSchedule::generate(&cfg(), d)
        );
    }

    #[test]
    fn events_are_sorted_and_counted() {
        let d = FaultDomain {
            links: 64,
            nodes: 16,
        };
        let s = FaultSchedule::generate(&cfg(), d);
        assert_eq!(s.events().len(), 6 + 3);
        assert!(s.events().windows(2).all(|w| w[0].at <= w[1].at));
        let deaths = s
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::NodeDead { .. }))
            .count();
        assert_eq!(deaths, 3);
    }

    #[test]
    fn dead_nodes_are_distinct_and_capped() {
        let d = FaultDomain { links: 0, nodes: 2 };
        let mut c = cfg();
        c.dead_nodes = 5;
        let s = FaultSchedule::generate(&c, d);
        let mut nodes: Vec<u32> = s
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::NodeDead { node } => Some(node),
                _ => None,
            })
            .collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1]);
    }

    #[test]
    fn empty_domain_produces_no_events() {
        let s = FaultSchedule::generate(&cfg(), FaultDomain::default());
        assert!(s.events().is_empty());
        assert!(s.corrupt_prob() > 0.0, "corruption is domain-independent");
    }
}
