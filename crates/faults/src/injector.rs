//! Run-time fault state and drop accounting.

use ringmesh_engine::SimRng;

use crate::schedule::{FaultDomain, FaultKind, FaultSchedule};

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Marked corrupt at injection; detected and discarded at ejection.
    Corrupted,
    /// Refused at injection: the source or destination is dead, or no
    /// live path exists.
    Unreachable,
    /// Sunk mid-flight at a dead component (a dead IRI's crossing path,
    /// or a mesh router with no usable output direction).
    DeadInterface,
}

impl DropReason {
    /// Short human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::Corrupted => "corrupted",
            DropReason::Unreachable => "unreachable",
            DropReason::DeadInterface => "dead-interface",
        }
    }
}

/// Packet drops broken down by [`DropReason`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropCounts {
    /// Packets discarded at ejection as corrupt.
    pub corrupted: u64,
    /// Packets refused at injection.
    pub unreachable: u64,
    /// Packets sunk mid-flight at a dead component.
    pub dead_interface: u64,
}

impl DropCounts {
    /// Total packets dropped.
    pub fn total(&self) -> u64 {
        self.corrupted + self.unreachable + self.dead_interface
    }
}

/// Summary of what the injector actually did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Drops by reason.
    pub drops: DropCounts,
    /// Packets marked corrupt at injection (each later becomes a
    /// `corrupted` drop unless it was still in flight at run end).
    pub corrupt_marked: u64,
    /// Link-down events that took effect.
    pub link_down_applied: u64,
    /// Nodes that fail-stopped.
    pub nodes_killed: u64,
}

/// Live fault state for one run.
///
/// Owns the expanded schedule cursor, the per-link down-until clocks,
/// the per-node death flags, the corruption coin-flip stream, and the
/// drop counters. Networks call [`advance`](Self::advance) once per
/// cycle, then query [`link_up`](Self::link_up) /
/// [`node_dead`](Self::node_dead) during the cycle.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    events: Vec<crate::FaultEvent>,
    cursor: usize,
    corrupt_prob: f64,
    corrupt_rng: SimRng,
    link_down_until: Vec<u64>,
    node_dead: Vec<bool>,
    dead_count: u32,
    drops: DropCounts,
    corrupt_marked: u64,
    link_down_applied: u64,
}

impl FaultInjector {
    /// Builds the run-time state for `schedule` over `domain`.
    pub fn new(schedule: &FaultSchedule, domain: FaultDomain) -> Self {
        FaultInjector {
            events: schedule.events().to_vec(),
            cursor: 0,
            corrupt_prob: schedule.corrupt_prob(),
            corrupt_rng: SimRng::from_seed(schedule.corrupt_seed()),
            link_down_until: vec![0; domain.links as usize],
            node_dead: vec![false; domain.nodes as usize],
            dead_count: 0,
            drops: DropCounts::default(),
            corrupt_marked: 0,
            link_down_applied: 0,
        }
    }

    /// Applies every scheduled event with `at <= now`. Call once per
    /// cycle before stepping the network.
    pub fn advance(&mut self, now: u64) {
        while let Some(ev) = self.events.get(self.cursor) {
            if ev.at > now {
                break;
            }
            match ev.kind {
                FaultKind::LinkDown { link, until } => {
                    if let Some(slot) = self.link_down_until.get_mut(link as usize) {
                        *slot = (*slot).max(until);
                        self.link_down_applied += 1;
                    }
                }
                FaultKind::NodeDead { node } => {
                    if let Some(flag) = self.node_dead.get_mut(node as usize) {
                        if !*flag {
                            *flag = true;
                            self.dead_count += 1;
                        }
                    }
                }
            }
            self.cursor += 1;
        }
    }

    /// True when `link` can move a flit at `now`.
    pub fn link_up(&self, link: u32, now: u64) -> bool {
        self.link_down_until
            .get(link as usize)
            .is_none_or(|&until| now >= until)
    }

    /// True when `node` has fail-stopped.
    pub fn node_dead(&self, node: u32) -> bool {
        self.node_dead.get(node as usize).copied().unwrap_or(false)
    }

    /// True when at least one node is dead (fast path for reachability
    /// scans at injection).
    pub fn any_nodes_dead(&self) -> bool {
        self.dead_count > 0
    }

    /// Rolls the corruption coin for a freshly injected packet.
    pub fn roll_corrupt(&mut self) -> bool {
        if self.corrupt_prob <= 0.0 {
            return false;
        }
        let bad = self.corrupt_rng.bernoulli(self.corrupt_prob);
        if bad {
            self.corrupt_marked += 1;
        }
        bad
    }

    /// Records a packet drop.
    pub fn record_drop(&mut self, reason: DropReason) {
        match reason {
            DropReason::Corrupted => self.drops.corrupted += 1,
            DropReason::Unreachable => self.drops.unreachable += 1,
            DropReason::DeadInterface => self.drops.dead_interface += 1,
        }
    }

    /// The accumulated report.
    pub fn report(&self) -> FaultReport {
        FaultReport {
            drops: self.drops,
            corrupt_marked: self.corrupt_marked,
            link_down_applied: self.link_down_applied,
            nodes_killed: u64::from(self.dead_count),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultConfig;

    fn injector(cfg: &FaultConfig, domain: FaultDomain) -> FaultInjector {
        FaultInjector::new(&FaultSchedule::generate(cfg, domain), domain)
    }

    #[test]
    fn links_go_down_and_come_back() {
        let cfg = FaultConfig {
            seed: 1,
            corrupt_prob: 0.0,
            link_down_events: 1,
            link_down_cycles: 100,
            dead_nodes: 0,
            horizon: 1000,
        };
        let domain = FaultDomain { links: 8, nodes: 0 };
        let schedule = FaultSchedule::generate(&cfg, domain);
        let ev = schedule.events()[0];
        let crate::FaultKind::LinkDown { link, until } = ev.kind else {
            panic!("expected a link event");
        };
        let mut inj = FaultInjector::new(&schedule, domain);
        inj.advance(ev.at);
        assert!(!inj.link_up(link, ev.at));
        assert!(!inj.link_up(link, until - 1));
        assert!(inj.link_up(link, until));
        assert_eq!(inj.report().link_down_applied, 1);
    }

    #[test]
    fn node_death_is_permanent() {
        let cfg = FaultConfig {
            seed: 2,
            corrupt_prob: 0.0,
            link_down_events: 0,
            link_down_cycles: 0,
            dead_nodes: 1,
            horizon: 500,
        };
        let domain = FaultDomain { links: 0, nodes: 4 };
        let mut inj = injector(&cfg, domain);
        assert!(!inj.any_nodes_dead());
        inj.advance(500);
        assert!(inj.any_nodes_dead());
        let dead: Vec<u32> = (0..4).filter(|&n| inj.node_dead(n)).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(inj.report().nodes_killed, 1);
    }

    #[test]
    fn corruption_rolls_are_deterministic_and_counted() {
        let cfg = FaultConfig {
            seed: 3,
            corrupt_prob: 0.5,
            link_down_events: 0,
            link_down_cycles: 0,
            dead_nodes: 0,
            horizon: 1,
        };
        let mut a = injector(&cfg, FaultDomain::default());
        let mut b = injector(&cfg, FaultDomain::default());
        let rolls_a: Vec<bool> = (0..64).map(|_| a.roll_corrupt()).collect();
        let rolls_b: Vec<bool> = (0..64).map(|_| b.roll_corrupt()).collect();
        assert_eq!(rolls_a, rolls_b);
        let marked = rolls_a.iter().filter(|&&r| r).count() as u64;
        assert_eq!(a.report().corrupt_marked, marked);
        assert!(marked > 10 && marked < 54, "p=0.5 over 64 rolls: {marked}");
    }

    #[test]
    fn drop_accounting_by_reason() {
        let mut inj = injector(&FaultConfig::none(0), FaultDomain::default());
        inj.record_drop(DropReason::Corrupted);
        inj.record_drop(DropReason::Unreachable);
        inj.record_drop(DropReason::Unreachable);
        inj.record_drop(DropReason::DeadInterface);
        let d = inj.report().drops;
        assert_eq!((d.corrupted, d.unreachable, d.dead_interface), (1, 2, 1));
        assert_eq!(d.total(), 4);
    }
}
