//! Deterministic fault injection for the ringmesh networks.
//!
//! The paper's comparison assumes a fault-free interconnect; this crate
//! supplies the machinery to relax that assumption *reproducibly*. A
//! [`FaultSchedule`] is expanded from a seed and a [`FaultDomain`]
//! (how many links and routers the target network exposes) into a
//! sorted list of timed events — transient link-down intervals and
//! permanent node deaths — plus a per-packet corruption probability.
//! The same seed and domain always yield the same schedule, so every
//! faulty run can be replayed bit-for-bit.
//!
//! At run time a [`FaultInjector`] owns the expanded schedule and
//! answers the questions the networks ask each cycle: is this link up,
//! is this node dead, should this packet be marked corrupt? It also
//! accumulates drop statistics into a [`FaultReport`].
//!
//! Orthogonally, a [`ConservationLedger`] tracks every packet from
//! injection to completion and proves the no-loss/no-duplication
//! invariant: `injected == delivered + dropped + in_flight` at all
//! times, with optional per-packet tracking for exact diagnosis.
//!
//! This crate deliberately depends only on `ringmesh-engine` (for the
//! splittable RNG); links and nodes are raw `u32` indices whose meaning
//! each network defines for itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod injector;
mod ledger;
mod schedule;

pub use injector::{DropCounts, DropReason, FaultInjector, FaultReport};
pub use ledger::{ConservationError, ConservationLedger};
pub use schedule::{FaultConfig, FaultDomain, FaultEvent, FaultKind, FaultSchedule};
