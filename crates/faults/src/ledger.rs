//! The packet-conservation checker.
//!
//! Every packet a network accepts must end exactly one way: delivered,
//! explicitly dropped, or still in flight when the run stops. The
//! ledger proves this with three counters — and, when tracking is on,
//! an exact per-slot live set that catches duplication and loss at the
//! moment they happen rather than at the end-of-run audit.
//!
//! Counter updates are three integer increments per packet, so the
//! counters are always on. Per-slot tracking costs a hash insert and
//! remove per packet; the networks enable it under `debug_assertions`
//! and via the release-mode `--check` flag.

use std::collections::HashSet;
use std::fmt;

use ringmesh_snap::{SnapError, SnapReader, SnapWriter, SnapshotState};

/// A violated conservation invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConservationError {
    /// Packets accepted (including injection-time refusals).
    pub injected: u64,
    /// Packets delivered intact.
    pub delivered: u64,
    /// Packets explicitly dropped.
    pub dropped: u64,
    /// In-flight count the network reported at verification.
    pub in_flight: u64,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ConservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conservation violated: {} (injected={} delivered={} dropped={} in_flight={})",
            self.detail, self.injected, self.delivered, self.dropped, self.in_flight
        )
    }
}

impl std::error::Error for ConservationError {}

/// Tracks packet conservation for one network.
#[derive(Debug, Clone, Default)]
pub struct ConservationLedger {
    injected: u64,
    delivered: u64,
    dropped: u64,
    track: bool,
    live: HashSet<usize>,
    /// First per-slot violation observed, if any; sticky so the
    /// end-of-run audit reports it even in release builds.
    violation: Option<String>,
}

impl ConservationLedger {
    /// Creates a ledger; `track` enables the exact per-slot live set.
    pub fn new(track: bool) -> Self {
        ConservationLedger {
            track,
            ..ConservationLedger::default()
        }
    }

    /// Turns per-slot tracking on or off.
    ///
    /// Only meaningful while no packets are in flight: enabling
    /// tracking mid-run would miss live slots.
    pub fn set_tracking(&mut self, track: bool) {
        debug_assert!(
            self.injected == self.delivered + self.dropped,
            "tracking toggled with packets in flight"
        );
        self.track = track;
    }

    /// Whether per-slot tracking is on.
    pub fn tracking(&self) -> bool {
        self.track
    }

    /// Records a packet entering the network in store slot `slot`.
    pub fn inject(&mut self, slot: usize) {
        self.injected += 1;
        if self.track && !self.live.insert(slot) {
            self.flag(format!("slot {slot} injected while already live"));
        }
    }

    /// Records a packet leaving the network from `slot`; `dropped`
    /// distinguishes an explicit drop from an intact delivery.
    pub fn complete(&mut self, slot: usize, dropped: bool) {
        if dropped {
            self.dropped += 1;
        } else {
            self.delivered += 1;
        }
        if self.track && !self.live.remove(&slot) {
            self.flag(format!("slot {slot} completed but was not live"));
        }
    }

    /// Records an injection-time refusal: the packet never entered the
    /// store, so it counts as injected *and* dropped atomically.
    pub fn refuse(&mut self) {
        self.injected += 1;
        self.dropped += 1;
    }

    /// `(injected, delivered, dropped)` counters.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.injected, self.delivered, self.dropped)
    }

    /// Audits the ledger against the network's reported in-flight
    /// packet count.
    pub fn verify(&self, in_flight: u64) -> Result<(), ConservationError> {
        let err = |detail: String| ConservationError {
            injected: self.injected,
            delivered: self.delivered,
            dropped: self.dropped,
            in_flight,
            detail,
        };
        if let Some(v) = &self.violation {
            return Err(err(v.clone()));
        }
        if self.injected != self.delivered + self.dropped + in_flight {
            return Err(err("counter identity broken".to_string()));
        }
        if self.track && self.live.len() as u64 != in_flight {
            return Err(err(format!(
                "live set holds {} slots, network reports {}",
                self.live.len(),
                in_flight
            )));
        }
        Ok(())
    }

    fn flag(&mut self, detail: String) {
        debug_assert!(false, "{detail}");
        if self.violation.is_none() {
            self.violation = Some(detail);
        }
    }
}

impl SnapshotState for ConservationLedger {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.injected);
        w.u64(self.delivered);
        w.u64(self.dropped);
        w.bool(self.track);
        // The live set iterates in hash order; sort so equal ledgers
        // always produce byte-identical snapshots.
        let mut live: Vec<usize> = self.live.iter().copied().collect();
        live.sort_unstable();
        w.usize(live.len());
        for slot in live {
            w.usize(slot);
        }
        match &self.violation {
            None => w.bool(false),
            Some(v) => {
                w.bool(true);
                w.str(v);
            }
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.injected = r.u64()?;
        self.delivered = r.u64()?;
        self.dropped = r.u64()?;
        self.track = r.bool()?;
        let n = r.usize()?;
        self.live = HashSet::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            self.live.insert(r.usize()?);
        }
        self.violation = if r.bool()? { Some(r.str()?) } else { None };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_lifecycle_verifies() {
        let mut l = ConservationLedger::new(true);
        l.inject(0);
        l.inject(1);
        l.complete(0, false);
        l.verify(1).expect("one in flight");
        l.complete(1, true);
        l.verify(0).expect("all accounted for");
        assert_eq!(l.counts(), (2, 1, 1));
    }

    #[test]
    fn refusal_keeps_the_identity() {
        let mut l = ConservationLedger::new(true);
        l.refuse();
        l.verify(0).expect("refusal is injected+dropped");
        assert_eq!(l.counts(), (1, 0, 1));
    }

    #[test]
    fn lost_packet_detected() {
        let mut l = ConservationLedger::new(false);
        l.inject(0);
        let e = l.verify(0).expect_err("packet vanished");
        assert!(e.detail.contains("identity"), "{e}");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "not live"))]
    fn duplicate_completion_detected() {
        let mut l = ConservationLedger::new(true);
        l.inject(3);
        l.complete(3, false);
        l.complete(3, false);
        // Release builds reach here; the sticky violation must report.
        assert!(l.verify(0).is_err());
    }

    #[test]
    fn slot_reuse_is_fine() {
        let mut l = ConservationLedger::new(true);
        for _ in 0..5 {
            l.inject(2);
            l.complete(2, false);
        }
        l.verify(0).expect("slot reuse is the store's normal mode");
    }
}
