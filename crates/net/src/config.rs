//! Sizing rules from §2 of the paper: cache line sizes, channel widths,
//! packet formats and buffer regimes, including the buffer-memory
//! arithmetic behind Table 1.

use std::fmt;
use std::str::FromStr;

use crate::packet::PacketKind;

/// Cache line sizes studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheLineSize {
    /// 16-byte cache lines.
    B16,
    /// 32-byte cache lines.
    B32,
    /// 64-byte cache lines.
    B64,
    /// 128-byte cache lines.
    B128,
}

impl CacheLineSize {
    /// All four sizes, in ascending order — handy for parameter sweeps.
    pub const ALL: [CacheLineSize; 4] = [
        CacheLineSize::B16,
        CacheLineSize::B32,
        CacheLineSize::B64,
        CacheLineSize::B128,
    ];

    /// The line size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            CacheLineSize::B16 => 16,
            CacheLineSize::B32 => 32,
            CacheLineSize::B64 => 64,
            CacheLineSize::B128 => 128,
        }
    }

    /// Constructs from a byte count.
    ///
    /// # Errors
    ///
    /// Returns an error message if `bytes` is not one of 16/32/64/128.
    pub fn from_bytes(bytes: u32) -> Result<Self, String> {
        match bytes {
            16 => Ok(CacheLineSize::B16),
            32 => Ok(CacheLineSize::B32),
            64 => Ok(CacheLineSize::B64),
            128 => Ok(CacheLineSize::B128),
            other => Err(format!("unsupported cache line size: {other} bytes")),
        }
    }
}

impl fmt::Display for CacheLineSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

impl FromStr for CacheLineSize {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.trim().trim_end_matches(['B', 'b']);
        let bytes: u32 = digits
            .parse()
            .map_err(|_| format!("invalid cache line size: {s:?}"))?;
        CacheLineSize::from_bytes(bytes)
    }
}

/// Per-network packet format: header length and flit width.
///
/// Under the paper's constant-pin-count assumption, the ring has a
/// 128-bit (16-byte) channel with 1-flit headers, while the mesh has
/// 32-bit (4-byte) channels with 4-flit headers — the same number of
/// header *bytes*, serialized differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketFormat {
    /// Number of flits in a packet header.
    pub header_flits: u32,
    /// Width of one flit in bytes (the channel width; the paper draws no
    /// distinction between phits and flits).
    pub flit_bytes: u32,
}

impl PacketFormat {
    /// The hierarchical-ring format: 128-bit channel, 1-flit header.
    pub const RING: PacketFormat = PacketFormat {
        header_flits: 1,
        flit_bytes: 16,
    };

    /// The mesh format: 32-bit channels, 4-flit header.
    pub const MESH: PacketFormat = PacketFormat {
        header_flits: 4,
        flit_bytes: 4,
    };

    /// Number of data flits needed to carry one cache line.
    pub fn data_flits(self, cl: CacheLineSize) -> u32 {
        cl.bytes().div_ceil(self.flit_bytes)
    }

    /// Total flits in a packet of the given kind: header-only for
    /// requests without data (read request, write acknowledgement),
    /// header plus a cache line otherwise.
    pub fn flits(self, kind: PacketKind, cl: CacheLineSize) -> u32 {
        if kind.carries_data() {
            self.header_flits + self.data_flits(cl)
        } else {
            self.header_flits
        }
    }

    /// Flits in the largest packet (one carrying a cache line): the
    /// paper's `cl` buffer size. For rings this is 2/3/5/9 flits for
    /// 16/32/64/128-byte lines; for meshes 8/12/20/36.
    pub fn cl_packet_flits(self, cl: CacheLineSize) -> u32 {
        self.header_flits + self.data_flits(cl)
    }
}

/// Input-buffer sizing regimes studied for the mesh routers (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BufferRegime {
    /// Single-flit buffers: the cheapest routers; worms stall across
    /// many links.
    OneFlit,
    /// Four-flit buffers: the paper's middle ground.
    #[default]
    FourFlit,
    /// Cache-line-sized buffers: a whole maximum-size packet fits in one
    /// router, so a worm never stalls more than one link.
    CacheLine,
}

impl BufferRegime {
    /// All regimes in ascending-cost order.
    pub const ALL: [BufferRegime; 3] = [
        BufferRegime::OneFlit,
        BufferRegime::FourFlit,
        BufferRegime::CacheLine,
    ];

    /// Buffer depth in flits under this regime for the given format and
    /// cache line size.
    pub fn flits(self, format: PacketFormat, cl: CacheLineSize) -> u32 {
        match self {
            BufferRegime::OneFlit => 1,
            BufferRegime::FourFlit => 4,
            BufferRegime::CacheLine => format.cl_packet_flits(cl),
        }
    }
}

impl fmt::Display for BufferRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferRegime::OneFlit => write!(f, "1-flit"),
            BufferRegime::FourFlit => write!(f, "4-flit"),
            BufferRegime::CacheLine => write!(f, "cl-sized"),
        }
    }
}

/// Bytes of buffer memory in a ring NIC's transit (ring) buffer — always
/// cache-line sized (Table 1, "Rings" rows).
pub fn ring_nic_buffer_bytes(cl: CacheLineSize) -> u32 {
    PacketFormat::RING.cl_packet_flits(cl) * PacketFormat::RING.flit_bytes
}

/// Bytes of buffer memory across a mesh NIC's four network input buffers
/// under the given regime (Table 1, "Meshes" rows). The paper counts the
/// four inter-router inputs; the PM injection queue is common to both
/// designs and excluded.
pub fn mesh_nic_buffer_bytes(cl: CacheLineSize, regime: BufferRegime) -> u32 {
    4 * regime.flits(PacketFormat::MESH, cl) * PacketFormat::MESH.flit_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_cl_packet_flits_match_paper() {
        // §2.2: "cl will be either 2, 3, 5 or 9 flits ... for rings".
        let got: Vec<u32> = CacheLineSize::ALL
            .iter()
            .map(|&cl| PacketFormat::RING.cl_packet_flits(cl))
            .collect();
        assert_eq!(got, [2, 3, 5, 9]);
    }

    #[test]
    fn mesh_cl_packet_flits_match_paper() {
        // §2.2: "cl will be either 8, 12, 20 or 36 flits" for meshes.
        let got: Vec<u32> = CacheLineSize::ALL
            .iter()
            .map(|&cl| PacketFormat::MESH.cl_packet_flits(cl))
            .collect();
        assert_eq!(got, [8, 12, 20, 36]);
    }

    #[test]
    fn header_only_packets_have_header_size() {
        for &cl in &CacheLineSize::ALL {
            assert_eq!(PacketFormat::RING.flits(PacketKind::ReadReq, cl), 1);
            assert_eq!(PacketFormat::RING.flits(PacketKind::WriteResp, cl), 1);
            assert_eq!(PacketFormat::MESH.flits(PacketKind::ReadReq, cl), 4);
            assert_eq!(PacketFormat::MESH.flits(PacketKind::WriteResp, cl), 4);
        }
    }

    #[test]
    fn data_packets_carry_the_line() {
        assert_eq!(
            PacketFormat::RING.flits(PacketKind::WriteReq, CacheLineSize::B128),
            9
        );
        assert_eq!(
            PacketFormat::MESH.flits(PacketKind::ReadResp, CacheLineSize::B16),
            8
        );
    }

    #[test]
    fn table1_ring_column() {
        // Table 1 "Rings / cl" column: 32, 48, 80, 144 bytes (the paper's
        // printed 144B for 128-byte lines anchors the formula).
        let got: Vec<u32> = CacheLineSize::ALL
            .iter()
            .map(|&c| ring_nic_buffer_bytes(c))
            .collect();
        assert_eq!(got, [32, 48, 80, 144]);
    }

    #[test]
    fn table1_mesh_columns() {
        // Table 1 "Meshes" rows: cl-sized 128/192/320/576, 4-flit 64, 1-flit 16.
        let cl_col: Vec<u32> = CacheLineSize::ALL
            .iter()
            .map(|&c| mesh_nic_buffer_bytes(c, BufferRegime::CacheLine))
            .collect();
        assert_eq!(cl_col, [128, 192, 320, 576]);
        for &c in &CacheLineSize::ALL {
            assert_eq!(mesh_nic_buffer_bytes(c, BufferRegime::FourFlit), 64);
            assert_eq!(mesh_nic_buffer_bytes(c, BufferRegime::OneFlit), 16);
        }
    }

    #[test]
    fn cache_line_parsing_round_trips() {
        for &cl in &CacheLineSize::ALL {
            let shown = cl.to_string();
            assert_eq!(shown.parse::<CacheLineSize>().unwrap(), cl);
        }
        assert!("48B".parse::<CacheLineSize>().is_err());
        assert!("xyz".parse::<CacheLineSize>().is_err());
    }

    #[test]
    fn regime_flit_depths() {
        let cl = CacheLineSize::B128;
        assert_eq!(BufferRegime::OneFlit.flits(PacketFormat::MESH, cl), 1);
        assert_eq!(BufferRegime::FourFlit.flits(PacketFormat::MESH, cl), 4);
        assert_eq!(BufferRegime::CacheLine.flits(PacketFormat::MESH, cl), 36);
        assert_eq!(BufferRegime::CacheLine.flits(PacketFormat::RING, cl), 9);
    }
}
