//! FIFO buffers and streaming helpers for wormhole switching.
//!
//! Every NIC and inter-ring interface in the simulator is assembled from
//! these pieces:
//!
//! * [`FlitFifo`] — a bounded flit FIFO with the *registered* stop/go
//!   flow-control discipline: upstream senders consult the occupancy
//!   latched at the previous cycle boundary ([`FlitFifo::space_latched`]),
//!   and a flit can leave a buffer only on a cycle after the one it
//!   arrived in (realizing the paper's one-cycle routing delay per
//!   network node).
//! * [`PacketQueue`] — a bounded queue of whole packets (the NIC's
//!   input/output request and response buffers, which hold exactly one
//!   cache-line packet each in the paper).
//! * [`DrainState`] — serializes a queued packet onto a link one flit at
//!   a time, enforcing wormhole contiguity.
//! * [`Assembler`] — reassembles arriving flit trains into packets at
//!   the ejection port.
//! * [`FlitPool`] — a freelist of flit-train buffers so per-packet
//!   staging storage is recycled instead of re-allocated every packet
//!   in the simulation hot loop.

use std::collections::VecDeque;

use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotState};

use crate::packet::{Flit, PacketRef};

/// A bounded flit FIFO with registered (previous-cycle) stop/go state.
///
/// Call [`latch`](FlitFifo::latch) once per component clock at the end
/// of the cycle; upstream senders must gate on
/// [`space_latched`](FlitFifo::space_latched), which reflects the
/// occupancy at the last latch. Because each buffer has exactly one
/// upstream producer (a link carries one flit per cycle), this
/// guarantees the capacity is never exceeded.
///
/// # Example
///
/// ```
/// use ringmesh_net::{Flit, FlitFifo, PacketRef, PacketStore, Packet, PacketKind, NodeId, TxnId};
///
/// let mut store = PacketStore::new();
/// let r = store.insert(Packet {
///     txn: TxnId::new(0), kind: PacketKind::ReadReq,
///     src: NodeId::new(0), dst: NodeId::new(1), flits: 1, injected_at: 0,
/// });
/// let mut fifo = FlitFifo::new(2);
/// assert!(fifo.space_latched());
/// fifo.push(Flit { packet: r, seq: 0, is_tail: true }, 5);
/// // Not poppable in the arrival cycle (1-cycle routing delay)…
/// assert!(fifo.pop_ready(5).is_none());
/// // …but ready the next cycle.
/// assert!(fifo.pop_ready(6).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct FlitFifo {
    q: VecDeque<Flit>,
    cap: usize,
    latched_len: usize,
    tails: usize,
    /// Cycle of the most recent push. Together with `fresh` this
    /// encodes everything the old per-entry arrival stamps did: a
    /// buffered flit is ready iff it arrived on an earlier cycle, and
    /// arrivals are monotone, so only the newest cycle's pushes can be
    /// unready — no need to carry a timestamp per entry.
    last_push: u64,
    /// Number of flits pushed at `last_push` (the unready back of the
    /// queue while the clock still reads `last_push`).
    fresh: usize,
}

impl FlitFifo {
    /// Creates a FIFO holding at most `cap` flits.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "flit FIFO capacity must be positive");
        FlitFifo {
            // Effectively-unbounded FIFOs (huge caps) grow on demand.
            q: VecDeque::with_capacity(cap.min(64)),
            cap,
            latched_len: 0,
            tails: 0,
            last_push: 0,
            fresh: 0,
        }
    }

    /// Capacity in flits.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current occupancy in flits.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the FIFO is currently empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Registered stop/go signal: whether the occupancy latched at the
    /// previous cycle boundary leaves room for one more flit. This is
    /// what an upstream sender consults before transmitting.
    pub fn space_latched(&self) -> bool {
        self.latched_len < self.cap
    }

    /// Registered free-slot count: capacity minus the occupancy latched
    /// at the previous cycle boundary. Ring stations use this both for
    /// the bubble rule (injections keep one slot free so a ring can
    /// never fill completely) and for whole-packet crossing
    /// reservations at inter-ring interfaces.
    pub fn free_latched(&self) -> usize {
        self.cap - self.latched_len
    }

    /// Pushes a flit arriving at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is full — the sender must gate on
    /// [`space_latched`](Self::space_latched), so overflow is a model bug.
    pub fn push(&mut self, flit: Flit, now: u64) {
        assert!(self.q.len() < self.cap, "flit FIFO overflow");
        debug_assert!(now >= self.last_push, "FIFO clock must be monotone");
        if flit.is_tail {
            self.tails += 1;
        }
        if now == self.last_push {
            self.fresh += 1;
        } else {
            self.last_push = now;
            self.fresh = 1;
        }
        self.q.push_back(flit);
    }

    /// Occupancy excluding flits that arrived at cycle `now` (which
    /// cannot leave until the next cycle).
    fn ready_len(&self, now: u64) -> usize {
        let fresh = if self.last_push == now { self.fresh } else { 0 };
        self.q.len() - fresh
    }

    /// The head flit, if it arrived on an earlier cycle than `now`
    /// (flits cannot cut through a node in zero cycles).
    pub fn front_ready(&self, now: u64) -> Option<Flit> {
        if self.ready_len(now) > 0 {
            self.q.front().copied()
        } else {
            None
        }
    }

    /// Pops the head flit if it is ready at cycle `now`.
    pub fn pop_ready(&mut self, now: u64) -> Option<Flit> {
        if self.ready_len(now) > 0 {
            let flit = self.q.pop_front().expect("front was ready");
            if flit.is_tail {
                self.tails -= 1;
            }
            Some(flit)
        } else {
            None
        }
    }

    /// Whether the packet at the front of the FIFO is buffered in its
    /// entirety (its tail flit has arrived). Because packets queue
    /// sequentially and uninterleaved, any buffered tail implies the
    /// front packet is complete. Ring stations use this to start ring
    /// entries only for worms that cannot stall on upstream supply.
    pub fn has_complete_packet(&self) -> bool {
        self.tails > 0
    }

    /// Latches the current occupancy as the registered state consulted
    /// by upstream senders next cycle. Call once per component clock.
    pub fn latch(&mut self) {
        self.latched_len = self.q.len();
    }

    /// Iterates over buffered flits, head first (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &Flit> {
        self.q.iter()
    }
}

/// A bounded queue of whole packets: the NIC-side input/output request
/// and response buffers (capacity is one cache-line packet each in the
/// paper, but configurable here).
#[derive(Debug, Clone)]
pub struct PacketQueue {
    q: VecDeque<PacketRef>,
    cap: usize,
}

impl PacketQueue {
    /// Creates a queue holding at most `cap` packets.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "packet queue capacity must be positive");
        PacketQueue {
            q: VecDeque::with_capacity(cap),
            cap,
        }
    }

    /// Whether another packet can be enqueued.
    pub fn can_accept(&self) -> bool {
        self.q.len() < self.cap
    }

    /// Enqueues a packet.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full; callers gate on
    /// [`can_accept`](Self::can_accept).
    pub fn push(&mut self, r: PacketRef) {
        assert!(self.can_accept(), "packet queue overflow");
        self.q.push_back(r);
    }

    /// The packet at the head of the queue.
    pub fn front(&self) -> Option<PacketRef> {
        self.q.front().copied()
    }

    /// Dequeues the head packet.
    pub fn pop(&mut self) -> Option<PacketRef> {
        self.q.pop_front()
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

/// Serializes one packet onto a link flit by flit, enforcing wormhole
/// contiguity: once begun, only this packet's flits may use the link
/// until the tail has been sent.
#[derive(Debug, Clone, Copy, Default)]
pub struct DrainState {
    current: Option<(PacketRef, u32, u32)>, // (packet, next_seq, total)
}

impl DrainState {
    /// An idle drain.
    pub fn idle() -> Self {
        DrainState::default()
    }

    /// Whether a packet is mid-transmission.
    pub fn is_active(&self) -> bool {
        self.current.is_some()
    }

    /// The packet being transmitted, if any.
    pub fn packet(&self) -> Option<PacketRef> {
        self.current.map(|(r, _, _)| r)
    }

    /// Begins transmitting `packet` of `total_flits` flits.
    ///
    /// # Panics
    ///
    /// Panics if a transmission is already active or `total_flits` is 0.
    pub fn begin(&mut self, packet: PacketRef, total_flits: u32) {
        assert!(self.current.is_none(), "drain already active");
        assert!(total_flits > 0, "packet must have at least one flit");
        self.current = Some((packet, 0, total_flits));
    }

    /// Produces the next flit and advances. Returns the flit; the drain
    /// becomes idle after the tail flit is produced.
    ///
    /// # Panics
    ///
    /// Panics if no transmission is active.
    pub fn emit(&mut self) -> Flit {
        let (r, seq, total) = self.current.expect("emit on idle drain");
        let is_tail = seq + 1 == total;
        self.current = if is_tail {
            None
        } else {
            Some((r, seq + 1, total))
        };
        Flit {
            packet: r,
            seq,
            is_tail,
        }
    }
}

/// Reassembles an arriving flit train into a packet at an ejection port.
///
/// Wormhole switching guarantees the flits of a packet arrive in order
/// and uninterleaved; the assembler checks those invariants and reports
/// each completed packet.
#[derive(Debug, Clone, Copy, Default)]
pub struct Assembler {
    current: Option<(PacketRef, u32)>, // (packet, flits received)
}

impl Assembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Whether a packet is partially assembled.
    pub fn is_mid_packet(&self) -> bool {
        self.current.is_some()
    }

    /// Accepts the next flit; returns the packet handle when the tail
    /// flit completes a packet.
    ///
    /// # Panics
    ///
    /// Panics if flits interleave or arrive out of order — wormhole
    /// switching makes that impossible, so it is a model bug.
    pub fn push(&mut self, flit: Flit) -> Option<PacketRef> {
        match self.current {
            None => {
                assert!(flit.is_head(), "packet must start with its head flit");
                if flit.is_tail {
                    return Some(flit.packet); // single-flit packet
                }
                self.current = Some((flit.packet, 1));
                None
            }
            Some((r, n)) => {
                assert_eq!(r, flit.packet, "interleaved flits at ejection port");
                assert_eq!(flit.seq, n, "out-of-order flit at ejection port");
                if flit.is_tail {
                    self.current = None;
                    Some(r)
                } else {
                    self.current = Some((r, n + 1));
                    None
                }
            }
        }
    }
}

/// A freelist of flit-train staging buffers.
///
/// Components that stage a packet's flits while it is mid-assembly or
/// mid-reorder (e.g. the slotted-ring per-packet reassembly records)
/// would otherwise allocate a fresh `Vec<Flit>` per packet — millions
/// of short-lived heap allocations over a sweep. A `FlitPool` hands
/// out cleared buffers from a freelist ([`checkout`](Self::checkout))
/// and takes them back when the packet completes
/// ([`recycle`](Self::recycle)), so steady-state traffic allocates
/// nothing: after warm-up every train reuses a previously-freed buffer.
///
/// The pool also keeps conservation-style accounting — buffers checked
/// out must come back, exactly like packets injected into a network
/// must be delivered or dropped. [`outstanding`](Self::outstanding)
/// counts live trains and [`leak_check`](Self::leak_check) asserts the
/// drain invariant, mirroring `ConservationLedger::verify`.
///
/// # Example
///
/// ```
/// use ringmesh_net::FlitPool;
///
/// let mut pool = FlitPool::new();
/// let train = pool.checkout(); // fresh allocation
/// pool.recycle(train);
/// let again = pool.checkout(); // reuses the freed buffer
/// assert_eq!(pool.allocated(), 1);
/// assert_eq!(pool.recycled(), 1);
/// pool.recycle(again);
/// assert!(pool.leak_check().is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlitPool {
    free: Vec<Vec<Flit>>,
    allocated: u64,
    recycled: u64,
    outstanding: usize,
}

impl FlitPool {
    /// An empty pool.
    pub fn new() -> Self {
        FlitPool::default()
    }

    /// Hands out an empty flit-train buffer: a recycled one when the
    /// freelist has any, else a fresh allocation.
    pub fn checkout(&mut self) -> Vec<Flit> {
        self.outstanding += 1;
        match self.free.pop() {
            Some(buf) => {
                self.recycled += 1;
                buf
            }
            None => {
                self.allocated += 1;
                Vec::new()
            }
        }
    }

    /// Returns a train buffer to the freelist (cleared, capacity kept).
    pub fn recycle(&mut self, mut buf: Vec<Flit>) {
        debug_assert!(self.outstanding > 0, "recycle without checkout");
        self.outstanding = self.outstanding.saturating_sub(1);
        buf.clear();
        self.free.push(buf);
    }

    /// Number of buffers currently checked out (live flit trains).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Number of fresh heap allocations the pool has made.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Number of checkouts served from the freelist (allocation-free).
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// The drain invariant: with no packets in flight, every train
    /// buffer must be back in the freelist. Returns the number of
    /// leaked (still-outstanding) buffers on failure.
    pub fn leak_check(&self) -> Result<(), usize> {
        if self.outstanding == 0 {
            Ok(())
        } else {
            Err(self.outstanding)
        }
    }
}

impl SnapshotState for FlitFifo {
    fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.cap);
        self.q.save(w);
        w.usize(self.latched_len);
        w.usize(self.tails);
        w.u64(self.last_push);
        w.usize(self.fresh);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let cap = r.usize()?;
        if cap != self.cap {
            return Err(SnapError::Mismatch(format!(
                "flit FIFO capacity {cap}, expected {}",
                self.cap
            )));
        }
        self.q = VecDeque::load(r)?;
        self.latched_len = r.usize()?;
        self.tails = r.usize()?;
        self.last_push = r.u64()?;
        self.fresh = r.usize()?;
        if self.q.len() > self.cap || self.latched_len > self.cap {
            return Err(SnapError::Corrupt("flit FIFO over capacity".into()));
        }
        // `fresh` goes stale once later cycles pop the flits it counted
        // (it is only consulted while `last_push` equals the current
        // cycle), so it may legitimately exceed the queue length — but
        // never the capacity, which bounds one cycle's pushes.
        if self.fresh > self.cap {
            return Err(SnapError::Corrupt(
                "flit FIFO fresh count over capacity".into(),
            ));
        }
        Ok(())
    }
}

impl SnapshotState for PacketQueue {
    fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.cap);
        self.q.save(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let cap = r.usize()?;
        if cap != self.cap {
            return Err(SnapError::Mismatch(format!(
                "packet queue capacity {cap}, expected {}",
                self.cap
            )));
        }
        self.q = VecDeque::load(r)?;
        if self.q.len() > self.cap {
            return Err(SnapError::Corrupt("packet queue over capacity".into()));
        }
        Ok(())
    }
}

impl Snapshot for DrainState {
    fn save(&self, w: &mut SnapWriter) {
        self.current.map(|(r, s, t)| (r, (s, t))).save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let current = Option::<(PacketRef, (u32, u32))>::load(r)?;
        Ok(DrainState {
            current: current.map(|(p, (s, t))| (p, s, t)),
        })
    }
}

impl Snapshot for Assembler {
    fn save(&self, w: &mut SnapWriter) {
        self.current.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Assembler {
            current: Option::load(r)?,
        })
    }
}

impl SnapshotState for FlitPool {
    fn save_state(&self, w: &mut SnapWriter) {
        // Freelist buffers are interchangeable empty storage: only the
        // counters and the freelist size are state; capacities are a
        // warm-up detail a resumed run re-earns.
        w.usize(self.free.len());
        w.u64(self.allocated);
        w.u64(self.recycled);
        w.usize(self.outstanding);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let free = r.usize()?;
        self.free = (0..free).map(|_| Vec::new()).collect();
        self.allocated = r.u64()?;
        self.recycled = r.u64()?;
        self.outstanding = r.usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(slot: u32, seq: u32, tail: bool) -> Flit {
        // PacketRef has no public constructor by design; go through a store.
        use crate::packet::{NodeId, Packet, PacketKind, PacketStore, TxnId};
        let mut store = PacketStore::new();
        let mut r = store.insert(Packet {
            txn: TxnId::new(0),
            kind: PacketKind::ReadReq,
            src: NodeId::new(0),
            dst: NodeId::new(0),
            flits: 1,
            injected_at: 0,
        });
        for _ in 0..slot {
            r = store.insert(Packet {
                txn: TxnId::new(0),
                kind: PacketKind::ReadReq,
                src: NodeId::new(0),
                dst: NodeId::new(0),
                flits: 1,
                injected_at: 0,
            });
        }
        Flit {
            packet: r,
            seq,
            is_tail: tail,
        }
    }

    #[test]
    fn fifo_respects_arrival_cycle() {
        let mut f = FlitFifo::new(4);
        f.push(flit(0, 0, true), 10);
        assert_eq!(f.front_ready(10), None);
        assert!(f.front_ready(11).is_some());
        assert!(f.pop_ready(11).is_some());
        assert!(f.is_empty());
    }

    #[test]
    fn fifo_latched_space_lags_occupancy() {
        let mut f = FlitFifo::new(1);
        assert!(f.space_latched());
        f.push(flit(0, 0, true), 0);
        // Occupancy changed but the registered signal hasn't latched yet.
        assert!(f.space_latched());
        f.latch();
        assert!(!f.space_latched());
        f.pop_ready(1).unwrap();
        // Still stopped until the next latch — the stop/go bubble.
        assert!(!f.space_latched());
        f.latch();
        assert!(f.space_latched());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn fifo_overflow_panics() {
        let mut f = FlitFifo::new(1);
        f.push(flit(0, 0, true), 0);
        f.push(flit(0, 0, true), 0);
    }

    #[test]
    fn fifo_preserves_order() {
        let mut f = FlitFifo::new(3);
        for seq in 0..3 {
            f.push(flit(0, seq, seq == 2), 0);
        }
        for seq in 0..3 {
            assert_eq!(f.pop_ready(1).unwrap().seq, seq);
        }
    }

    #[test]
    fn packet_queue_bounds() {
        let mut store = crate::packet::PacketStore::new();
        let mk = |s: &mut crate::packet::PacketStore| {
            s.insert(crate::packet::Packet {
                txn: crate::packet::TxnId::new(0),
                kind: crate::packet::PacketKind::ReadReq,
                src: crate::packet::NodeId::new(0),
                dst: crate::packet::NodeId::new(0),
                flits: 1,
                injected_at: 0,
            })
        };
        let mut q = PacketQueue::new(1);
        assert!(q.can_accept());
        let a = mk(&mut store);
        q.push(a);
        assert!(!q.can_accept());
        assert_eq!(q.front(), Some(a));
        assert_eq!(q.pop(), Some(a));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_emits_contiguous_train() {
        let f = flit(3, 0, false);
        let mut d = DrainState::idle();
        d.begin(f.packet, 3);
        let flits: Vec<Flit> = (0..3).map(|_| d.emit()).collect();
        assert!(!d.is_active());
        assert_eq!(flits[0].seq, 0);
        assert!(flits[0].is_head());
        assert_eq!(flits[1].seq, 1);
        assert!(flits[2].is_tail);
        assert!(flits.iter().all(|fl| fl.packet == f.packet));
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn drain_rejects_overlap() {
        let f = flit(0, 0, false);
        let mut d = DrainState::idle();
        d.begin(f.packet, 2);
        d.begin(f.packet, 2);
    }

    #[test]
    fn assembler_completes_multiflit_packet() {
        let head = flit(2, 0, false);
        let mut a = Assembler::new();
        assert_eq!(a.push(head), None);
        assert!(a.is_mid_packet());
        assert_eq!(a.push(Flit { seq: 1, ..head }), None);
        let done = a.push(Flit {
            seq: 2,
            is_tail: true,
            ..head
        });
        assert_eq!(done, Some(head.packet));
        assert!(!a.is_mid_packet());
    }

    #[test]
    fn assembler_single_flit_packet() {
        let f = flit(0, 0, true);
        let mut a = Assembler::new();
        assert_eq!(a.push(f), Some(f.packet));
    }

    #[test]
    #[should_panic(expected = "interleaved")]
    fn assembler_rejects_interleave() {
        let a1 = flit(0, 0, false);
        let b1 = flit(5, 1, false);
        let mut a = Assembler::new();
        a.push(a1);
        a.push(b1);
    }
}

#[cfg(test)]
mod flit_pool_tests {
    use super::*;
    use crate::packet::{NodeId, Packet, PacketKind, PacketStore, TxnId};
    use ringmesh_faults::ConservationLedger;

    #[test]
    fn recycles_instead_of_reallocating() {
        let mut pool = FlitPool::new();
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(pool.allocated(), 2);
        assert_eq!(pool.outstanding(), 2);
        pool.recycle(a);
        pool.recycle(b);
        // Steady state: every further checkout is allocation-free.
        for _ in 0..100 {
            let t = pool.checkout();
            pool.recycle(t);
        }
        assert_eq!(pool.allocated(), 2);
        assert_eq!(pool.recycled(), 100);
        assert!(pool.leak_check().is_ok());
    }

    #[test]
    fn recycled_buffers_come_back_empty_with_capacity() {
        let mut store = PacketStore::new();
        let r = store.insert(Packet {
            txn: TxnId::new(0),
            kind: PacketKind::ReadResp,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            flits: 3,
            injected_at: 0,
        });
        let mut pool = FlitPool::new();
        let mut train = pool.checkout();
        for seq in 0..3 {
            train.push(Flit {
                packet: r,
                seq,
                is_tail: seq == 2,
            });
        }
        pool.recycle(train);
        let reused = pool.checkout();
        assert!(reused.is_empty(), "recycled train must be cleared");
        assert!(reused.capacity() >= 3, "recycled train keeps its storage");
        pool.recycle(reused);
    }

    #[test]
    fn leak_check_reports_outstanding_trains() {
        let mut pool = FlitPool::new();
        let held = pool.checkout();
        assert_eq!(pool.leak_check(), Err(1));
        pool.recycle(held);
        assert_eq!(pool.leak_check(), Ok(()));
    }

    /// The pool's checkout/recycle accounting mirrors the packet
    /// conservation ledger: one train per tracked packet, and the two
    /// drain invariants (ledger `verify`, pool `leak_check`) hold or
    /// fail together.
    #[test]
    fn pool_accounting_tracks_conservation_ledger() {
        let mut store = PacketStore::new();
        let mut ledger = ConservationLedger::new(true);
        let mut pool = FlitPool::new();
        let mut trains = Vec::new();
        for i in 0..8u64 {
            let r = store.insert(Packet {
                txn: TxnId::new(i),
                kind: PacketKind::ReadReq,
                src: NodeId::new(0),
                dst: NodeId::new(1),
                flits: 4,
                injected_at: 0,
            });
            ledger.inject(r.slot());
            trains.push((r, pool.checkout()));
        }
        assert_eq!(pool.outstanding() as u64, store.live());
        // Mid-flight: both invariants must fail in the same way.
        assert!(ledger.verify(0).is_err());
        assert!(pool.leak_check().is_err());
        // Complete every packet; its train goes back to the pool.
        for (r, train) in trains {
            let slot = r.slot();
            store.remove(r);
            ledger.complete(slot, false);
            pool.recycle(train);
        }
        assert_eq!(store.live(), 0);
        ledger.verify(store.live()).expect("ledger must balance");
        pool.leak_check().expect("no trains may leak");
        let (inj, del, drp) = ledger.counts();
        assert_eq!((inj, del, drp), (8, 8, 0));
        assert_eq!(pool.recycled() + pool.allocated(), inj);
    }
}

#[cfg(test)]
mod complete_packet_tests {
    use super::*;
    use crate::packet::{NodeId, Packet, PacketKind, PacketStore, TxnId};

    fn mk_ref(store: &mut PacketStore) -> crate::packet::PacketRef {
        store.insert(Packet {
            txn: TxnId::new(0),
            kind: PacketKind::ReadResp,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            flits: 3,
            injected_at: 0,
        })
    }

    #[test]
    fn tracks_complete_packets_across_push_pop() {
        let mut store = PacketStore::new();
        let r = mk_ref(&mut store);
        let mut f = FlitFifo::new(8);
        assert!(!f.has_complete_packet());
        f.push(
            Flit {
                packet: r,
                seq: 0,
                is_tail: false,
            },
            0,
        );
        f.push(
            Flit {
                packet: r,
                seq: 1,
                is_tail: false,
            },
            1,
        );
        assert!(!f.has_complete_packet(), "tail not yet arrived");
        f.push(
            Flit {
                packet: r,
                seq: 2,
                is_tail: true,
            },
            2,
        );
        assert!(f.has_complete_packet());
        f.pop_ready(3).unwrap();
        f.pop_ready(3).unwrap();
        assert!(f.has_complete_packet(), "tail still buffered");
        f.pop_ready(3).unwrap();
        assert!(!f.has_complete_packet());
    }

    #[test]
    fn multiple_packets_count_tails() {
        let mut store = PacketStore::new();
        let a = mk_ref(&mut store);
        let b = mk_ref(&mut store);
        let mut f = FlitFifo::new(8);
        f.push(
            Flit {
                packet: a,
                seq: 0,
                is_tail: true,
            },
            0,
        );
        f.push(
            Flit {
                packet: b,
                seq: 0,
                is_tail: true,
            },
            0,
        );
        assert!(f.has_complete_packet());
        f.pop_ready(1).unwrap();
        assert!(f.has_complete_packet(), "second packet still complete");
        f.pop_ready(1).unwrap();
        assert!(!f.has_complete_packet());
    }
}
