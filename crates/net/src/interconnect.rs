//! The [`Interconnect`] trait: the contract between the workload driver
//! and a network model, satisfied by both the hierarchical-ring and the
//! mesh simulators so experiments can swap networks freely.

use ringmesh_engine::StallError;
use ringmesh_faults::{ConservationError, FaultDomain, FaultInjector};
use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use ringmesh_trace::Tracer;

use crate::packet::{NodeId, Packet};
use crate::PacketKind;

/// The two traffic classes. Requests and responses queue separately at
/// every injection point (NIC output buffers, IRI up/down buffers) and
/// responses have priority, which is essential for forward progress in
/// a request/response protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueClass {
    /// Read and write requests.
    Request,
    /// Read and write responses.
    Response,
}

impl QueueClass {
    /// The class a packet of the given kind travels in.
    pub fn of(kind: PacketKind) -> QueueClass {
        if kind.is_request() {
            QueueClass::Request
        } else {
            QueueClass::Response
        }
    }
}

impl Snapshot for QueueClass {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            QueueClass::Request => 0,
            QueueClass::Response => 1,
        });
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(QueueClass::Request),
            1 => Ok(QueueClass::Response),
            t => Err(SnapError::Corrupt(format!("invalid queue class tag {t}"))),
        }
    }
}

/// Utilization of one level of the network (one ring level, or the whole
/// mesh fabric), in fraction of maximum link capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelUtil {
    /// Human-readable label ("local rings", "global ring", "mesh links").
    pub label: String,
    /// Busy link-cycles divided by available link-cycles, in `[0, 1]`.
    pub utilization: f64,
}

/// Network utilization snapshot since the last counter reset.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UtilizationReport {
    /// Utilization over all network links combined.
    pub overall: f64,
    /// Per-level breakdown, outermost (local) first.
    pub levels: Vec<LevelUtil>,
}

impl UtilizationReport {
    /// Utilization of the level with the given label, if present.
    pub fn level(&self, label: &str) -> Option<f64> {
        self.levels
            .iter()
            .find(|l| l.label == label)
            .map(|l| l.utilization)
    }
}

/// A flit-level interconnection network connecting `P` processing
/// modules, advanced one clock cycle at a time.
///
/// Injection is two-step: the driver checks [`can_inject`] (the PM's NIC
/// output queue for the packet's class has room) and then calls
/// [`inject`]. Each [`step`] advances every network component one cycle
/// and appends fully-delivered packets to `delivered`.
///
/// [`can_inject`]: Interconnect::can_inject
/// [`inject`]: Interconnect::inject
/// [`step`]: Interconnect::step
pub trait Interconnect {
    /// Number of processing modules attached to the network.
    fn num_pms(&self) -> usize;

    /// Current simulation cycle (number of completed [`step`]s).
    ///
    /// [`step`]: Interconnect::step
    fn cycle(&self) -> u64;

    /// Whether PM `pm`'s output queue for `class` can accept a packet.
    fn can_inject(&self, pm: NodeId, class: QueueClass) -> bool;

    /// Sizes the network's intra-cycle kernel to `threads` compute
    /// threads (1 = serial; 0 is clamped to 1). Parallel stepping is
    /// required to be byte-identical to serial at any count, so this
    /// is purely a performance knob: it is never part of the
    /// configuration fingerprint, and a checkpoint taken at one count
    /// restores at any other. The default implementation ignores the
    /// request — models whose intra-cycle dependencies make sharding
    /// unsound (the hierarchical rings; see `crates/ring`) simply stay
    /// serial.
    fn set_kernel_threads(&mut self, threads: usize) {
        let _ = threads;
    }

    /// The number of compute threads the intra-cycle kernel currently
    /// uses (1 for serial-only models).
    fn kernel_threads(&self) -> usize {
        1
    }

    /// Hands `packet` to PM `pm`'s network interface.
    ///
    /// # Panics
    ///
    /// Panics if the corresponding output queue is full (callers gate on
    /// [`can_inject`](Interconnect::can_inject)) or if source/destination
    /// are out of range.
    fn inject(&mut self, pm: NodeId, packet: Packet);

    /// Advances the network one clock cycle. Packets whose tail flit
    /// reached their destination PM this cycle are appended to
    /// `delivered` as `(destination, packet)` pairs.
    ///
    /// # Errors
    ///
    /// Returns a [`StallError`] if the network watchdog detects a
    /// deadlock (no flit movement for its horizon while packets are in
    /// flight).
    fn step(&mut self, delivered: &mut Vec<(NodeId, Packet)>) -> Result<(), StallError>;

    /// Number of packets currently inside the network (injected but not
    /// yet delivered).
    fn in_flight(&self) -> u64;

    /// Utilization accumulated since the last [`reset_counters`] call.
    ///
    /// [`reset_counters`]: Interconnect::reset_counters
    fn utilization(&self) -> UtilizationReport;

    /// Clears utilization counters (called at the end of the warm-up
    /// phase so statistics exclude initialization bias).
    fn reset_counters(&mut self);

    /// Installs `tracer` as the network's observability sink; the
    /// network announces each cycle to it and emits counters, gauges,
    /// heatmap bumps and flit-lifecycle events (see `ringmesh-trace`).
    /// The default implementation drops the tracer: networks that do
    /// not support tracing simply record nothing.
    fn set_tracer(&mut self, tracer: Tracer) {
        drop(tracer);
    }

    /// The installed tracer, if tracing is supported and one was set.
    /// Lets co-operating components (e.g. the workload driver) emit
    /// their own counters into the same trace.
    fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        None
    }

    /// Removes and returns the installed tracer so its recording can be
    /// finalized into a report. `None` when tracing is unsupported or
    /// no tracer was set.
    fn take_tracer(&mut self) -> Option<Tracer> {
        None
    }

    /// The fault domain this network exposes: how many links and nodes
    /// a [`FaultInjector`] may target. The default (empty) domain marks
    /// the network as not supporting fault injection.
    fn fault_domain(&self) -> FaultDomain {
        FaultDomain::default()
    }

    /// Installs `injector` as the network's fault source; `check`
    /// additionally enables exact per-packet conservation tracking even
    /// in release builds. The default implementation drops the
    /// injector: networks without fault support run fault-free.
    fn set_faults(&mut self, injector: FaultInjector, check: bool) {
        let _ = (injector, check);
    }

    /// The installed fault injector, if fault injection is supported
    /// and one was set.
    fn faults(&self) -> Option<&FaultInjector> {
        None
    }

    /// Removes and returns the installed fault injector so its drop
    /// accounting can be reported.
    fn take_faults(&mut self) -> Option<FaultInjector> {
        None
    }

    /// Whether PM `pm` is still alive. Workloads stop issuing from (and
    /// retrying toward) dead PMs. Always true without fault injection.
    fn pm_alive(&self, pm: NodeId) -> bool {
        let _ = pm;
        true
    }

    /// Audits packet conservation: every packet injected must be
    /// delivered, explicitly dropped, or still in flight. Networks
    /// without a ledger trivially pass.
    fn verify_conservation(&self) -> Result<(), ConservationError> {
        Ok(())
    }

    /// `(injected, delivered, dropped)` ledger counters, when a
    /// conservation ledger is present.
    fn conservation_counts(&self) -> Option<(u64, u64, u64)> {
        None
    }

    /// Serializes the network's mutable state (in-flight packets,
    /// buffer contents, per-station switching state, cycle counters)
    /// into `w` for a deterministic checkpoint. Immutable structure —
    /// topology, routing tables, capacities — is *not* written; a
    /// resume rebuilds it from configuration and pours this state back
    /// in via [`restore_state`](Interconnect::restore_state).
    ///
    /// # Errors
    ///
    /// The default implementation returns [`SnapError::Mismatch`]:
    /// the network does not support checkpointing.
    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        let _ = w;
        Err(SnapError::Mismatch(
            "this network model does not support state snapshots".into(),
        ))
    }

    /// Restores mutable state previously written by
    /// [`save_state`](Interconnect::save_state) into a freshly
    /// constructed network of the *same* configuration. After a
    /// successful restore the network continues bit-identically to the
    /// one that was checkpointed.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on truncated/corrupt input or a
    /// configuration mismatch (different topology, buffer depths...).
    /// The default implementation always errors: checkpointing is
    /// unsupported.
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let _ = r;
        Err(SnapError::Mismatch(
            "this network model does not support state snapshots".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_of_kind() {
        assert_eq!(QueueClass::of(PacketKind::ReadReq), QueueClass::Request);
        assert_eq!(QueueClass::of(PacketKind::WriteReq), QueueClass::Request);
        assert_eq!(QueueClass::of(PacketKind::ReadResp), QueueClass::Response);
        assert_eq!(QueueClass::of(PacketKind::WriteResp), QueueClass::Response);
    }

    #[test]
    fn report_lookup_by_label() {
        let report = UtilizationReport {
            overall: 0.4,
            levels: vec![
                LevelUtil {
                    label: "local rings".into(),
                    utilization: 0.3,
                },
                LevelUtil {
                    label: "global ring".into(),
                    utilization: 0.9,
                },
            ],
        };
        assert_eq!(report.level("global ring"), Some(0.9));
        assert_eq!(report.level("nonexistent"), None);
    }
}
