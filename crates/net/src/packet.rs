//! Packets, flits and the in-flight packet store.
//!
//! The paper simulates four packet types — read request, read response,
//! write request and write response — transferred as trains of flits.
//! The simulator keeps one [`Packet`] record per in-flight packet in a
//! [`PacketStore`] slab; the flits moving through buffers are tiny
//! [`Flit`] values that reference their packet by [`PacketRef`].

use std::fmt;

use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Identifier of a processing module (PM): processor + cache + its slice
/// of the global memory. PMs are numbered 0..P in the network's natural
/// order (DFS order for ring hierarchies, row-major for meshes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its index.
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The node's index as a `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The node's raw index.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PM{}", self.0)
    }
}

/// Identifier of a memory transaction (one request/response pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(u64);

impl TxnId {
    /// Creates a transaction id from its sequence number.
    pub fn new(seq: u64) -> Self {
        TxnId(seq)
    }

    /// The raw sequence number.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// The four packet types the paper simulates (§2, footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Request for a cache line (header only).
    ReadReq,
    /// Cache-line data returning to the requester.
    ReadResp,
    /// Write of a cache line to its home memory (header + data).
    WriteReq,
    /// Write acknowledgement (header only).
    WriteResp,
}

impl PacketKind {
    /// Whether this packet travels on the request network class.
    /// Requests and responses queue separately in NICs and IRIs.
    pub fn is_request(self) -> bool {
        matches!(self, PacketKind::ReadReq | PacketKind::WriteReq)
    }

    /// Whether the packet carries a cache line of data.
    pub fn carries_data(self) -> bool {
        matches!(self, PacketKind::ReadResp | PacketKind::WriteReq)
    }

    /// The packet kind of the memory's reply to this request.
    ///
    /// # Panics
    ///
    /// Panics if called on a response kind.
    pub fn response(self) -> PacketKind {
        match self {
            PacketKind::ReadReq => PacketKind::ReadResp,
            PacketKind::WriteReq => PacketKind::WriteResp,
            other => panic!("{other:?} is not a request kind"),
        }
    }
}

impl fmt::Display for PacketKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PacketKind::ReadReq => "read-req",
            PacketKind::ReadResp => "read-resp",
            PacketKind::WriteReq => "write-req",
            PacketKind::WriteResp => "write-resp",
        };
        f.write_str(s)
    }
}

/// One network packet: a contiguous worm of `flits` flits.
///
/// This is a passive record; the network models move [`Flit`]s that
/// reference it through their buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Transaction this packet belongs to.
    pub txn: TxnId,
    /// Packet type.
    pub kind: PacketKind,
    /// Originating PM.
    pub src: NodeId,
    /// Destination PM (the home memory for requests, the requester for
    /// responses).
    pub dst: NodeId,
    /// Total length in flits, per the owning network's [`PacketFormat`].
    ///
    /// [`PacketFormat`]: crate::PacketFormat
    pub flits: u32,
    /// Cycle at which the packet entered the network interface.
    pub injected_at: u64,
}

/// Handle to an in-flight packet inside a [`PacketStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef(u32);

impl PacketRef {
    /// The slab slot index.
    pub fn slot(self) -> usize {
        self.0 as usize
    }
}

/// One flit of an in-flight packet. `seq == 0` is the head flit (the
/// only one carrying routing information); `is_tail` marks the last.
/// A one-flit packet's single flit is both head and tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// The packet this flit belongs to.
    pub packet: PacketRef,
    /// Position within the packet, starting at 0 for the head.
    pub seq: u32,
    /// Whether this is the final flit of the packet.
    pub is_tail: bool,
}

impl Flit {
    /// Whether this is the head flit (carries routing information).
    pub fn is_head(self) -> bool {
        self.seq == 0
    }
}

/// Slab of in-flight packets. Insertion returns a stable [`PacketRef`]
/// used by every flit of the packet; removal returns the record when the
/// packet is fully delivered.
#[derive(Debug, Default)]
pub struct PacketStore {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
    live: u64,
}

impl PacketStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PacketStore::default()
    }

    /// Inserts a packet, returning its handle.
    pub fn insert(&mut self, packet: Packet) -> PacketRef {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            debug_assert!(self.slots[slot as usize].is_none());
            self.slots[slot as usize] = Some(packet);
            PacketRef(slot)
        } else {
            self.slots.push(Some(packet));
            PacketRef((self.slots.len() - 1) as u32)
        }
    }

    /// Looks up an in-flight packet.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not refer to a live packet (a handle
    /// used after removal is always a simulator bug).
    pub fn get(&self, r: PacketRef) -> &Packet {
        self.slots[r.slot()].as_ref().expect("stale PacketRef")
    }

    /// Removes a fully-delivered packet, freeing its slot.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not refer to a live packet.
    pub fn remove(&mut self, r: PacketRef) -> Packet {
        let pkt = self.slots[r.slot()].take().expect("stale PacketRef");
        self.free.push(r.slot() as u32);
        self.live -= 1;
        pkt
    }

    /// Number of packets currently in flight.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Whether no packets are in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over live packets (diagnostics; not on the hot path).
    pub fn iter(&self) -> impl Iterator<Item = (PacketRef, &Packet)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|p| (PacketRef(i as u32), p)))
    }
}

impl Snapshot for NodeId {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(NodeId(r.u32()?))
    }
}

impl Snapshot for TxnId {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TxnId(r.u64()?))
    }
}

impl Snapshot for PacketKind {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            PacketKind::ReadReq => 0,
            PacketKind::ReadResp => 1,
            PacketKind::WriteReq => 2,
            PacketKind::WriteResp => 3,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(PacketKind::ReadReq),
            1 => Ok(PacketKind::ReadResp),
            2 => Ok(PacketKind::WriteReq),
            3 => Ok(PacketKind::WriteResp),
            t => Err(SnapError::Corrupt(format!("packet kind tag {t}"))),
        }
    }
}

impl Snapshot for Packet {
    fn save(&self, w: &mut SnapWriter) {
        self.txn.save(w);
        self.kind.save(w);
        self.src.save(w);
        self.dst.save(w);
        w.u32(self.flits);
        w.u64(self.injected_at);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Packet {
            txn: TxnId::load(r)?,
            kind: PacketKind::load(r)?,
            src: NodeId::load(r)?,
            dst: NodeId::load(r)?,
            flits: r.u32()?,
            injected_at: r.u64()?,
        })
    }
}

// `PacketRef` deliberately has no public constructor — handles are only
// minted by `PacketStore::insert`. Snapshot decoding is the one other
// legitimate mint: a handle round-trips with the store whose slot
// numbering it indexes, so a restored ref is as valid as the original.
impl Snapshot for PacketRef {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(PacketRef(r.u32()?))
    }
}

impl Snapshot for Flit {
    fn save(&self, w: &mut SnapWriter) {
        self.packet.save(w);
        w.u32(self.seq);
        w.bool(self.is_tail);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Flit {
            packet: PacketRef::load(r)?,
            seq: r.u32()?,
            is_tail: r.bool()?,
        })
    }
}

impl Snapshot for PacketStore {
    fn save(&self, w: &mut SnapWriter) {
        self.slots.save(w);
        self.free.save(w);
        w.u64(self.live);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let slots: Vec<Option<Packet>> = Vec::load(r)?;
        let free: Vec<u32> = Vec::load(r)?;
        let live = r.u64()?;
        let occupied = slots.iter().filter(|s| s.is_some()).count() as u64;
        if occupied != live || free.len() + occupied as usize != slots.len() {
            return Err(SnapError::Corrupt(format!(
                "packet store accounting: {occupied} occupied, {live} live, {} free of {}",
                free.len(),
                slots.len()
            )));
        }
        Ok(PacketStore { slots, free, live })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(txn: u64) -> Packet {
        Packet {
            txn: TxnId::new(txn),
            kind: PacketKind::ReadReq,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            flits: 1,
            injected_at: 0,
        }
    }

    #[test]
    fn kind_classification() {
        assert!(PacketKind::ReadReq.is_request());
        assert!(PacketKind::WriteReq.is_request());
        assert!(!PacketKind::ReadResp.is_request());
        assert!(!PacketKind::WriteResp.is_request());
        assert!(PacketKind::ReadResp.carries_data());
        assert!(PacketKind::WriteReq.carries_data());
        assert!(!PacketKind::ReadReq.carries_data());
        assert!(!PacketKind::WriteResp.carries_data());
    }

    #[test]
    fn response_pairs() {
        assert_eq!(PacketKind::ReadReq.response(), PacketKind::ReadResp);
        assert_eq!(PacketKind::WriteReq.response(), PacketKind::WriteResp);
    }

    #[test]
    #[should_panic(expected = "not a request")]
    fn response_of_response_panics() {
        PacketKind::ReadResp.response();
    }

    #[test]
    fn store_insert_get_remove() {
        let mut store = PacketStore::new();
        let a = store.insert(packet(1));
        let b = store.insert(packet(2));
        assert_eq!(store.live(), 2);
        assert_eq!(store.get(a).txn, TxnId::new(1));
        assert_eq!(store.get(b).txn, TxnId::new(2));
        assert_eq!(store.remove(a).txn, TxnId::new(1));
        assert_eq!(store.live(), 1);
    }

    #[test]
    fn store_reuses_slots() {
        let mut store = PacketStore::new();
        let a = store.insert(packet(1));
        store.remove(a);
        let b = store.insert(packet(2));
        assert_eq!(a.slot(), b.slot(), "freed slot should be reused");
        assert_eq!(store.get(b).txn, TxnId::new(2));
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn stale_ref_detected() {
        let mut store = PacketStore::new();
        let a = store.insert(packet(1));
        store.remove(a);
        store.get(a);
    }

    #[test]
    fn head_and_tail_flags() {
        let f = Flit {
            packet: PacketRef(0),
            seq: 0,
            is_tail: false,
        };
        assert!(f.is_head());
        let single = Flit {
            packet: PacketRef(0),
            seq: 0,
            is_tail: true,
        };
        assert!(single.is_head() && single.is_tail);
    }

    #[test]
    fn iter_visits_live_packets_only() {
        let mut store = PacketStore::new();
        let a = store.insert(packet(1));
        let _b = store.insert(packet(2));
        store.remove(a);
        let txns: Vec<u64> = store.iter().map(|(_, p)| p.txn.raw()).collect();
        assert_eq!(txns, [2]);
    }
}
