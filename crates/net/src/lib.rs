//! Network-neutral wormhole-switching primitives shared by the
//! hierarchical-ring and mesh models of the `ringmesh` simulator.
//!
//! The paper (Ravindran & Stumm, HPCA 1997) models both networks at the
//! flit level with wormhole switching: a packet is a contiguous train of
//! flits; the head flit acquires links and buffer slots, the tail flit
//! releases them, and a blocked packet stalls in place with back-pressure
//! to its upstream node. This crate provides the pieces common to both
//! network models:
//!
//! * [`CacheLineSize`], [`PacketFormat`], [`BufferRegime`] — the sizing
//!   rules of §2 of the paper (128-bit ring flits vs 32-bit mesh flits,
//!   1-flit vs 4-flit ring/mesh headers, 1/4/cache-line-sized buffers)
//!   including the Table 1 buffer-memory arithmetic.
//! * [`Packet`], [`PacketKind`], [`Flit`], [`PacketStore`] — the four
//!   simulated packet types and their in-flight flit representation.
//! * [`FlitFifo`], [`PacketQueue`], [`DrainState`], [`Assembler`] — the
//!   FIFO buffers from which every NIC and inter-ring interface is
//!   assembled, with the registered (previous-cycle) stop/go flow
//!   control discipline baked in.
//! * [`Interconnect`] — the trait through which the workload drives
//!   either network interchangeably.
//!
//! # Example
//!
//! ```
//! use ringmesh_net::{CacheLineSize, PacketFormat, PacketKind};
//!
//! // A 64-byte-line read response on the 128-bit ring is 1 header
//! // flit + 4 data flits; on the 32-bit mesh it is 4 + 16 flits.
//! let cl = CacheLineSize::B64;
//! assert_eq!(PacketFormat::RING.flits(PacketKind::ReadResp, cl), 5);
//! assert_eq!(PacketFormat::MESH.flits(PacketKind::ReadResp, cl), 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod config;
mod error;
mod interconnect;
mod packet;
mod topology;

pub use buffer::{Assembler, DrainState, FlitFifo, FlitPool, PacketQueue};
pub use config::{
    mesh_nic_buffer_bytes, ring_nic_buffer_bytes, BufferRegime, CacheLineSize, PacketFormat,
};
pub use error::ConfigError;
pub use interconnect::{Interconnect, LevelUtil, QueueClass, UtilizationReport};
pub use packet::{Flit, NodeId, Packet, PacketKind, PacketRef, PacketStore, TxnId};
pub use topology::{Placement, TopologyBuilder};
