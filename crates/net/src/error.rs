//! Typed configuration errors.
//!
//! Topology constructors and the CLI used to abort on bad input via
//! `assert!`/`panic!`; they now return a [`ConfigError`] so callers can
//! print a message and exit cleanly.

use std::fmt;

/// A rejected configuration value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A ring spec with no levels (empty string or no numbers).
    EmptyRingSpec,
    /// A ring spec deeper than the simulator supports.
    TooManyRingLevels {
        /// Levels requested.
        levels: usize,
        /// Maximum supported depth.
        max: usize,
    },
    /// A ring level with zero arity.
    ZeroRingArity {
        /// Zero-based index of the offending level.
        level: usize,
    },
    /// A ring spec string that failed to parse.
    BadRingSpec {
        /// The offending spec text.
        spec: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A mesh with side length zero.
    ZeroMeshSide,
    /// A PM count that is not a perfect square (mesh networks are k×k).
    NonSquareMesh {
        /// The PM count requested.
        pms: u32,
    },
    /// Any other invalid parameter.
    Invalid(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyRingSpec => write!(f, "ring spec must name at least one level"),
            ConfigError::TooManyRingLevels { levels, max } => {
                write!(f, "ring spec has {levels} levels; at most {max} supported")
            }
            ConfigError::ZeroRingArity { level } => {
                write!(f, "ring level {level} has zero arity")
            }
            ConfigError::BadRingSpec { spec, reason } => {
                write!(f, "bad ring spec {spec:?}: {reason}")
            }
            ConfigError::ZeroMeshSide => write!(f, "mesh side length must be positive"),
            ConfigError::NonSquareMesh { pms } => {
                write!(
                    f,
                    "{pms} PMs is not a perfect square; mesh networks are k x k"
                )
            }
            ConfigError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<String> for ConfigError {
    fn from(msg: String) -> Self {
        ConfigError::Invalid(msg)
    }
}

impl From<&str> for ConfigError {
    fn from(msg: &str) -> Self {
        ConfigError::Invalid(msg.to_string())
    }
}

impl From<ConfigError> for String {
    fn from(e: ConfigError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ConfigError::TooManyRingLevels { levels: 9, max: 8 };
        assert!(e.to_string().contains("9 levels"));
        let e = ConfigError::NonSquareMesh { pms: 24 };
        assert!(e.to_string().contains("24"));
    }

    #[test]
    fn string_conversions_round_trip() {
        let e: ConfigError = "bad knob".into();
        let s: String = e.into();
        assert_eq!(s, "bad knob");
    }
}
