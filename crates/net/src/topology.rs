//! The topology registry seam: one trait every network crate
//! implements so that construction, identity and workload-facing
//! geometry live in exactly one place per topology.
//!
//! Before this layer existed the simulator dispatched on a closed
//! `NetworkSpec` enum in every call site that needed a network — the
//! system builder, the sweep harnesses, the serve job parser and the
//! CLI each carried their own `match` with its own copy of the
//! placement/packet-format/PM-count rules. A [`TopologyBuilder`]
//! collapses all of that: the config layer parses a spec string into a
//! builder once, and everything downstream (workload placement, packet
//! sizing, canonical labels, the network itself) is asked of the
//! builder.
//!
//! Implementations live with their kernels (`ringmesh-ring`,
//! `ringmesh-mesh`, `ringmesh-hybrid`); this crate only defines the
//! contract so the dependency arrows keep pointing the right way.

use crate::{CacheLineSize, ConfigError, Interconnect, PacketFormat};

/// How PM "closeness" is measured when building workload access
/// regions (§2.4 of the paper). Lives here — rather than in the
/// workload crate — because each [`TopologyBuilder`] names its own
/// placement; the workload crate interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// PMs in a linear (ring DFS) order of `pms` nodes, wrapping.
    Linear {
        /// Total number of PMs.
        pms: u32,
    },
    /// PMs on a `side × side` grid, closeness by Manhattan distance.
    Grid {
        /// Mesh side length.
        side: u32,
    },
    /// PMs grouped into `side × side` local rings of `local` stations
    /// each, one ring per mesh router: ring-mates are closest, then
    /// rings ordered by Manhattan distance between their routers.
    RingGrid {
        /// Global mesh side length.
        side: u32,
        /// Stations per local ring.
        local: u32,
    },
}

impl Placement {
    /// Total number of PMs under this placement.
    pub fn num_pms(&self) -> u32 {
        match *self {
            Placement::Linear { pms } => pms,
            Placement::Grid { side } => side * side,
            Placement::RingGrid { side, local } => side * side * local,
        }
    }
}

/// One buildable network topology: the single source of truth for its
/// size, identity strings, workload geometry and construction.
///
/// A builder is cheap to create (it holds only the parsed spec, not a
/// network) and answers every question the rest of the simulator used
/// to answer with per-call-site `match` arms:
///
/// * [`num_pms`](Self::num_pms) — how many processing modules;
/// * [`label`](Self::label) — the human description used in reports;
/// * [`spec`](Self::spec) — the canonical `--topology` string, which
///   must parse back to an equivalent builder (round-trip pinned by
///   tests in `ringmesh-core`);
/// * [`placement`](Self::placement) / [`format`](Self::format) — what
///   the M-MRP workload needs to size packets and build access
///   regions;
/// * [`build`](Self::build) — the network itself.
pub trait TopologyBuilder {
    /// Number of processing modules in the built network.
    fn num_pms(&self) -> u32;

    /// Human-readable description, e.g. `"ring 2:3:4"` or
    /// `"mesh 6x6 (4-flit buffers)"`.
    fn label(&self) -> String;

    /// The canonical spec string, e.g. `"ring:2:3:4"` or
    /// `"hybrid:4x4:4"`. Feeding this back through the spec parser
    /// yields an equivalent builder; it is also the `net=` field of
    /// the canonical config encoding, so it must be stable.
    fn spec(&self) -> String;

    /// How the workload should measure PM closeness on this topology.
    fn placement(&self) -> Placement;

    /// The packet format (channel width / header flits) PMs use when
    /// sizing packets for this network.
    fn format(&self) -> PacketFormat;

    /// Whether the network's `step` supports intra-cycle kernel
    /// parallelism (`set_kernel_threads` > 1 has an effect).
    fn parallel_kernel(&self) -> bool;

    /// Builds the network.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for specs that name an unbuildable
    /// shape (callers normally pre-validate, so this is a backstop).
    fn build(&self, cache_line: CacheLineSize) -> Result<Box<dyn Interconnect>, ConfigError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_pm_counts() {
        assert_eq!(Placement::Linear { pms: 24 }.num_pms(), 24);
        assert_eq!(Placement::Grid { side: 5 }.num_pms(), 25);
        assert_eq!(Placement::RingGrid { side: 4, local: 4 }.num_pms(), 64);
    }
}
