//! The hybrid Ring-Mesh network simulator.
//!
//! Topology: a `G×G` global wormhole mesh whose routers each own one
//! uni-directional local ring of `L` processing modules. PM `p` sits
//! on ring `p / L` at local position `p % L`. Every local ring has
//! `L + 1` stations: `L` NICs (the same station state machine as the
//! hierarchical ring's) plus one *bridge*, an inter-ring interface
//! whose "upper ring" has been replaced by a port into the mesh
//! router it rides on.
//!
//! A cross-ring packet travels NIC → local ring → bridge (classified
//! as *crossing*, one flit per cycle into the bridge's finite
//! ring→mesh queue) → bridge pump (one flit per cycle into the mesh
//! router's injection queue, store-and-forward) → e-cube mesh →
//! destination router's ejection assembler → destination bridge's
//! elastic mesh→ring queue → local ring entry under the credit rule →
//! destination NIC.

use ringmesh_engine::{KernelPool, StallError, Watchdog};
use ringmesh_faults::{
    ConservationError, ConservationLedger, DropReason, FaultDomain, FaultInjector,
};
use ringmesh_mesh::kernel::{CommitOp, FaultCtx, MeshShard, LOCAL};
use ringmesh_mesh::MeshTopology;
use ringmesh_net::{
    Flit, Interconnect, LevelUtil, NodeId, Packet, PacketRef, PacketStore, QueueClass,
    UtilizationReport,
};
use ringmesh_ring::kernel::{Iri, Nic, Send as RingSend, StepPulse, LOWER};
use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot, SnapshotState};
use ringmesh_trace::{Counter, EventKind, Gauge, Probe, TraceLoc, Tracer};

use crate::HybridConfig;

/// A flit-level, cycle-accurate hybrid Ring-Mesh network.
///
/// Implements [`Interconnect`]; drive it with the `ringmesh-workload`
/// crate or directly as in the example below.
///
/// # Example
///
/// ```
/// use ringmesh_net::{CacheLineSize, Interconnect, NodeId, Packet, PacketKind, TxnId};
/// use ringmesh_hybrid::{HybridConfig, HybridNetwork};
///
/// // 2x2 global mesh, 2-PM local rings: 8 PMs.
/// let cfg = HybridConfig::new(CacheLineSize::B32);
/// let mut net = HybridNetwork::new(2, 2, cfg.clone()).unwrap();
/// let kind = PacketKind::ReadReq;
/// net.inject(NodeId::new(0), Packet {
///     txn: TxnId::new(1), kind,
///     src: NodeId::new(0), dst: NodeId::new(7),
///     flits: cfg.format.flits(kind, cfg.cache_line),
///     injected_at: 0,
/// });
/// let mut delivered = Vec::new();
/// while delivered.is_empty() {
///     net.step(&mut delivered).unwrap();
/// }
/// assert_eq!(delivered[0].0, NodeId::new(7));
/// ```
#[derive(Debug)]
pub struct HybridNetwork {
    /// Global mesh side (`G`).
    side: u32,
    /// PMs per local ring (`L`).
    local: u32,
    cfg: HybridConfig,
    topo: MeshTopology,
    store: PacketStore,
    /// One NIC per PM, in PM order.
    nics: Vec<Nic>,
    /// One bridge per mesh router, in router order. Only the bridge's
    /// `LOWER` side is clocked — its crossbar joins the local ring to
    /// the pump/descent queues instead of a parent ring.
    bridges: Vec<Iri>,
    /// Active-station worklist over all `G²·(L+1)` ring stations
    /// (station `g·(L+1)+s`; `s == L` is the bridge).
    station_active: Vec<bool>,
    /// Registered free-slot count of each station's transit buffer.
    free: Vec<usize>,
    /// Per-cycle ring wire transfers (scratch).
    sends: Vec<RingSend>,
    /// Mesh router state, one shard per mesh row, with the route LUT
    /// stride widened to the PM count (destinations are PMs; the LUT
    /// points each one at its owner router).
    shards: Vec<MeshShard>,
    route_lut: Vec<u8>,
    /// Registered mesh stop/go (`router*5 + port`).
    go: Vec<bool>,
    /// Intra-cycle worker pool for the mesh compute/latch phases;
    /// serial (inline) by default. The ring tier is inherently serial
    /// (shared credit counters), exactly as in `ringmesh-ring`.
    kernel: KernelPool,
    cycle: u64,
    /// Flits moved per local ring (utilization accounting).
    ring_flits: Vec<u64>,
    /// Flits moved on mesh links.
    mesh_flits: u64,
    /// Free transit flit slots per local ring (the deadlock-avoidance
    /// credits: ring entry requires at least two remaining).
    ring_credits: Vec<i64>,
    reset_cycle: u64,
    watchdog: Watchdog,
    /// Observability sink; disabled (free) unless installed via
    /// [`Interconnect::set_tracer`].
    tracer: Tracer,
    /// Fault source; absent in fault-free runs. The hybrid's fault
    /// domain is the bridges (nodes) and the ring links (as in the
    /// hierarchical ring, `station*2 + side`).
    faults: Option<FaultInjector>,
    ledger: ConservationLedger,
    /// Corruption marks by packet-store slot, rolled at injection and
    /// checked once, at the destination NIC's reassembly.
    corrupt: Vec<bool>,
    dropped: Vec<(Packet, DropReason)>,
    /// Packets sunk at dead bridges, pending drop accounting.
    sunk: Vec<PacketRef>,
}

impl HybridNetwork {
    /// Builds a `side × side` global mesh of `local`-PM rings.
    ///
    /// # Errors
    ///
    /// Returns a [`ringmesh_net::ConfigError`] when `side` or `local`
    /// is zero.
    pub fn new(
        side: u32,
        local: u32,
        cfg: HybridConfig,
    ) -> Result<Self, ringmesh_net::ConfigError> {
        if local == 0 {
            return Err(ringmesh_net::ConfigError::Invalid(
                "hybrid local ring size must be positive".into(),
            ));
        }
        let topo = MeshTopology::try_new(side)?;
        let g2 = (side * side) as usize;
        let l = local as usize;
        let p = g2 * l;
        let spr = l + 1; // stations per ring
        let buf_flits = cfg.ring_buffer_flits();
        let mut nics = Vec::with_capacity(p);
        let mut bridges = Vec::with_capacity(g2);
        for g in 0..g2 {
            let base = (g * spr) as u32;
            for s in 0..l {
                // Station s feeds station s+1; the bridge (station L)
                // wraps back to station 0.
                let next = base + (s as u32 + 1) % spr as u32;
                nics.push(Nic::new(
                    NodeId::new((g * l + s) as u32),
                    g as u32,
                    (next, 0),
                    buf_flits,
                    cfg.out_queue_packets,
                ));
            }
            // The bridge's subtree is its ring's PM interval, so the
            // stock IRI crossbar classifies exactly the cross-ring
            // packets as "crossing" on its LOWER side. Both ring slots
            // name the local ring; the UPPER side is never clocked.
            bridges.push(Iri::new(
                ((g * l) as u32, ((g + 1) * l) as u32),
                [g as u32, g as u32],
                [(base, 0), (base, 1)],
                buf_flits,
                cfg.bridge_queue_flits(),
                cfg.bridge_down_queue_flits(),
                cfg.convoy_threshold_flits(),
            ));
        }
        // Destination-is-a-PM route LUT: every PM routes to its owner
        // router by plain e-cube, LOCAL at the owner (ejection into
        // the bridge).
        let mut route_lut = vec![0u8; g2 * p];
        for node in 0..g2 {
            for dst_pm in 0..p {
                let owner = dst_pm / l;
                route_lut[node * p + dst_pm] = if owner == node {
                    LOCAL as u8
                } else {
                    topo.ecube(NodeId::new(node as u32), NodeId::new(owner as u32))
                        .expect("distinct routers always have an e-cube direction")
                        .port() as u8
                };
            }
        }
        let shards = (0..side as usize)
            .map(|row| {
                MeshShard::with_stride(
                    row * side as usize,
                    side as usize,
                    &topo,
                    p,
                    cfg.mesh_buffer_flits(),
                    cfg.out_queue_packets,
                )
            })
            .collect();
        let horizon = cfg.watchdog_horizon;
        Ok(HybridNetwork {
            side,
            local,
            cfg,
            topo,
            store: PacketStore::new(),
            nics,
            bridges,
            station_active: vec![true; g2 * spr],
            free: vec![buf_flits; g2 * spr],
            sends: Vec::new(),
            shards,
            route_lut,
            go: vec![true; g2 * 5],
            kernel: KernelPool::serial(),
            cycle: 0,
            ring_flits: vec![0; g2],
            mesh_flits: 0,
            ring_credits: vec![(spr * buf_flits) as i64; g2],
            reset_cycle: 0,
            watchdog: Watchdog::new(horizon),
            tracer: Tracer::off(),
            faults: None,
            ledger: ConservationLedger::new(cfg!(debug_assertions)),
            corrupt: Vec::new(),
            dropped: Vec::new(),
            sunk: Vec::new(),
        })
    }

    /// Global mesh side length.
    pub fn mesh_side(&self) -> u32 {
        self.side
    }

    /// PMs per local ring.
    pub fn ring_size(&self) -> u32 {
        self.local
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &HybridConfig {
        &self.cfg
    }

    /// Stations per local ring (`L + 1`: the NICs plus the bridge).
    fn stations_per_ring(&self) -> usize {
        self.local as usize + 1
    }

    /// Global station id of ring `g`'s bridge.
    fn bridge_station(&self, g: usize) -> usize {
        g * self.stations_per_ring() + self.local as usize
    }

    /// `(shard index, local node index)` of a global mesh router id.
    fn shard_slot(&self, g: usize) -> (usize, usize) {
        let side = self.side as usize;
        (g / side, g % side)
    }

    /// Whether a live route exists from `src` to `dst`. Intra-ring
    /// traffic never touches a bridge's crossing queues; cross-ring
    /// traffic must cross both endpoint bridges, and a dead bridge —
    /// like a dead IRI in the hierarchical ring — accepts no *new*
    /// crossing traffic while already-queued worms keep draining
    /// (lazy fail-stop).
    fn path_alive(&self, src: NodeId, dst: NodeId) -> bool {
        let Some(f) = self.faults.as_ref() else {
            return true;
        };
        if !f.any_nodes_dead() {
            return true;
        }
        let gs = src.raw() / self.local;
        let gd = dst.raw() / self.local;
        gs == gd || (!f.node_dead(gs) && !f.node_dead(gd))
    }

    /// Serial tick of every active ring station: the NICs and the
    /// bridges' LOWER crossbar sides, in ascending station order, then
    /// dead-bridge sink retirement and the wire-transfer commit.
    fn ring_tick(
        &mut self,
        now: u64,
        delivered: &mut Vec<(NodeId, Packet)>,
        pulse: &mut StepPulse,
    ) {
        let spr = self.stations_per_ring();
        let l = self.local as usize;
        self.sends.clear();
        for st in 0..self.station_active.len() {
            if !self.station_active[st] {
                continue;
            }
            let g = st / spr;
            let s = st % spr;
            let dst_st = g * spr + (s + 1) % spr;
            let free_out = self.free[dst_st];
            let link_up = self
                .faults
                .as_ref()
                .is_none_or(|f| f.link_up(st as u32 * 2, now));
            if s < l {
                let nic = g * l + s;
                self.nics[nic].step(
                    now,
                    link_up,
                    free_out,
                    &mut self.ring_credits,
                    &self.corrupt,
                    &mut self.ledger,
                    &mut self.store,
                    &mut self.sends,
                    delivered,
                    &mut self.dropped,
                    pulse,
                );
                if self.nics[nic].quiescent() {
                    self.station_active[st] = false;
                }
            } else {
                let dead = self.faults.as_ref().is_some_and(|f| f.node_dead(g as u32));
                self.bridges[g].step_side(
                    LOWER,
                    now,
                    link_up,
                    dead,
                    free_out,
                    &mut self.ring_credits,
                    &self.store,
                    &mut self.sends,
                    &mut self.sunk,
                    pulse,
                );
                if self.bridges[g].quiescent() {
                    self.station_active[st] = false;
                }
            }
        }
        // Retire packets sunk at dead bridges: their flits were
        // consumed in place, so only the bookkeeping remains.
        if !self.sunk.is_empty() {
            for i in 0..self.sunk.len() {
                let r = self.sunk[i];
                let slot = r.slot();
                let pkt = self.store.remove(r);
                self.ledger.complete(slot, true);
                self.dropped.push((pkt, DropReason::DeadInterface));
            }
            self.sunk.clear();
        }
        // Commit the ring wire transfers decided this tick.
        for i in 0..self.sends.len() {
            let snd = self.sends[i];
            let (st, _side) = snd.to;
            let st = st as usize;
            let s = st % spr;
            if s < l {
                let g = st / spr;
                self.nics[g * l + s].ring_buf_mut().push(snd.flit, now);
            } else {
                self.bridges[st / spr].buf_mut(LOWER).push(snd.flit, now);
            }
            self.station_active[st] = true;
            self.ring_flits[snd.ring as usize] += 1;
        }
        pulse.moved += self.sends.len() as u64;
    }

    /// Serial bridge pumps: each bridge moves at most one flit per
    /// cycle from its ring→mesh crossing queues into its mesh
    /// router's injection queue (store-and-forward: the packet is
    /// handed to the router at its tail flit). A packet mid-pump
    /// continues unconditionally — the router-side queue slot was
    /// checked at its head and only this pump fills it; a new packet
    /// starts (responses first) only when the router can accept it.
    /// The pump keeps draining a dead bridge's already-queued traffic
    /// (lazy fail-stop, as at dead IRIs).
    fn pump_bridges(&mut self, now: u64) -> u64 {
        let mut pumped = 0u64;
        for g in 0..self.bridges.len() {
            let (sh, slot) = self.shard_slot(g);
            // Continuation: at most one class can be mid-packet (the
            // pump never switches classes mid-worm), and only the pump
            // pops these queues, so a non-head front identifies it.
            let mut cont = None;
            for class in [QueueClass::Response, QueueClass::Request] {
                if let Some(flit) = self.bridges[g].up_queue(class).front_ready(now) {
                    if !flit.is_head() {
                        cont = Some(class);
                        break;
                    }
                }
            }
            let class = cont.or_else(|| {
                [QueueClass::Response, QueueClass::Request]
                    .into_iter()
                    .find(|&class| {
                        self.bridges[g].up_queue(class).front_ready(now).is_some()
                            && self.shards[sh].can_accept(slot, class)
                    })
            });
            if let Some(class) = class {
                let flit = self.bridges[g]
                    .up_queue_mut(class)
                    .pop_ready(now)
                    .expect("front was ready");
                if flit.is_tail {
                    self.shards[sh].enqueue(slot, class, flit.packet);
                }
                pumped += 1;
            }
        }
        pumped
    }

    /// Tracing for one stepped cycle (only called while enabled).
    fn trace_cycle(&mut self, now: u64, pulse: &StepPulse, newly: &[(NodeId, Packet)]) {
        self.tracer.count(Counter::FlitsForwarded, pulse.moved);
        self.tracer.count(Counter::BlockedCycles, pulse.blocked);
        self.tracer.count(Counter::IriCrossings, pulse.crossed);
        if !newly.is_empty() {
            self.tracer
                .count(Counter::PacketsDelivered, newly.len() as u64);
            for (pm, pkt) in newly {
                self.tracer.event(
                    pkt.txn.raw(),
                    now,
                    TraceLoc::Pm {
                        pm: pm.index() as u32,
                    },
                    EventKind::Eject,
                );
            }
        }
        // Split-borrow dance: probe reads &self while writing the
        // tracer, so temporarily take the tracer out.
        let mut t = std::mem::take(&mut self.tracer);
        self.probe(&mut t);
        self.tracer = t;
    }
}

impl Probe for HybridNetwork {
    /// Publishes occupancy gauges: flits in mesh input buffers and
    /// live packets.
    fn probe(&self, t: &mut Tracer) {
        let inputs: usize = self.shards.iter().map(MeshShard::occupancy).sum();
        t.gauge(Gauge::MeshInputOccupancy, inputs as f64);
        t.gauge(Gauge::InFlightPackets, self.store.live() as f64);
    }
}

impl Interconnect for HybridNetwork {
    fn num_pms(&self) -> usize {
        self.nics.len()
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn can_inject(&self, pm: NodeId, class: QueueClass) -> bool {
        self.nics[pm.index()].can_accept(class)
    }

    fn set_kernel_threads(&mut self, threads: usize) {
        // The mesh tier parallelizes by shard (one mesh row each); the
        // ring tier stays serial regardless (shared credit counters,
        // as in `ringmesh-ring`).
        let threads = threads.clamp(1, self.shards.len().max(1));
        if threads != self.kernel.threads() {
            self.kernel = KernelPool::new(threads);
        }
    }

    fn kernel_threads(&self) -> usize {
        self.kernel.threads()
    }

    fn inject(&mut self, pm: NodeId, packet: Packet) {
        assert_eq!(packet.src, pm, "packet injected at the wrong PM");
        assert_ne!(packet.src, packet.dst, "local accesses bypass the network");
        assert!(
            packet.dst.index() < self.num_pms(),
            "destination {} out of range",
            packet.dst
        );
        let class = QueueClass::of(packet.kind);
        if !self.path_alive(pm, packet.dst) {
            // Fail fast at injection when a dead bridge cuts the only
            // route: the packet could never be delivered.
            if let Some(f) = &mut self.faults {
                f.record_drop(DropReason::Unreachable);
            }
            self.ledger.refuse();
            if self.tracer.is_enabled() {
                self.tracer.count(Counter::PacketsDropped, 1);
            }
            return;
        }
        if self.tracer.is_enabled() {
            self.tracer.count(Counter::PacketsInjected, 1);
            self.tracer.event(
                packet.txn.raw(),
                self.cycle,
                TraceLoc::Pm {
                    pm: pm.index() as u32,
                },
                EventKind::Inject {
                    src: packet.src.index() as u32,
                    dst: packet.dst.index() as u32,
                    flits: packet.flits,
                },
            );
        }
        let r = self.store.insert(packet);
        self.ledger.inject(r.slot());
        if let Some(f) = &mut self.faults {
            // Roll the corruption coin now; slots are reused, so the
            // mark must be (re)written on every insert.
            let bad = f.roll_corrupt();
            if self.corrupt.len() <= r.slot() {
                self.corrupt.resize(r.slot() + 1, false);
            }
            self.corrupt[r.slot()] = bad;
        }
        self.nics[pm.index()].enqueue(class, r);
        let spr = self.stations_per_ring();
        let st = (pm.index() / self.local as usize) * spr + pm.index() % self.local as usize;
        self.station_active[st] = true;
    }

    fn step(&mut self, delivered: &mut Vec<(NodeId, Packet)>) -> Result<(), StallError> {
        let now = self.cycle;
        let enabled = self.tracer.is_enabled();
        let mark = delivered.len();
        if enabled {
            self.tracer.cycle(now);
        }
        if let Some(f) = &mut self.faults {
            f.advance(now);
        }
        let mut pulse = StepPulse::default();
        // Phase A — the ring tier, serial in station order (NIC steps
        // eject/forward/inject; bridge LOWER crossbars classify and
        // queue crossing worms), then ring send commit.
        self.ring_tick(now, delivered, &mut pulse);
        // Phase B — bridge pumps, ring→mesh.
        pulse.moved += self.pump_bridges(now);
        // Phase C — mesh compute, parallel across row shards. Shards
        // read only registered previous-cycle shared state; flits the
        // pumps just queued were pushed at `now`, which FIFO freshness
        // keeps invisible until the next cycle, so the phase split is
        // invisible to the mesh and the result is byte-identical at
        // any thread count.
        {
            let fc = FaultCtx {
                inj: None,
                corrupt: &[],
                now,
            };
            let topo = &self.topo;
            let go = &self.go;
            let route_lut = &self.route_lut;
            let store = &self.store;
            self.kernel.run_mut(&mut self.shards, |_, shard| {
                shard.compute(now, topo, go, route_lut, store, &fc);
            });
        }
        // Phase D — mesh commit, serial in shard order: ejections
        // land in the owning bridge's elastic mesh→ring queue (or are
        // dropped at a dead bridge), then the link transfers.
        let mut nsends = 0u64;
        for si in 0..self.shards.len() {
            let ops = std::mem::take(&mut self.shards[si].ops);
            for &op in &ops {
                match op {
                    CommitOp::Deliver { node, packet } => {
                        let g = node.index();
                        let dead = self.faults.as_ref().is_some_and(|f| f.node_dead(g as u32));
                        if dead {
                            let slot = packet.slot();
                            let pkt = self.store.remove(packet);
                            self.ledger.complete(slot, true);
                            self.dropped.push((pkt, DropReason::DeadInterface));
                        } else {
                            let (kind, flits) = {
                                let p = self.store.get(packet);
                                (p.kind, p.flits)
                            };
                            let class = QueueClass::of(kind);
                            // The whole worm descends at once; pushes
                            // at `now` stay invisible until the next
                            // cycle, and `has_complete_packet` then
                            // lets the bridge start a loss-free ring
                            // entry under the credit rule.
                            for seq in 0..flits {
                                self.bridges[g].down_queue_mut(class).push(
                                    Flit {
                                        packet,
                                        seq,
                                        is_tail: seq + 1 == flits,
                                    },
                                    now,
                                );
                            }
                            let st = self.bridge_station(g);
                            self.station_active[st] = true;
                        }
                    }
                    CommitOp::Drop { packet, reason } => {
                        let slot = packet.slot();
                        let pkt = self.store.remove(packet);
                        self.ledger.complete(slot, true);
                        self.dropped.push((pkt, reason));
                    }
                }
            }
            self.shards[si].ops = ops;
            pulse.moved += self.shards[si].moved;
            pulse.blocked += self.shards[si].blocked;
            let sends = std::mem::take(&mut self.shards[si].sends);
            for &s in &sends {
                self.shards[s.to_sh as usize].deliver_flit(
                    s.to_l as usize,
                    s.to_port as usize,
                    s.flit,
                    now,
                );
            }
            nsends += sends.len() as u64;
            self.shards[si].sends = sends;
        }
        pulse.moved += nsends;
        self.mesh_flits += nsends;
        if !self.dropped.is_empty() {
            if enabled {
                self.tracer
                    .count(Counter::PacketsDropped, self.dropped.len() as u64);
            }
            if let Some(f) = &mut self.faults {
                for &(_, reason) in &self.dropped {
                    f.record_drop(reason);
                }
            }
            self.dropped.clear();
        }
        if enabled {
            self.trace_cycle(now, &pulse, &delivered[mark..]);
        }
        // Phase E — latch: mesh input buffers (parallel) and the
        // shared stop/go gather, then the ring buffers (serial).
        self.kernel
            .run_mut(&mut self.shards, |_, shard| shard.latch());
        for shard in &self.shards {
            let b = shard.lo() * 5;
            let out = shard.go_out();
            self.go[b..b + out.len()].copy_from_slice(out);
        }
        let spr = self.stations_per_ring();
        let l = self.local as usize;
        for st in 0..self.free.len() {
            let g = st / spr;
            let s = st % spr;
            self.free[st] = if s < l {
                self.nics[g * l + s].latch()
            } else {
                self.bridges[g].latch().0
            };
        }
        #[cfg(debug_assertions)]
        {
            let (inj, del, drp) = self.ledger.counts();
            assert_eq!(inj, del + drp + self.store.live(), "conservation identity");
        }
        self.cycle += 1;
        self.watchdog
            .observe(self.cycle, pulse.moved, self.store.live());
        self.watchdog.check(self.cycle)
    }

    fn in_flight(&self) -> u64 {
        self.store.live()
    }

    fn utilization(&self) -> UtilizationReport {
        let cycles = self.cycle - self.reset_cycle;
        if cycles == 0 {
            return UtilizationReport::default();
        }
        let ring_busy: u64 = self.ring_flits.iter().sum();
        let ring_cap = self.station_active.len() as u64 * cycles;
        let mesh_cap = self.topo.num_links() as u64 * cycles;
        let overall = (ring_busy + self.mesh_flits) as f64 / (ring_cap + mesh_cap).max(1) as f64;
        UtilizationReport {
            overall,
            levels: vec![
                LevelUtil {
                    label: "local rings".to_string(),
                    utilization: ring_busy as f64 / ring_cap.max(1) as f64,
                },
                LevelUtil {
                    label: "global mesh".to_string(),
                    utilization: self.mesh_flits as f64 / mesh_cap.max(1) as f64,
                },
            ],
        }
    }

    fn reset_counters(&mut self) {
        self.ring_flits.iter_mut().for_each(|c| *c = 0);
        self.mesh_flits = 0;
        self.reset_cycle = self.cycle;
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        if self.tracer.is_enabled() {
            Some(&mut self.tracer)
        } else {
            None
        }
    }

    fn take_tracer(&mut self) -> Option<Tracer> {
        if self.tracer.is_enabled() {
            Some(std::mem::take(&mut self.tracer))
        } else {
            None
        }
    }

    fn fault_domain(&self) -> FaultDomain {
        FaultDomain {
            // Directed ring link out of `station*2 + side`; every
            // station uses side 0 only, so side-1 events are
            // addressable no-ops (as at NICs in the hierarchical
            // ring).
            links: self.station_active.len() as u32 * 2,
            // The bridges fail-stop; mesh routers and NICs do not.
            nodes: self.bridges.len() as u32,
        }
    }

    fn set_faults(&mut self, injector: FaultInjector, check: bool) {
        self.faults = Some(injector);
        if check && !self.ledger.tracking() {
            self.ledger.set_tracking(true);
        }
    }

    fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    fn take_faults(&mut self) -> Option<FaultInjector> {
        self.faults.take()
    }

    fn verify_conservation(&self) -> Result<(), ConservationError> {
        self.ledger.verify(self.store.live())
    }

    fn conservation_counts(&self) -> Option<(u64, u64, u64)> {
        Some(self.ledger.counts())
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        if self.faults.is_some() {
            return Err(SnapError::Mismatch(
                "checkpointing with fault injection installed is not supported".into(),
            ));
        }
        self.store.save(w);
        w.usize(self.nics.len());
        for nic in &self.nics {
            nic.save_state(w);
        }
        w.usize(self.bridges.len());
        for bridge in &self.bridges {
            bridge.save_state(w);
        }
        let g2 = self.bridges.len();
        w.usize(g2);
        for g in 0..g2 {
            let (sh, slot) = self.shard_slot(g);
            self.shards[sh].save_node_state(slot, w);
        }
        w.usize(g2);
        for shard in &self.shards {
            for &a in shard.active() {
                w.bool(a);
            }
        }
        self.go.save(w);
        self.station_active.save(w);
        self.free.save(w);
        w.u64(self.cycle);
        self.ring_flits.save(w);
        self.ring_credits.save(w);
        w.u64(self.mesh_flits);
        w.u64(self.reset_cycle);
        self.watchdog.save_state(w);
        self.ledger.save_state(w);
        self.corrupt.save(w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if self.faults.is_some() {
            return Err(SnapError::Mismatch(
                "restoring into a network with fault injection installed is not supported".into(),
            ));
        }
        let mismatch = |what: &str, got: usize, want: usize| {
            SnapError::Mismatch(format!("{what}: snapshot has {got}, network has {want}"))
        };
        self.store = PacketStore::load(r)?;
        let n_nics = r.usize()?;
        if n_nics != self.nics.len() {
            return Err(mismatch("NIC count", n_nics, self.nics.len()));
        }
        for nic in &mut self.nics {
            nic.restore_state(r)?;
        }
        let n_bridges = r.usize()?;
        if n_bridges != self.bridges.len() {
            return Err(mismatch("bridge count", n_bridges, self.bridges.len()));
        }
        for bridge in &mut self.bridges {
            bridge.restore_state(r)?;
        }
        let g2 = self.bridges.len();
        let n_routers = r.usize()?;
        if n_routers != g2 {
            return Err(mismatch("router count", n_routers, g2));
        }
        for g in 0..g2 {
            let (sh, slot) = self.shard_slot(g);
            self.shards[sh].restore_node_state(slot, r)?;
        }
        let n_active = r.usize()?;
        if n_active != g2 {
            return Err(mismatch("router count", n_active, g2));
        }
        for shard in &mut self.shards {
            for a in shard.active_mut() {
                *a = r.bool()?;
            }
        }
        let go: Vec<bool> = Snapshot::load(r)?;
        if go.len() != self.go.len() {
            return Err(mismatch("stop/go table size", go.len(), self.go.len()));
        }
        self.go = go;
        let station_active: Vec<bool> = Snapshot::load(r)?;
        if station_active.len() != self.station_active.len() {
            return Err(mismatch(
                "station count",
                station_active.len(),
                self.station_active.len(),
            ));
        }
        self.station_active = station_active;
        let free: Vec<usize> = Snapshot::load(r)?;
        if free.len() != self.free.len() {
            return Err(mismatch("free table size", free.len(), self.free.len()));
        }
        self.free = free;
        self.cycle = r.u64()?;
        self.ring_flits = Snapshot::load(r)?;
        self.ring_credits = Snapshot::load(r)?;
        self.mesh_flits = r.u64()?;
        self.reset_cycle = r.u64()?;
        self.watchdog.restore_state(r)?;
        self.ledger.restore_state(r)?;
        self.corrupt = Snapshot::load(r)?;
        self.sends.clear();
        self.dropped.clear();
        self.sunk.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringmesh_faults::{FaultEvent, FaultKind, FaultSchedule};
    use ringmesh_net::{CacheLineSize, PacketKind, TxnId};

    fn cfg() -> HybridConfig {
        HybridConfig::new(CacheLineSize::B32)
    }

    fn packet(cfg: &HybridConfig, txn: u64, kind: PacketKind, src: u32, dst: u32) -> Packet {
        Packet {
            txn: TxnId::new(txn),
            kind,
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            flits: cfg.format.flits(kind, cfg.cache_line),
            injected_at: 0,
        }
    }

    fn run_until_delivered(net: &mut HybridNetwork, want: usize) -> Vec<(NodeId, Packet)> {
        let mut delivered = Vec::new();
        for _ in 0..50_000 {
            net.step(&mut delivered).unwrap();
            if delivered.len() >= want {
                return delivered;
            }
        }
        panic!("no delivery after 50k cycles");
    }

    #[test]
    fn intra_ring_delivery_never_touches_the_mesh() {
        let c = cfg();
        let mut net = HybridNetwork::new(2, 4, c.clone()).unwrap();
        net.inject(NodeId::new(0), packet(&c, 1, PacketKind::ReadReq, 0, 3));
        let delivered = run_until_delivered(&mut net, 1);
        assert_eq!(delivered[0].0, NodeId::new(3));
        assert_eq!(net.mesh_flits, 0, "intra-ring traffic crossed the mesh");
    }

    #[test]
    fn cross_ring_delivery_uses_the_mesh() {
        let c = cfg();
        let mut net = HybridNetwork::new(3, 2, c.clone()).unwrap();
        // PM 1 (ring 0) to PM 17 (ring 8): corner-to-corner.
        net.inject(NodeId::new(1), packet(&c, 1, PacketKind::WriteReq, 1, 17));
        let delivered = run_until_delivered(&mut net, 1);
        assert_eq!(delivered[0].0, NodeId::new(17));
        assert!(net.mesh_flits > 0, "cross-ring traffic avoided the mesh");
        assert!(net.verify_conservation().is_ok());
    }

    #[test]
    fn responses_flow_back_across_rings() {
        let c = cfg();
        let mut net = HybridNetwork::new(2, 3, c.clone()).unwrap();
        net.inject(NodeId::new(2), packet(&c, 1, PacketKind::ReadReq, 2, 10));
        let delivered = run_until_delivered(&mut net, 1);
        assert_eq!(delivered[0].0, NodeId::new(10));
        // And the response makes it home.
        net.inject(NodeId::new(10), packet(&c, 1, PacketKind::ReadResp, 10, 2));
        let delivered = run_until_delivered(&mut net, 1);
        assert_eq!(delivered[0].0, NodeId::new(2));
    }

    #[test]
    fn every_pair_is_reachable() {
        let c = cfg();
        let mut net = HybridNetwork::new(2, 2, c.clone()).unwrap();
        let mut txn = 0u64;
        for src in 0..8u32 {
            for dst in 0..8u32 {
                if src == dst {
                    continue;
                }
                txn += 1;
                while !net.can_inject(NodeId::new(src), QueueClass::Request) {
                    net.step(&mut Vec::new()).unwrap();
                }
                net.inject(
                    NodeId::new(src),
                    packet(&c, txn, PacketKind::ReadReq, src, dst),
                );
                let mut delivered = Vec::new();
                for _ in 0..50_000 {
                    net.step(&mut delivered).unwrap();
                    if !delivered.is_empty() {
                        break;
                    }
                }
                assert_eq!(delivered.len(), 1, "{src}->{dst}");
                assert_eq!(delivered[0].0, NodeId::new(dst), "{src}->{dst}");
            }
        }
        assert!(net.verify_conservation().is_ok());
    }

    /// The same injection schedule must produce byte-identical
    /// delivery streams at 1 and 4 kernel threads.
    #[test]
    fn kernel_threads_do_not_change_results() {
        let c = cfg();
        let run = |threads: usize| {
            let mut net = HybridNetwork::new(2, 2, c.clone()).unwrap();
            net.set_kernel_threads(threads);
            let mut log = Vec::new();
            let mut delivered = Vec::new();
            for cycle in 0..4_000u64 {
                if cycle % 7 == 0 {
                    let src = (cycle / 7 % 8) as u32;
                    let dst = (src + 3) % 8;
                    if net.can_inject(NodeId::new(src), QueueClass::Request) {
                        net.inject(
                            NodeId::new(src),
                            packet(&c, cycle, PacketKind::ReadReq, src, dst),
                        );
                    }
                }
                net.step(&mut delivered).unwrap();
                for (pm, pkt) in delivered.drain(..) {
                    log.push((cycle, pm.raw(), pkt.txn.raw()));
                }
            }
            log
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn snapshot_round_trips_mid_flight() {
        let c = cfg();
        let mut net = HybridNetwork::new(2, 2, c.clone()).unwrap();
        let mut delivered = Vec::new();
        for t in 0..6u64 {
            let src = (t % 8) as u32;
            let dst = (src + 5) % 8;
            if net.can_inject(NodeId::new(src), QueueClass::Request) {
                net.inject(
                    NodeId::new(src),
                    packet(&c, t, PacketKind::ReadReq, src, dst),
                );
            }
            net.step(&mut delivered).unwrap();
        }
        let mut w = SnapWriter::new();
        net.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut copy = HybridNetwork::new(2, 2, c.clone()).unwrap();
        let mut r = SnapReader::new(&bytes);
        copy.restore_state(&mut r).unwrap();
        // Both must now evolve identically.
        let mut d1 = Vec::new();
        let mut d2 = Vec::new();
        for _ in 0..2_000 {
            net.step(&mut d1).unwrap();
            copy.step(&mut d2).unwrap();
        }
        let key = |v: &Vec<(NodeId, Packet)>| {
            v.iter()
                .map(|(pm, p)| (pm.raw(), p.txn.raw()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&d1), key(&d2));
        let mut w1 = SnapWriter::new();
        let mut w2 = SnapWriter::new();
        net.save_state(&mut w1).unwrap();
        copy.save_state(&mut w2).unwrap();
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn dead_bridge_refuses_new_cross_ring_traffic() {
        let c = cfg();
        let mut net = HybridNetwork::new(2, 2, c.clone()).unwrap();
        let schedule = FaultSchedule::from_events(
            7,
            0.0,
            vec![FaultEvent {
                at: 0,
                kind: FaultKind::NodeDead { node: 0 },
            }],
        );
        let injector = FaultInjector::new(&schedule, net.fault_domain());
        net.set_faults(injector, true);
        net.step(&mut Vec::new()).unwrap();
        // Cross-ring from the dead bridge's ring: refused at injection.
        net.inject(NodeId::new(0), packet(&c, 1, PacketKind::ReadReq, 0, 7));
        assert_eq!(net.in_flight(), 0);
        // A refusal books as injected-and-dropped atomically.
        assert_eq!(net.conservation_counts().unwrap(), (1, 0, 1));
        // Intra-ring traffic on the same ring still flows.
        net.inject(NodeId::new(0), packet(&c, 2, PacketKind::ReadReq, 0, 1));
        let delivered = run_until_delivered(&mut net, 1);
        assert_eq!(delivered[0].0, NodeId::new(1));
        // Cross-ring between two live rings still flows.
        net.inject(NodeId::new(2), packet(&c, 3, PacketKind::ReadReq, 2, 5));
        let delivered = run_until_delivered(&mut net, 1);
        assert_eq!(delivered[0].0, NodeId::new(5));
        assert!(net.verify_conservation().is_ok());
    }

    #[test]
    fn utilization_reports_both_tiers() {
        let c = cfg();
        let mut net = HybridNetwork::new(2, 2, c.clone()).unwrap();
        net.inject(NodeId::new(0), packet(&c, 1, PacketKind::ReadReq, 0, 6));
        run_until_delivered(&mut net, 1);
        let report = net.utilization();
        assert_eq!(report.levels.len(), 2);
        assert!(report.levels[0].utilization > 0.0, "ring tier idle");
        assert!(report.levels[1].utilization > 0.0, "mesh tier idle");
    }
}
