//! Hybrid Ring-Mesh network model for the `ringmesh` simulator.
//!
//! The source paper (Ravindran & Stumm, HPCA 1997) compares
//! hierarchical rings against meshes; its follow-up line of work
//! (arXiv:1904.03428) studies the *hybrid*: local rings for the
//! cheap, low-latency neighbourhood traffic, joined by a global 2-D
//! mesh that sidesteps the hierarchy's root-ring bottleneck. This
//! crate assembles that network out of the two existing kernels —
//! local rings reuse the NIC/IRI station machines of
//! `ringmesh-ring`, the global mesh reuses the sharded three-phase
//! e-cube kernel of `ringmesh-mesh` — glued by one *bridge* station
//! per mesh router.
//!
//! * [`HybridConfig`] — buffer/queue sizing (one uniform link width
//!   on both tiers).
//! * [`HybridNetwork`] — the cycle-accurate simulator; implements
//!   [`ringmesh_net::Interconnect`].
//! * [`HybridBuilder`] — the [`ringmesh_net::TopologyBuilder`] for
//!   `hybrid:GxG:L` specs.
//!
//! # Example
//!
//! ```
//! use ringmesh_net::{CacheLineSize, Interconnect, TopologyBuilder};
//! use ringmesh_hybrid::HybridBuilder;
//!
//! let b = HybridBuilder { side: 4, local: 4 };
//! assert_eq!(b.num_pms(), 64);
//! let net = b.build(CacheLineSize::B128).unwrap();
//! assert_eq!(net.num_pms(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod config;
mod network;

pub use builder::HybridBuilder;
pub use config::HybridConfig;
pub use network::HybridNetwork;
