//! Buffer and queue sizing for the hybrid Ring-Mesh network.

use ringmesh_net::{CacheLineSize, PacketFormat};

/// Sizing knobs for [`HybridNetwork`](crate::HybridNetwork).
///
/// The hybrid keeps one uniform link width on both tiers (the
/// ring-style 128-bit channel), so a packet has the same flit count on
/// a local ring and on the global mesh, and the bridge never
/// re-segments worms. Ring-side sizing mirrors
/// `ringmesh_ring::RingConfig`; the mesh routers get one-worm input
/// buffers, which is the cache-line regime of the plain mesh under the
/// wider channel.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Coherence cache-line size (sets data-carrying packet length).
    pub cache_line: CacheLineSize,
    /// Channel format, identical on both tiers
    /// ([`PacketFormat::RING`]).
    pub format: PacketFormat,
    /// Station transit (bypass) buffer size on the local rings, in
    /// cache-line packets.
    pub ring_buffer_packets: usize,
    /// PM-side and mesh-side output queue capacity, in packets.
    pub out_queue_packets: usize,
    /// Bridge ring→mesh crossing queue size per class, in cache-line
    /// packets.
    pub bridge_queue_packets: usize,
    /// Mesh router input buffer size per port, in cache-line packets.
    pub mesh_buffer_packets: usize,
    /// Backlog (in cache-line packets) beyond which a bridge's
    /// mesh→ring drain takes priority over continuing ring traffic.
    pub convoy_threshold_packets: usize,
    /// Cycles without flit movement (while packets are in flight)
    /// before the stall watchdog trips.
    pub watchdog_horizon: u64,
}

impl HybridConfig {
    /// Defaults for `cache_line`: ring-style sizing on the local
    /// rings, one-worm mesh input buffers, a two-packet bridge
    /// crossing queue per class.
    pub fn new(cache_line: CacheLineSize) -> Self {
        HybridConfig {
            cache_line,
            format: PacketFormat::RING,
            ring_buffer_packets: 2,
            out_queue_packets: 1,
            bridge_queue_packets: 2,
            mesh_buffer_packets: 1,
            convoy_threshold_packets: 4,
            watchdog_horizon: 10_000,
        }
    }

    /// Flits in one cache-line packet under this format.
    pub fn cl_packet_flits(&self) -> usize {
        self.format.cl_packet_flits(self.cache_line) as usize
    }

    /// Ring station transit buffer capacity in flits.
    pub fn ring_buffer_flits(&self) -> usize {
        self.ring_buffer_packets * self.cl_packet_flits()
    }

    /// Bridge ring→mesh crossing queue capacity per class in flits.
    pub fn bridge_queue_flits(&self) -> usize {
        self.bridge_queue_packets * self.cl_packet_flits()
    }

    /// Mesh router input buffer capacity per port in flits.
    pub fn mesh_buffer_flits(&self) -> usize {
        self.mesh_buffer_packets * self.cl_packet_flits()
    }

    /// Bridge mesh→ring descent queue capacity: elastic (effectively
    /// unbounded), exactly like the IRI down queues of the
    /// hierarchical ring — a worm leaving the mesh never stalls inside
    /// a mesh router waiting on ring entry, which (with the ring
    /// credit rule) keeps the two tiers jointly deadlock-free.
    pub fn bridge_down_queue_flits(&self) -> usize {
        usize::MAX / 2
    }

    /// Convoy-control threshold in flits.
    pub fn convoy_threshold_flits(&self) -> usize {
        self.convoy_threshold_packets
            .saturating_mul(self.cl_packet_flits())
    }
}
