//! [`TopologyBuilder`] implementation for the hybrid Ring-Mesh.

use ringmesh_net::{
    CacheLineSize, ConfigError, Interconnect, PacketFormat, Placement, TopologyBuilder,
};

use crate::{HybridConfig, HybridNetwork};

/// Builds the hybrid Ring-Mesh network ([`HybridNetwork`]): a
/// `side × side` global mesh of `local`-PM rings. Spec syntax:
/// `hybrid:4x4:4`.
#[derive(Debug, Clone)]
pub struct HybridBuilder {
    /// Global mesh side length.
    pub side: u32,
    /// PMs per local ring.
    pub local: u32,
}

impl TopologyBuilder for HybridBuilder {
    fn num_pms(&self) -> u32 {
        self.side * self.side * self.local
    }

    fn label(&self) -> String {
        format!("hybrid {0}x{0} mesh of {1}-PM rings", self.side, self.local)
    }

    fn spec(&self) -> String {
        format!("hybrid:{0}x{0}:{1}", self.side, self.local)
    }

    fn placement(&self) -> Placement {
        Placement::RingGrid {
            side: self.side,
            local: self.local,
        }
    }

    fn format(&self) -> PacketFormat {
        // One uniform link width on both tiers: the bridge hands worms
        // between ring and mesh without re-segmenting them.
        PacketFormat::RING
    }

    fn parallel_kernel(&self) -> bool {
        true
    }

    fn build(&self, cache_line: CacheLineSize) -> Result<Box<dyn Interconnect>, ConfigError> {
        let net = HybridNetwork::new(self.side, self.local, HybridConfig::new(cache_line))?;
        Ok(Box::new(net))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_builder_identity() {
        let b = HybridBuilder { side: 4, local: 4 };
        assert_eq!(b.num_pms(), 64);
        assert_eq!(b.label(), "hybrid 4x4 mesh of 4-PM rings");
        assert_eq!(b.spec(), "hybrid:4x4:4");
        assert_eq!(b.placement(), Placement::RingGrid { side: 4, local: 4 });
        assert_eq!(b.format(), PacketFormat::RING);
        assert!(b.parallel_kernel());
        assert_eq!(b.build(CacheLineSize::B64).unwrap().num_pms(), 64);
    }

    #[test]
    fn zero_dimensions_draw_typed_errors() {
        assert!(HybridBuilder { side: 0, local: 4 }
            .build(CacheLineSize::B32)
            .is_err());
        assert!(HybridBuilder { side: 4, local: 0 }
            .build(CacheLineSize::B32)
            .is_err());
    }
}
