//! Calibration against the paper's quantitative anchors (§4):
//! mesh latency growth factors from 4 to 121 processors per buffer
//! regime, and the 121-processor buffer-size ratios for 128-byte lines.
//!
//! ```text
//! cargo run --release -p ringmesh --example calibration
//! ```

use ringmesh::{run_config, NetworkSpec, SimParams, SystemConfig};
use ringmesh_net::{BufferRegime, CacheLineSize};

fn main() {
    println!(
        "paper §4: 4->121 processor latency growth: cl-sized 5-7x, 4-flit 6-8x, 1-flit 9-12x\n"
    );
    let mut at121 = Vec::new();
    for regime in [
        BufferRegime::CacheLine,
        BufferRegime::FourFlit,
        BufferRegime::OneFlit,
    ] {
        for cl in [CacheLineSize::B16, CacheLineSize::B64, CacheLineSize::B128] {
            let lat = |side: u32| {
                run_config(
                    SystemConfig::new(
                        NetworkSpec::Mesh {
                            side,
                            buffers: regime,
                        },
                        cl,
                    )
                    .with_sim(SimParams::full()),
                )
                .expect("mesh runs deadlock-free")
                .mean_latency()
            };
            let (small, big) = (lat(2), lat(11));
            println!(
                "{regime:>9} buffers, {cl:>4}: 4p={small:5.0}  121p={big:5.0}  factor={:.1}",
                big / small
            );
            if cl == CacheLineSize::B128 {
                at121.push(big);
            }
        }
    }
    println!(
        "\n121p, 128B ratios vs cl-sized buffers: 4-flit {:.2}x (paper ~1.3x), 1-flit {:.1}x (paper ~3x)",
        at121[1] / at121[0],
        at121[2] / at121[0]
    );
}
