use ringmesh::*;
use ringmesh_net::CacheLineSize;
use ringmesh_ring::RingConfig;
use ringmesh_workload::WorkloadParams;

fn main() {
    let mut stalls = 0;
    for (spec, cl) in [
        ("3:3:12", CacheLineSize::B16),
        ("3:3:8", CacheLineSize::B32),
        ("3:3:6", CacheLineSize::B64),
        ("3:3:4", CacheLineSize::B128),
        ("2:3:3:6", CacheLineSize::B32),
        ("4:3:8", CacheLineSize::B32),
        ("2:3:4", CacheLineSize::B128),
        ("3:12", CacheLineSize::B16),
    ] {
        for t in [2u32, 4, 8] {
            for seed in [1u64, 0x1997_0201] {
                let mut rc = RingConfig::new(cl);
                rc.iri_queue_packets = Some(2);
                rc.watchdog_horizon = 20_000;
                let cfg = SystemConfig::new(NetworkSpec::ring(spec.parse().unwrap()), cl)
                    .with_workload(WorkloadParams::paper_baseline().with_outstanding(t))
                    .with_sim(SimParams::full())
                    .with_seed(seed);
                match System::with_ring_config(cfg, rc).unwrap().run() {
                    Ok(r) => print!("{:.0}/{:.2} ", r.mean_latency(), r.throughput),
                    Err(e) => {
                        print!("STALL({e}) ");
                        stalls += 1;
                    }
                }
            }
        }
        println!(" <- {spec} {cl}");
    }
    println!("total stalls: {stalls}");
}
