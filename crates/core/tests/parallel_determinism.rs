//! The parallel sweep executor's core guarantee: running the same
//! points on any number of worker threads yields byte-identical
//! results. Every sweep point owns its seeded RNG and the pool
//! collects results in input order, so thread count can only change
//! wall-clock time, never output. These tests pin that down across
//! both network families and both override mechanisms.

use ringmesh::{
    run_points_with, run_series_with, set_sweep_threads, NetworkSpec, SimParams, System,
    SystemConfig, WorkerPool,
};
use ringmesh_net::CacheLineSize;
use ringmesh_ring::RingSpec;

fn sim() -> SimParams {
    SimParams {
        warmup: 300,
        batch_cycles: 300,
        batches: 3,
    }
}

fn ring_points() -> Vec<(f64, SystemConfig)> {
    (2u32..=6)
        .map(|k| {
            let cfg = SystemConfig::new(NetworkSpec::ring(RingSpec::single(k)), CacheLineSize::B32)
                .with_sim(sim());
            (f64::from(k), cfg)
        })
        .collect()
}

fn mesh_points() -> Vec<(f64, SystemConfig)> {
    (2u32..=4)
        .map(|side| {
            let cfg =
                SystemConfig::new(NetworkSpec::mesh(side), CacheLineSize::B32).with_sim(sim());
            (f64::from(side * side), cfg)
        })
        .collect()
}

/// `(x, y)` series points as raw IEEE-754 bits: equality here is the
/// byte-identity the executor promises, not an epsilon comparison.
fn series_bits(s: &ringmesh_stats::Series) -> Vec<(u64, u64)> {
    s.points
        .iter()
        .map(|&(x, y)| (x.to_bits(), y.to_bits()))
        .collect()
}

#[test]
fn ring_series_identical_across_thread_counts() {
    let runs: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&n| {
            run_series_with(&WorkerPool::new(n), "det-ring", ring_points(), |r| {
                r.mean_latency()
            })
        })
        .collect();
    assert!(!runs[0].points.is_empty(), "sweep produced no points");
    for run in &runs[1..] {
        assert_eq!(series_bits(&runs[0]), series_bits(run));
    }
}

#[test]
fn mesh_results_identical_serial_vs_pooled() {
    let serial = run_points_with(&WorkerPool::new(1), "det-mesh", mesh_points());
    let pooled = run_points_with(&WorkerPool::new(4), "det-mesh", mesh_points());
    assert_eq!(serial.len(), pooled.len());
    assert!(!serial.is_empty(), "sweep produced no points");
    for ((xa, ra), (xb, rb)) in serial.iter().zip(&pooled) {
        assert_eq!(xa.to_bits(), xb.to_bits());
        assert_eq!(ra.mean_latency().to_bits(), rb.mean_latency().to_bits());
        assert_eq!(ra.throughput.to_bits(), rb.throughput.to_bits());
        assert_eq!(
            ra.utilization.overall.to_bits(),
            rb.utilization.overall.to_bits()
        );
    }
}

/// The process-wide `set_sweep_threads` override (what `ringmesh
/// bench` uses to time serial vs parallel legs in one process) must be
/// output-neutral too. Exercised in a single test because the override
/// is global state shared across the test binary's threads.
#[test]
fn thread_override_is_output_neutral() {
    set_sweep_threads(1);
    let serial = ringmesh::run_series("det-env", ring_points(), |r| r.throughput);
    set_sweep_threads(4);
    let pooled = ringmesh::run_series("det-env", ring_points(), |r| r.throughput);
    set_sweep_threads(0);
    assert_eq!(series_bits(&serial), series_bits(&pooled));
}

// ---------------------------------------------------------------------
// Intra-cycle kernel determinism: the sharded mesh kernel must be
// bit-exact at every thread count, not just across sweep workers. The
// tests below use the per-instance `System::set_kernel_threads` (never
// the process-wide override, which would race with other tests in this
// binary).

/// Runs `cfg` at the given kernel thread count and returns the result
/// fingerprint (a digest over the raw bits of every output field).
fn kernel_fingerprint(cfg: &SystemConfig, threads: usize) -> u64 {
    let mut sys = System::new(cfg.clone()).expect("valid config");
    sys.set_kernel_threads(threads);
    sys.run().expect("run completes").fingerprint()
}

#[test]
fn mesh_kernel_bit_exact_across_thread_counts() {
    let cfg = SystemConfig::new(NetworkSpec::mesh(7), CacheLineSize::B32).with_sim(sim());
    let base = kernel_fingerprint(&cfg, 1);
    for threads in [2usize, 3, 8] {
        assert_eq!(
            kernel_fingerprint(&cfg, threads),
            base,
            "mesh kernel diverged at {threads} threads"
        );
    }
}

#[test]
fn ring_kernels_unaffected_by_thread_requests() {
    for network in [
        NetworkSpec::ring("2:3".parse().unwrap()),
        NetworkSpec::SlottedRing {
            spec: "2:3".parse().unwrap(),
        },
    ] {
        let cfg = SystemConfig::new(network, CacheLineSize::B32).with_sim(sim());
        let base = kernel_fingerprint(&cfg, 1);
        for threads in [2usize, 8] {
            assert_eq!(kernel_fingerprint(&cfg, threads), base);
        }
        let mut sys = System::new(cfg).unwrap();
        sys.set_kernel_threads(8);
        assert_eq!(sys.kernel_threads(), 1, "ring kernels are serial");
    }
}

/// The hybrid network runs the sharded mesh kernel between its serial
/// ring phases: the same bit-exactness guarantee applies through the
/// registry-built `hybrid:GxG:L` path.
#[test]
fn hybrid_kernel_bit_exact_across_thread_counts() {
    let network: NetworkSpec = "hybrid:3x3:3".parse().expect("registry spec");
    let cfg = SystemConfig::new(network, CacheLineSize::B32).with_sim(sim());
    let base = kernel_fingerprint(&cfg, 1);
    for threads in [2usize, 3, 8] {
        assert_eq!(
            kernel_fingerprint(&cfg, threads),
            base,
            "hybrid kernel diverged at {threads} threads"
        );
    }
}

/// A parallel mesh kernel must stay bit-exact under fault injection
/// too: drops and corruption verdicts are decided from shared
/// read-only per-cycle state, so thread count cannot reorder them.
#[test]
fn faulty_mesh_kernel_bit_exact_across_thread_counts() {
    let cfg = SystemConfig::new(NetworkSpec::mesh(5), CacheLineSize::B32).with_sim(sim());
    let plan = ringmesh::FaultPlan::new(ringmesh::FaultConfig {
        seed: 11,
        corrupt_prob: 0.02,
        link_down_events: 3,
        link_down_cycles: 150,
        dead_nodes: 1,
        horizon: cfg.sim.horizon(),
    })
    .with_check();
    let run = |threads: usize| {
        let mut sys = System::new(cfg.clone()).expect("valid config");
        sys.set_kernel_threads(threads);
        sys.run_faulty(&plan).expect("faulty run completes")
    };
    let base = run(1);
    assert!(base.violation.is_none());
    for threads in [2usize, 3, 8] {
        let r = run(threads);
        assert_eq!(base.result, r.result, "diverged at {threads} threads");
        assert_eq!(base.faults, r.faults);
        assert_eq!(base.conservation, r.conservation);
    }
}

/// Checkpoint/resume across the sharded kernel: a checkpoint taken at
/// one thread count must restore and continue bit-identically at
/// another (the thread count is a pure performance knob, never part of
/// the serialized state).
#[test]
fn checkpoint_crosses_kernel_thread_counts() {
    let cfg = SystemConfig::new(NetworkSpec::mesh(4), CacheLineSize::B32).with_sim(sim());

    // Uninterrupted 8-thread run: the reference.
    let mut whole = System::new(cfg.clone()).unwrap();
    whole.set_kernel_threads(8);
    let mut state = whole.begin();
    assert!(whole.run_to(&mut state, u64::MAX).unwrap());
    let reference = whole.finish(&state).fingerprint();

    // Serial run paused mid-measurement, checkpointed, restored into a
    // fresh system running 8 kernel threads.
    let mut first = System::new(cfg.clone()).unwrap();
    first.set_kernel_threads(1);
    let mut st1 = first.begin();
    assert!(!first.run_to(&mut st1, 450).unwrap(), "paused before done");
    let bytes = first.checkpoint(&st1).expect("checkpoint serializes");

    let mut second = System::new(cfg).unwrap();
    second.set_kernel_threads(8);
    let mut st2 = second.begin();
    second
        .restore(&mut st2, &bytes)
        .expect("checkpoint restores");
    assert!(second.run_to(&mut st2, u64::MAX).unwrap());
    assert_eq!(second.finish(&st2).fingerprint(), reference);
}
