//! The parallel sweep executor's core guarantee: running the same
//! points on any number of worker threads yields byte-identical
//! results. Every sweep point owns its seeded RNG and the pool
//! collects results in input order, so thread count can only change
//! wall-clock time, never output. These tests pin that down across
//! both network families and both override mechanisms.

use ringmesh::{
    run_points_with, run_series_with, set_sweep_threads, NetworkSpec, SimParams, SystemConfig,
    WorkerPool,
};
use ringmesh_net::CacheLineSize;
use ringmesh_ring::RingSpec;

fn sim() -> SimParams {
    SimParams {
        warmup: 300,
        batch_cycles: 300,
        batches: 3,
    }
}

fn ring_points() -> Vec<(f64, SystemConfig)> {
    (2u32..=6)
        .map(|k| {
            let cfg = SystemConfig::new(NetworkSpec::ring(RingSpec::single(k)), CacheLineSize::B32)
                .with_sim(sim());
            (f64::from(k), cfg)
        })
        .collect()
}

fn mesh_points() -> Vec<(f64, SystemConfig)> {
    (2u32..=4)
        .map(|side| {
            let cfg =
                SystemConfig::new(NetworkSpec::mesh(side), CacheLineSize::B32).with_sim(sim());
            (f64::from(side * side), cfg)
        })
        .collect()
}

/// `(x, y)` series points as raw IEEE-754 bits: equality here is the
/// byte-identity the executor promises, not an epsilon comparison.
fn series_bits(s: &ringmesh_stats::Series) -> Vec<(u64, u64)> {
    s.points
        .iter()
        .map(|&(x, y)| (x.to_bits(), y.to_bits()))
        .collect()
}

#[test]
fn ring_series_identical_across_thread_counts() {
    let runs: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&n| {
            run_series_with(&WorkerPool::new(n), "det-ring", ring_points(), |r| {
                r.mean_latency()
            })
        })
        .collect();
    assert!(!runs[0].points.is_empty(), "sweep produced no points");
    for run in &runs[1..] {
        assert_eq!(series_bits(&runs[0]), series_bits(run));
    }
}

#[test]
fn mesh_results_identical_serial_vs_pooled() {
    let serial = run_points_with(&WorkerPool::new(1), "det-mesh", mesh_points());
    let pooled = run_points_with(&WorkerPool::new(4), "det-mesh", mesh_points());
    assert_eq!(serial.len(), pooled.len());
    assert!(!serial.is_empty(), "sweep produced no points");
    for ((xa, ra), (xb, rb)) in serial.iter().zip(&pooled) {
        assert_eq!(xa.to_bits(), xb.to_bits());
        assert_eq!(ra.mean_latency().to_bits(), rb.mean_latency().to_bits());
        assert_eq!(ra.throughput.to_bits(), rb.throughput.to_bits());
        assert_eq!(
            ra.utilization.overall.to_bits(),
            rb.utilization.overall.to_bits()
        );
    }
}

/// The process-wide `set_sweep_threads` override (what `ringmesh
/// bench` uses to time serial vs parallel legs in one process) must be
/// output-neutral too. Exercised in a single test because the override
/// is global state shared across the test binary's threads.
#[test]
fn thread_override_is_output_neutral() {
    set_sweep_threads(1);
    let serial = ringmesh::run_series("det-env", ring_points(), |r| r.throughput);
    set_sweep_threads(4);
    let pooled = ringmesh::run_series("det-env", ring_points(), |r| r.throughput);
    set_sweep_threads(0);
    assert_eq!(series_bits(&serial), series_bits(&pooled));
}
